"""The modular SUM function (the MaxRS special case of BRS)."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional, Sequence

from repro.functions.base import IncrementalEvaluator, SetFunction


class SumFunction(SetFunction):
    """``f(S) = sum of w_o for o in S`` with non-negative weights.

    With this function the BRS problem degenerates to MaxRS (Section 2).
    Weights default to 1 (count the objects).  Negative weights would break
    monotonicity and are rejected.
    """

    def __init__(self, n_objects: int, weights: Optional[Sequence[float]] = None) -> None:
        """Args:
        n_objects: number of spatial objects (ids are ``0..n_objects-1``).
        weights: per-object weights; all ones when omitted.

        Raises:
            ValueError: on a weight-count mismatch or a negative weight.
        """
        if weights is None:
            self._weights = [1.0] * n_objects
        else:
            if len(weights) != n_objects:
                raise ValueError(
                    f"expected {n_objects} weights, got {len(weights)}"
                )
            if any(w < 0 for w in weights):
                raise ValueError("negative weights break monotonicity")
            self._weights = [float(w) for w in weights]

    @property
    def weights(self) -> Sequence[float]:
        """Per-object weights (read-only view)."""
        return tuple(self._weights)

    def weight_of(self, obj_id: int) -> float:
        """Return the weight of one object."""
        return self._weights[obj_id]

    def value(self, objects: Iterable[int]) -> float:
        weights = self._weights
        return sum(weights[o] for o in set(objects))

    def marginal(self, obj_id: int, base: Iterable[int]) -> float:
        return 0.0 if obj_id in set(base) else self._weights[obj_id]

    def evaluator(self) -> "SumEvaluator":
        return SumEvaluator(self._weights)

    def batch_value(self, members, indptr):
        """Vectorized batch evaluation: one prefix sum, one difference.

        Groups must hold distinct ids (see the base-class contract);
        duplicates would be double-counted here, unlike :meth:`value`.
        """
        import numpy as np

        members = np.asarray(members, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        flat = np.asarray(self._weights, dtype=np.float64)[members]
        csum = np.concatenate((np.zeros(1), np.cumsum(flat)))
        return csum[indptr[1:]] - csum[indptr[:-1]]

    def merged(self, groups: "Sequence[Sequence[int]]") -> "SumFunction":
        """Return the SUM function over *groups* of objects.

        Group ``j`` weighs the sum of its members' weights — the modular
        fast path for the reduced function ``f_T`` (Definition 8), keeping
        O(1) incremental evaluation on the reduced instance.
        """
        weights = [
            sum(self._weights[i] for i in set(group)) for group in groups
        ]
        return SumFunction(len(groups), weights)


class SumEvaluator(IncrementalEvaluator):
    """O(1) push/pop evaluator for :class:`SumFunction`."""

    def __init__(self, weights: Sequence[float]) -> None:
        self._weights = weights
        self._counts: Counter = Counter()
        self._value = 0.0

    def push(self, obj_id: int) -> None:
        self._counts[obj_id] += 1
        if self._counts[obj_id] == 1:
            self._value += self._weights[obj_id]

    def pop(self, obj_id: int) -> None:
        count = self._counts.get(obj_id, 0)
        if count <= 0:
            raise KeyError(f"object {obj_id} is not active")
        if count == 1:
            del self._counts[obj_id]
            self._value -= self._weights[obj_id]
        else:
            self._counts[obj_id] = count - 1

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._counts.clear()
        self._value = 0.0
