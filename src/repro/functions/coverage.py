"""(Weighted) coverage functions.

Coverage is the workhorse submodular function of the paper's two
applications:

* *Most diversified region* (Application 2): each object carries a set of
  tags and ``f(S) = |union of tags|`` — unit label weights.
* *Most influential region* (Application 1): with reverse influence sampling
  the expected spread of the users visiting a region is
  ``(n_users / n_rr_sets) * |union of RR-set ids hit|`` — uniform label
  weights with a scale factor (see :mod:`repro.influence.ris`).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

from repro.functions.base import IncrementalEvaluator, SetFunction


class CoverageFunction(SetFunction):
    """``f(S) = scale * sum of w_l over labels l covered by S``.

    Each object id maps to a frozen set of labels; a label is *covered* by
    ``S`` when at least one object in ``S`` carries it.  With unit label
    weights and ``scale=1`` this is the diversity function of Application 2.
    """

    def __init__(
        self,
        label_sets: Sequence[Iterable[Hashable]],
        label_weights: Optional[Mapping[Hashable, float]] = None,
        scale: float = 1.0,
    ) -> None:
        """Args:
        label_sets: ``label_sets[i]`` are the labels of object ``i``.
        label_weights: weight per label; 1.0 for labels not listed.
        label weights must be non-negative (monotonicity).
        scale: global multiplier applied to the covered-weight total.

        Raises:
            ValueError: on a negative label weight or scale.
        """
        if scale < 0:
            raise ValueError("scale must be non-negative")
        if label_weights and any(w < 0 for w in label_weights.values()):
            raise ValueError("negative label weights break monotonicity")
        self._labels: Tuple[frozenset, ...] = tuple(
            frozenset(labels) for labels in label_sets
        )
        self._weights: Dict[Hashable, float] = dict(label_weights or {})
        self._scale = float(scale)

    @property
    def n_objects(self) -> int:
        """Number of objects the function is defined over."""
        return len(self._labels)

    @property
    def scale(self) -> float:
        """Global multiplier on the covered-weight total."""
        return self._scale

    @property
    def label_weights(self) -> Mapping[Hashable, float]:
        """Explicit per-label weights (labels not listed weigh 1.0)."""
        return dict(self._weights)

    def labels_of(self, obj_id: int) -> frozenset:
        """Return the label set of one object."""
        return self._labels[obj_id]

    def _label_weight(self, label: Hashable) -> float:
        return self._weights.get(label, 1.0)

    def value(self, objects: Iterable[int]) -> float:
        covered: set = set()
        for obj_id in objects:
            covered |= self._labels[obj_id]
        return self._scale * sum(self._label_weight(label) for label in covered)

    def marginal(self, obj_id: int, base: Iterable[int]) -> float:
        covered: set = set()
        for other in base:
            covered |= self._labels[other]
        gain = sum(
            self._label_weight(label)
            for label in self._labels[obj_id]
            if label not in covered
        )
        return self._scale * gain

    def evaluator(self) -> "CoverageEvaluator":
        return CoverageEvaluator(self._labels, self._weights, self._scale)

    def merged(self, groups: Sequence[Sequence[int]]) -> "CoverageFunction":
        """Return the coverage function over *groups* of objects.

        Group ``j`` covers the union of the labels of its members.  This is
        the fast path for the reduced function ``f_T`` of Definition 8 when
        the base function is coverage: the reduced function is again a
        coverage function over the same labels, so CoverBRS keeps O(delta)
        incremental evaluation.
        """
        merged_labels = [
            frozenset().union(*(self._labels[i] for i in group)) if group else frozenset()
            for group in groups
        ]
        return CoverageFunction(merged_labels, self._weights, self._scale)


class CoverageEvaluator(IncrementalEvaluator):
    """Counting evaluator: O(|labels of object|) per push/pop.

    Maintains a reference count per label and per object id; the value
    changes only when a label's count transitions 0 <-> 1.
    """

    def __init__(
        self,
        labels: Sequence[frozenset],
        weights: Mapping[Hashable, float],
        scale: float,
    ) -> None:
        self._labels = labels
        self._weights = weights
        self._scale = scale
        self._obj_counts: Counter = Counter()
        self._label_counts: Counter = Counter()
        self._covered_weight = 0.0

    def push(self, obj_id: int) -> None:
        self._obj_counts[obj_id] += 1
        if self._obj_counts[obj_id] > 1:
            return
        weights = self._weights
        counts = self._label_counts
        for label in self._labels[obj_id]:
            counts[label] += 1
            if counts[label] == 1:
                self._covered_weight += weights.get(label, 1.0)

    def pop(self, obj_id: int) -> None:
        count = self._obj_counts.get(obj_id, 0)
        if count <= 0:
            raise KeyError(f"object {obj_id} is not active")
        if count > 1:
            self._obj_counts[obj_id] = count - 1
            return
        del self._obj_counts[obj_id]
        weights = self._weights
        counts = self._label_counts
        for label in self._labels[obj_id]:
            counts[label] -= 1
            if counts[label] == 0:
                del counts[label]
                self._covered_weight -= weights.get(label, 1.0)

    @property
    def value(self) -> float:
        return self._scale * self._covered_weight

    def reset(self) -> None:
        self._obj_counts.clear()
        self._label_counts.clear()
        self._covered_weight = 0.0
