"""(Weighted) coverage functions.

Coverage is the workhorse submodular function of the paper's two
applications:

* *Most diversified region* (Application 2): each object carries a set of
  tags and ``f(S) = |union of tags|`` — unit label weights.
* *Most influential region* (Application 1): with reverse influence sampling
  the expected spread of the users visiting a region is
  ``(n_users / n_rr_sets) * |union of RR-set ids hit|`` — uniform label
  weights with a scale factor (see :mod:`repro.influence.ris`).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

from repro.functions.base import IncrementalEvaluator, SetFunction


class CoverageFunction(SetFunction):
    """``f(S) = scale * sum of w_l over labels l covered by S``.

    Each object id maps to a frozen set of labels; a label is *covered* by
    ``S`` when at least one object in ``S`` carries it.  With unit label
    weights and ``scale=1`` this is the diversity function of Application 2.
    """

    def __init__(
        self,
        label_sets: Sequence[Iterable[Hashable]],
        label_weights: Optional[Mapping[Hashable, float]] = None,
        scale: float = 1.0,
    ) -> None:
        """Args:
        label_sets: ``label_sets[i]`` are the labels of object ``i``.
        label_weights: weight per label; 1.0 for labels not listed.
        label weights must be non-negative (monotonicity).
        scale: global multiplier applied to the covered-weight total.

        Raises:
            ValueError: on a negative label weight or scale.
        """
        if scale < 0:
            raise ValueError("scale must be non-negative")
        if label_weights and any(w < 0 for w in label_weights.values()):
            raise ValueError("negative label weights break monotonicity")
        self._labels: Tuple[frozenset, ...] = tuple(
            frozenset(labels) for labels in label_sets
        )
        self._weights: Dict[Hashable, float] = dict(label_weights or {})
        self._scale = float(scale)

    @property
    def n_objects(self) -> int:
        """Number of objects the function is defined over."""
        return len(self._labels)

    @property
    def scale(self) -> float:
        """Global multiplier on the covered-weight total."""
        return self._scale

    @property
    def label_weights(self) -> Mapping[Hashable, float]:
        """Explicit per-label weights (labels not listed weigh 1.0)."""
        return dict(self._weights)

    def labels_of(self, obj_id: int) -> frozenset:
        """Return the label set of one object."""
        return self._labels[obj_id]

    def _label_weight(self, label: Hashable) -> float:
        return self._weights.get(label, 1.0)

    def value(self, objects: Iterable[int]) -> float:
        covered: set = set()
        for obj_id in objects:
            covered |= self._labels[obj_id]
        return self._scale * sum(self._label_weight(label) for label in covered)

    def marginal(self, obj_id: int, base: Iterable[int]) -> float:
        covered: set = set()
        for other in base:
            covered |= self._labels[other]
        gain = sum(
            self._label_weight(label)
            for label in self._labels[obj_id]
            if label not in covered
        )
        return self._scale * gain

    def evaluator(self) -> "CoverageEvaluator":
        return CoverageEvaluator(self._labels, self._weights, self._scale)

    def _code_csr(self):
        """Lazy CSR encoding of the label sets (codes, indptr, weights).

        Built once per function instance; the vocabulary is an arbitrary
        but fixed label -> small-int coding, with the per-code weight
        vector alongside so batch evaluation never touches label objects.
        """
        cached = getattr(self, "_csr_cache", None)
        if cached is not None:
            return cached
        import numpy as np

        code_of: Dict[Hashable, int] = {}
        code_weights = []
        indptr = np.zeros(len(self._labels) + 1, dtype=np.int64)
        flat = []
        for i, labels in enumerate(self._labels):
            for label in labels:
                code = code_of.get(label)
                if code is None:
                    code = len(code_of)
                    code_of[label] = code
                    code_weights.append(self._label_weight(label))
                flat.append(code)
            indptr[i + 1] = len(flat)
        cached = (
            np.asarray(flat, dtype=np.int64),
            indptr,
            np.asarray(code_weights, dtype=np.float64),
        )
        self._csr_cache = cached
        return cached

    def batch_value(self, members, indptr):
        """Vectorized batch coverage: distinct (group, label) pairs.

        Gathers every member's label codes, pair-encodes them with the
        group index, keeps each pair once (labels covered multiple times
        in a group count once), and sums label weights per group with a
        weighted ``bincount``.  Groups must hold distinct object ids.
        """
        import numpy as np

        members = np.asarray(members, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        n_groups = indptr.size - 1
        codes, code_indptr, code_weights = self._code_csr()
        n_vocab = int(code_weights.size)
        if n_vocab == 0 or members.size == 0:
            return np.zeros(n_groups, dtype=np.float64)

        group_of_member = np.repeat(np.arange(n_groups), np.diff(indptr))
        counts = code_indptr[members + 1] - code_indptr[members]
        total = int(counts.sum())
        if total == 0:
            return np.zeros(n_groups, dtype=np.float64)
        # Gather each member's code row: base offset + position in row.
        offsets = np.cumsum(counts) - counts
        gather = np.repeat(code_indptr[members], counts) + (
            np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        )
        pair = np.repeat(group_of_member, counts) * n_vocab + codes[gather]
        pair = np.unique(pair)
        return self._scale * np.bincount(
            pair // n_vocab,
            weights=code_weights[pair % n_vocab],
            minlength=n_groups,
        )

    def merged(self, groups: Sequence[Sequence[int]]) -> "CoverageFunction":
        """Return the coverage function over *groups* of objects.

        Group ``j`` covers the union of the labels of its members.  This is
        the fast path for the reduced function ``f_T`` of Definition 8 when
        the base function is coverage: the reduced function is again a
        coverage function over the same labels, so CoverBRS keeps O(delta)
        incremental evaluation.
        """
        merged_labels = [
            frozenset().union(*(self._labels[i] for i in group)) if group else frozenset()
            for group in groups
        ]
        return CoverageFunction(merged_labels, self._weights, self._scale)


class CoverageEvaluator(IncrementalEvaluator):
    """Counting evaluator: O(|labels of object|) per push/pop.

    Maintains a reference count per label and per object id; the value
    changes only when a label's count transitions 0 <-> 1.
    """

    def __init__(
        self,
        labels: Sequence[frozenset],
        weights: Mapping[Hashable, float],
        scale: float,
    ) -> None:
        self._labels = labels
        self._weights = weights
        self._scale = scale
        self._obj_counts: Counter = Counter()
        self._label_counts: Counter = Counter()
        self._covered_weight = 0.0

    def push(self, obj_id: int) -> None:
        self._obj_counts[obj_id] += 1
        if self._obj_counts[obj_id] > 1:
            return
        weights = self._weights
        counts = self._label_counts
        for label in self._labels[obj_id]:
            counts[label] += 1
            if counts[label] == 1:
                self._covered_weight += weights.get(label, 1.0)

    def pop(self, obj_id: int) -> None:
        count = self._obj_counts.get(obj_id, 0)
        if count <= 0:
            raise KeyError(f"object {obj_id} is not active")
        if count > 1:
            self._obj_counts[obj_id] = count - 1
            return
        del self._obj_counts[obj_id]
        weights = self._weights
        counts = self._label_counts
        for label in self._labels[obj_id]:
            counts[label] -= 1
            if counts[label] == 0:
                del counts[label]
                self._covered_weight -= weights.get(label, 1.0)

    @property
    def value(self) -> float:
        return self._scale * self._covered_weight

    def reset(self) -> None:
        self._obj_counts.clear()
        self._label_counts.clear()
        self._covered_weight = 0.0
