"""Conic combinations of submodular functions.

Submodular monotone functions are closed under non-negative linear
combination, so mixed objectives compose directly — e.g. "mostly diverse,
but footfall still counts" as ``0.8 * diversity + 0.2 * count``.  The
combined evaluator simply runs the component evaluators in lockstep, so a
mix of O(1) and O(delta) components stays incremental.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.functions.base import IncrementalEvaluator, SetFunction


class LinearCombinationFunction(SetFunction):
    """``f(S) = sum_i  c_i * f_i(S)`` with non-negative coefficients."""

    def __init__(self, terms: Sequence[Tuple[float, SetFunction]]) -> None:
        """Args:
        terms: ``(coefficient, function)`` pairs; coefficients must be
            non-negative (negative ones would break monotonicity).

        Raises:
            ValueError: on an empty combination or a negative coefficient.
        """
        term_list = list(terms)
        if not term_list:
            raise ValueError("need at least one term")
        if any(c < 0 for c, _ in term_list):
            raise ValueError("negative coefficients break monotonicity")
        self._terms: List[Tuple[float, SetFunction]] = [
            (float(c), fn) for c, fn in term_list
        ]

    @property
    def terms(self) -> Sequence[Tuple[float, SetFunction]]:
        """The (coefficient, function) pairs."""
        return tuple(self._terms)

    def value(self, objects: Iterable[int]) -> float:
        ids = list(objects)
        return sum(c * fn.value(ids) for c, fn in self._terms)

    def evaluator(self) -> "LinearCombinationEvaluator":
        return LinearCombinationEvaluator(self._terms)


class LinearCombinationEvaluator(IncrementalEvaluator):
    """Runs the component evaluators in lockstep."""

    def __init__(self, terms: Sequence[Tuple[float, SetFunction]]) -> None:
        self._coefficients = [c for c, _ in terms]
        self._evaluators = [fn.evaluator() for _, fn in terms]

    def push(self, obj_id: int) -> None:
        for evaluator in self._evaluators:
            evaluator.push(obj_id)

    def pop(self, obj_id: int) -> None:
        for evaluator in self._evaluators:
            evaluator.pop(obj_id)

    @property
    def value(self) -> float:
        return sum(
            c * evaluator.value
            for c, evaluator in zip(self._coefficients, self._evaluators)
        )

    def reset(self) -> None:
        for evaluator in self._evaluators:
            evaluator.reset()
