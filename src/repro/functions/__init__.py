"""Submodular monotone aggregate score functions.

The BRS problem (Definition 2) is parameterized by a submodular monotone set
function ``f`` over spatial-object ids.  This subpackage provides:

* :class:`~repro.functions.base.SetFunction` — the abstract interface the
  core algorithms consume.
* :class:`~repro.functions.base.IncrementalEvaluator` — push/pop evaluation
  used by the sweep lines, so that adding or removing one rectangle costs
  O(delta) instead of a full re-evaluation.
* :class:`~repro.functions.weighted_sum.SumFunction` — the modular SUM
  function (MaxRS is BRS with this function).
* :class:`~repro.functions.coverage.CoverageFunction` — (weighted) coverage,
  which models both *most diversified region* (distinct tags) and, composed
  with reverse-influence-sampling, *most influential region*.
* :func:`~repro.functions.reduced.reduce_over_cover` — the ``f_T`` of
  Definition 8, defined over a c-cover's representatives.
* :func:`~repro.functions.validate.check_submodular_monotone` — randomized
  validation that a user-supplied function really is submodular monotone.
"""

from repro.functions.base import IncrementalEvaluator, RecomputeEvaluator, SetFunction
from repro.functions.composite import LinearCombinationFunction
from repro.functions.coverage import CoverageFunction
from repro.functions.saturating import CappedSumFunction, FacilityLocationFunction
from repro.functions.weighted_sum import SumFunction
from repro.functions.reduced import UnionReducedFunction, reduce_over_cover
from repro.functions.validate import check_submodular_monotone

__all__ = [
    "CappedSumFunction",
    "LinearCombinationFunction",
    "CoverageFunction",
    "FacilityLocationFunction",
    "IncrementalEvaluator",
    "RecomputeEvaluator",
    "SetFunction",
    "SumFunction",
    "UnionReducedFunction",
    "check_submodular_monotone",
    "reduce_over_cover",
]
