"""Abstract interfaces for aggregate score functions.

Two access patterns coexist in the BRS algorithms:

* *Batch* evaluation — ``f(S)`` for an explicit id set (used by tests, by
  result reporting, and by slab upper bounds computed from scratch).
* *Incremental* evaluation — the sweep lines of SliceBRS add and remove one
  rectangle at a time and read the current value at candidate points.  For
  coverage-style functions this costs O(labels of the object) per update
  instead of O(|active set|) per evaluation, which is what makes a
  sweep-line approach to an expensive submodular function practical.

A :class:`SetFunction` must implement :meth:`SetFunction.value`; functions
that support cheap updates override :meth:`SetFunction.evaluator` to return a
specialized :class:`IncrementalEvaluator`.  The default evaluator falls back
to recomputing (lazily — only when the value is actually read).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Iterable


class IncrementalEvaluator(ABC):
    """Maintains ``f`` over a multiset of object ids under push/pop.

    The sweep lines may clip one SIRI rectangle into several slices, so the
    same object id can be pushed more than once; implementations must treat
    the active collection as a *multiset* (an id contributes to the value as
    long as its count is positive).
    """

    @abstractmethod
    def push(self, obj_id: int) -> None:
        """Add one occurrence of ``obj_id`` to the active multiset."""

    @abstractmethod
    def pop(self, obj_id: int) -> None:
        """Remove one occurrence of ``obj_id`` from the active multiset.

        Raises:
            KeyError: if ``obj_id`` is not currently active.
        """

    @property
    @abstractmethod
    def value(self) -> float:
        """Current value of ``f`` on the distinct active ids."""

    @abstractmethod
    def reset(self) -> None:
        """Empty the active multiset."""


class SetFunction(ABC):
    """A set function ``f : 2^O -> R`` over object ids ``0..n-1``.

    Implementations shipped with this package are submodular and monotone
    with ``f(emptyset) = 0``; user-supplied functions can be checked with
    :func:`repro.functions.validate.check_submodular_monotone`.
    """

    @abstractmethod
    def value(self, objects: Iterable[int]) -> float:
        """Return ``f(set(objects))``.  Duplicate ids are ignored."""

    def marginal(self, obj_id: int, base: Iterable[int]) -> float:
        """Return ``f(base + {obj_id}) - f(base)``.

        The default implementation evaluates ``f`` twice; subclasses may
        override with something cheaper.
        """
        base_list = list(base)
        return self.value(base_list + [obj_id]) - self.value(base_list)

    def evaluator(self) -> IncrementalEvaluator:
        """Return a fresh incremental evaluator for this function.

        The default recomputes from scratch whenever the value is read after
        a modification; override for functions with cheap delta updates.
        """
        return RecomputeEvaluator(self)

    def batch_value(self, members, indptr):
        """Evaluate ``f`` on many id groups at once (CSR layout).

        Group ``j`` is ``members[indptr[j]:indptr[j+1]]``; ids within one
        group must be distinct (vectorized overrides rely on it — the
        columnar grid scan's cells satisfy this by construction).

        Args:
            members: flat int array of object ids, grouped.
            indptr: group boundaries, length ``n_groups + 1``.

        Returns:
            float64 array of ``f`` per group.  The default loops groups
            through :meth:`value`; :class:`SumFunction` and
            :class:`CoverageFunction` override with one-shot array
            kernels.
        """
        import numpy as np

        members = np.asarray(members, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        out = np.empty(indptr.size - 1, dtype=np.float64)
        for j in range(indptr.size - 1):
            out[j] = self.value(
                int(i) for i in members[indptr[j]:indptr[j + 1]]
            )
        return out


class RecomputeEvaluator(IncrementalEvaluator):
    """Fallback evaluator: track the multiset, recompute ``f`` lazily.

    Correct for any :class:`SetFunction`; O(cost of ``f``) per value read.
    """

    def __init__(self, fn: SetFunction) -> None:
        self._fn = fn
        self._counts: Counter = Counter()
        self._cached: float = fn.value(())
        self._dirty = False

    def push(self, obj_id: int) -> None:
        self._counts[obj_id] += 1
        if self._counts[obj_id] == 1:
            self._dirty = True

    def pop(self, obj_id: int) -> None:
        count = self._counts.get(obj_id, 0)
        if count <= 0:
            raise KeyError(f"object {obj_id} is not active")
        if count == 1:
            del self._counts[obj_id]
            self._dirty = True
        else:
            self._counts[obj_id] = count - 1

    @property
    def value(self) -> float:
        if self._dirty:
            self._cached = self._fn.value(self._counts.keys())
            self._dirty = False
        return self._cached

    def reset(self) -> None:
        self._counts.clear()
        self._cached = self._fn.value(())
        self._dirty = False
