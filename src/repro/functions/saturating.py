"""Additional submodular monotone score functions.

The BRS algorithms accept *any* submodular monotone function; coverage and
SUM (the paper's two applications) are only the start.  This module ships
two more families that arise naturally in region search:

* :class:`CappedSumFunction` — ``f(S) = min(cap, sum of weights)``:
  "find a region with enough footfall", where exceeding the target brings
  no further benefit.  Budget-additive functions are the textbook example
  of submodular-but-not-modular scores.
* :class:`FacilityLocationFunction` —
  ``f(S) = sum over clients of max utility of any selected object``:
  "find the region whose venues best serve a fixed set of client
  profiles"; each client only benefits from the single best match inside
  the region.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

from repro.functions.base import IncrementalEvaluator, SetFunction


class CappedSumFunction(SetFunction):
    """``f(S) = min(cap, sum of w_o)`` — budget-additive utility."""

    def __init__(self, n_objects: int, cap: float, weights: Sequence[float] = None) -> None:
        """Args:
        n_objects: number of objects (ids ``0..n_objects-1``).
        cap: saturation level; must be non-negative.
        weights: non-negative per-object weights, default all ones.

        Raises:
            ValueError: on a negative cap/weight or a count mismatch.
        """
        if cap < 0:
            raise ValueError("cap must be non-negative")
        if weights is None:
            weights = [1.0] * n_objects
        if len(weights) != n_objects:
            raise ValueError(f"expected {n_objects} weights, got {len(weights)}")
        if any(w < 0 for w in weights):
            raise ValueError("negative weights break monotonicity")
        self._cap = float(cap)
        self._weights = [float(w) for w in weights]

    @property
    def cap(self) -> float:
        """The saturation level."""
        return self._cap

    def value(self, objects: Iterable[int]) -> float:
        total = sum(self._weights[o] for o in set(objects))
        return min(self._cap, total)

    def evaluator(self) -> "CappedSumEvaluator":
        return CappedSumEvaluator(self._weights, self._cap)


class CappedSumEvaluator(IncrementalEvaluator):
    """O(1) push/pop evaluator for :class:`CappedSumFunction`."""

    def __init__(self, weights: Sequence[float], cap: float) -> None:
        self._weights = weights
        self._cap = cap
        self._counts: Counter = Counter()
        self._total = 0.0

    def push(self, obj_id: int) -> None:
        self._counts[obj_id] += 1
        if self._counts[obj_id] == 1:
            self._total += self._weights[obj_id]

    def pop(self, obj_id: int) -> None:
        count = self._counts.get(obj_id, 0)
        if count <= 0:
            raise KeyError(f"object {obj_id} is not active")
        if count == 1:
            del self._counts[obj_id]
            self._total -= self._weights[obj_id]
        else:
            self._counts[obj_id] = count - 1

    @property
    def value(self) -> float:
        return min(self._cap, self._total)

    def reset(self) -> None:
        self._counts.clear()
        self._total = 0.0


class FacilityLocationFunction(SetFunction):
    """``f(S) = sum over clients of max_{o in S} utility[client][o]``.

    Utilities must be non-negative; an empty selection scores 0.  The
    classic facility-location objective — submodular because a client's
    best option improves by less once it is already well served.
    """

    def __init__(self, utilities: Sequence[Sequence[float]]) -> None:
        """Args:
        utilities: ``utilities[client][object]`` matrix, all rows the
            same length, entries non-negative.

        Raises:
            ValueError: on ragged rows or negative entries.
        """
        rows = [list(map(float, row)) for row in utilities]
        if rows:
            width = len(rows[0])
            if any(len(row) != width for row in rows):
                raise ValueError("utility rows must all have the same length")
            if any(u < 0 for row in rows for u in row):
                raise ValueError("negative utilities break monotonicity")
        self._utilities = rows

    @property
    def n_clients(self) -> int:
        """Number of client profiles."""
        return len(self._utilities)

    @property
    def n_objects(self) -> int:
        """Number of objects."""
        return len(self._utilities[0]) if self._utilities else 0

    def value(self, objects: Iterable[int]) -> float:
        ids = set(objects)
        if not ids:
            return 0.0
        return sum(
            max(row[o] for o in ids) for row in self._utilities
        )

    def evaluator(self) -> "FacilityLocationEvaluator":
        return FacilityLocationEvaluator(self._utilities)


class FacilityLocationEvaluator(IncrementalEvaluator):
    """Per-client best-value tracking for facility location.

    ``push`` is O(clients); ``pop`` is O(clients) except when the popped
    object was some client's current best, in which case that client's max
    is recomputed over the active set (O(active) for that client).  Sweeps
    remove recently-weakened rectangles far more often than champions, so
    the amortized cost stays near O(clients) in practice.
    """

    def __init__(self, utilities: Sequence[Sequence[float]]) -> None:
        self._utilities = utilities
        self._counts: Counter = Counter()
        self._best: List[float] = [0.0] * len(utilities)
        self._total = 0.0

    def push(self, obj_id: int) -> None:
        self._counts[obj_id] += 1
        if self._counts[obj_id] > 1:
            return
        for client, row in enumerate(self._utilities):
            if row[obj_id] > self._best[client]:
                self._total += row[obj_id] - self._best[client]
                self._best[client] = row[obj_id]

    def pop(self, obj_id: int) -> None:
        count = self._counts.get(obj_id, 0)
        if count <= 0:
            raise KeyError(f"object {obj_id} is not active")
        if count > 1:
            self._counts[obj_id] = count - 1
            return
        del self._counts[obj_id]
        active = list(self._counts.keys())
        for client, row in enumerate(self._utilities):
            if row[obj_id] >= self._best[client] and self._best[client] > 0.0:
                new_best = max((row[o] for o in active), default=0.0)
                self._total += new_best - self._best[client]
                self._best[client] = new_best

    @property
    def value(self) -> float:
        return self._total

    def reset(self) -> None:
        self._counts.clear()
        self._best = [0.0] * len(self._utilities)
        self._total = 0.0
