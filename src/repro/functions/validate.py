"""Randomized validation of the submodular-monotone contract.

The BRS algorithms are only correct for submodular monotone ``f``
(Definition 1): the slab upper bounds of Lemma 7 and the maximal-region
domination argument of Lemma 3 both rely on it.  Rather than silently
returning wrong regions for a bad user function, callers can (and the solver
entry points optionally do) spot-check the contract on random subsets.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.functions.base import SetFunction

#: Tolerance for floating-point comparisons of function values.
_EPS = 1e-9


def check_submodular_monotone(
    fn: SetFunction,
    object_ids: Sequence[int],
    trials: int = 50,
    rng: Optional[random.Random] = None,
) -> None:
    """Spot-check that ``fn`` is submodular and monotone on random subsets.

    Each trial draws nested subsets ``S subset T`` and an element ``v``
    outside ``T`` and asserts the diminishing-returns inequality
    ``f(S + v) - f(S) >= f(T + v) - f(T)`` as well as monotonicity
    ``f(S) <= f(T)`` and ``f(emptyset) >= 0``.

    This is a randomized *refuter*: it can prove a function is not
    submodular monotone, never that it is.

    Raises:
        ValueError: with a concrete counterexample when a trial fails.
    """
    rng = rng or random.Random(0)
    ids = list(object_ids)
    if fn.value(()) < -_EPS:
        raise ValueError("f(emptyset) must be non-negative")
    if len(ids) < 2:
        return
    for _ in range(trials):
        t_size = rng.randint(1, len(ids) - 1)
        t_set = rng.sample(ids, t_size)
        s_size = rng.randint(0, t_size)
        s_set = rng.sample(t_set, s_size)
        outside = [i for i in ids if i not in set(t_set)]
        if not outside:
            continue
        v = rng.choice(outside)

        f_s = fn.value(s_set)
        f_t = fn.value(t_set)
        if f_s > f_t + _EPS:
            raise ValueError(
                f"monotonicity violated: f({sorted(s_set)})={f_s} > "
                f"f({sorted(t_set)})={f_t}"
            )
        gain_s = fn.value(list(s_set) + [v]) - f_s
        gain_t = fn.value(list(t_set) + [v]) - f_t
        if gain_s + _EPS < gain_t:
            raise ValueError(
                "submodularity violated: marginal of "
                f"{v} on {sorted(s_set)} is {gain_s} < {gain_t} on "
                f"{sorted(t_set)}"
            )
