"""The reduced aggregate function ``f_T`` over a c-cover (Definition 8).

CoverBRS replaces the original objects ``O`` by a smaller set ``T`` of
representatives; representative ``t`` stands for the group ``D(t)`` of
original objects assigned to it.  The reduced function is

    f_T({t_1, ..., t_j}) = f(D(t_1) | ... | D(t_j))

which is submodular monotone whenever ``f`` is (composition with a union of
fixed sets preserves both properties).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.functions.base import SetFunction
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction


class UnionReducedFunction(SetFunction):
    """Generic ``f_T``: evaluate ``f`` on the union of represented groups.

    Works for any base :class:`SetFunction`; evaluation cost is the cost of
    ``f`` on the unioned ids.  Coverage-type functions should go through
    :func:`reduce_over_cover`, which builds an equivalent function with
    O(delta) incremental evaluation instead.
    """

    def __init__(self, base: SetFunction, groups: Sequence[Sequence[int]]) -> None:
        """Args:
        base: the original function ``f`` over original object ids.
        groups: ``groups[j]`` lists the original ids represented by the
            j-th representative (the paper's ``D(t_j)``).
        """
        self._base = base
        self._groups = [tuple(group) for group in groups]

    @property
    def n_objects(self) -> int:
        """Number of representatives."""
        return len(self._groups)

    def group_of(self, rep_id: int) -> Sequence[int]:
        """Return the original ids represented by ``rep_id``."""
        return self._groups[rep_id]

    def value(self, objects: Iterable[int]) -> float:
        union_ids: set = set()
        for rep_id in set(objects):
            union_ids.update(self._groups[rep_id])
        return self._base.value(union_ids)


def reduce_over_cover(
    base: SetFunction, groups: Sequence[Sequence[int]]
) -> SetFunction:
    """Build ``f_T`` for a c-cover, picking the fastest faithful form.

    When ``base`` is a :class:`CoverageFunction` the reduction is itself a
    coverage function (each representative covers the union of its group's
    labels); when it is a :class:`SumFunction` the reduction is again
    modular (each representative weighs its group's total).  Both preserve
    O(delta) sweep-line updates.  Any other function falls back to
    :class:`UnionReducedFunction`.
    """
    if isinstance(base, CoverageFunction):
        return base.merged(groups)
    if isinstance(base, SumFunction):
        return base.merged(groups)
    return UnionReducedFunction(base, groups)
