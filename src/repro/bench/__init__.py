"""Benchmark harness: regenerates every table and figure of the paper.

:mod:`repro.bench.experiments` implements one function per experiment
(E1–E12 in DESIGN.md), each returning a printable table;
``benchmarks/run_all.py`` drives them and ``benchmarks/bench_*.py`` wraps
the hot paths in pytest-benchmark for timing-only runs.
"""

from repro.bench.harness import (
    RunOutcome,
    Table,
    format_table,
    run_with_status,
    timed,
)

__all__ = ["RunOutcome", "Table", "format_table", "run_with_status", "timed"]
