"""One function per paper experiment (see DESIGN.md, Section 4).

Every function returns one or more :class:`~repro.bench.harness.Table`
objects whose rows mirror the series of the corresponding paper table or
figure.  Dataset analogs are cached per process, and every experiment is
deterministic (fixed seeds), so re-runs produce identical counts and
quality values (runtimes vary with the machine, their *ratios* are the
reproduced signal).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Sequence, Tuple

from repro.bench.harness import Table, timed
from repro.core.coverbrs import CoverBRS
from repro.core.maxrs import oe_maxrs, slicebrs_maxrs
from repro.core.slicebrs import SliceBRS
from repro.core.siri import build_siri_rows
from repro.core.sweep import count_maximal_regions, scan_slabs
from repro.cover.quadtree_cover import select_cover
from repro.datasets.registry import (
    brightkite_like,
    gowalla_like,
    meetup_like,
    query_size,
    scalability_dataset,
    yelp_like,
)
from repro.functions.reduced import reduce_over_cover
from repro.geometry.arrangement import count_arrangement_cells
from repro.geometry.rect import Rect

#: Query scale factors used throughout Section 6.
K_VALUES = (1, 5, 10, 15, 20)

#: RR-set sample size for the influence applications.
N_RR_SETS = 2000


@lru_cache(maxsize=None)
def _dataset(name: str):
    builders = {
        "brightkite_like": brightkite_like,
        "gowalla_like": gowalla_like,
        "yelp_like": yelp_like,
        "meetup_like": meetup_like,
    }
    return builders[name]()


@lru_cache(maxsize=None)
def _score_function(name: str):
    ds = _dataset(name)
    if name in ("brightkite_like", "gowalla_like"):
        return ds.score_function(n_rr_sets=N_RR_SETS, seed=0)
    return ds.score_function()


_INFLUENCE = ("brightkite_like", "gowalla_like")
_DIVERSITY = ("yelp_like", "meetup_like")


def _quality_and_runtime(datasets: Sequence[str], figure_q: str, figure_t: str,
                         app_name: str) -> List[Table]:
    """Shared driver for Figures 10/11 (influence) and 12/13 (diversity)."""
    quality_rows: List[Sequence] = []
    runtime_rows: List[Sequence] = []
    for name in datasets:
        ds = _dataset(name)
        fn = _score_function(name)
        for k in K_VALUES:
            a, b = ds.query(k)
            exact, t_exact = timed(lambda: SliceBRS().solve(ds.points, fn, a, b))
            tree = ds.quadtree()
            c4, t_c4 = timed(
                lambda: CoverBRS(c=1 / 3).solve(ds.points, fn, a, b, quadtree=tree)
            )
            c9, t_c9 = timed(
                lambda: CoverBRS(c=1 / 2).solve(ds.points, fn, a, b, quadtree=tree)
            )
            oe, t_oe = timed(lambda: oe_maxrs(ds.points, a, b))
            oe_quality = fn.value(oe.object_ids)
            quality_rows.append(
                (name, k, exact.score, c4.score, c9.score, oe_quality)
            )
            runtime_rows.append((name, k, t_exact, t_c4, t_c9, t_oe))
    return [
        Table(
            figure_q,
            f"quality vs k*q — {app_name}",
            ("dataset", "k", "SliceBRS", "CoverBRS4", "CoverBRS9", "OE"),
            quality_rows,
            notes=[
                "expected shape: SliceBRS highest; CoverBRS4/9 comparable; OE lowest",
            ],
        ),
        Table(
            figure_t,
            f"runtime (s) vs k*q — {app_name}",
            ("dataset", "k", "SliceBRS", "CoverBRS4", "CoverBRS9", "OE"),
            runtime_rows,
            notes=["expected shape: CoverBRS faster than SliceBRS, gap grows with k"],
        ),
    ]


def fig10_fig11_influence() -> List[Table]:
    """E1+E2: quality and runtime for the most-influential-region search."""
    return _quality_and_runtime(
        _INFLUENCE, "Figure 10", "Figure 11", "Application 1 (influence)"
    )


def fig12_fig13_diversity() -> List[Table]:
    """E3+E4: quality and runtime for the most-diversified-region search."""
    return _quality_and_runtime(
        _DIVERSITY, "Figure 12", "Figure 13", "Application 2 (diversity)"
    )


def _global_slabs_and_rows(name: str, k: float):
    ds = _dataset(name)
    fn = _score_function(name)
    a, b = ds.query(k)
    rows = build_siri_rows(ds.points, a, b)
    slabs = scan_slabs(rows, fn.evaluator())
    return rows, slabs


@lru_cache(maxsize=None)
def _region_census(name: str, k: float) -> Tuple[int, int]:
    """(#DR, #MR) at scale k; cached because Tables 4 and 5 share it."""
    rows, slabs = _global_slabs_and_rows(name, k)
    n_dr = count_arrangement_cells(Rect(r[0], r[1], r[2], r[3]) for r in rows)
    n_mr = count_maximal_regions(rows, slabs)
    return n_dr, n_mr


def table4_regions() -> List[Table]:
    """E5: number of disjoint regions (#DR) vs maximal regions (#MR)."""
    out: List[Sequence] = []
    for name in _INFLUENCE + _DIVERSITY:
        n_dr, n_mr = _region_census(name, 10)
        out.append((name, n_dr, n_mr, f"{n_mr / n_dr:.2%}"))
    return [
        Table(
            "Table 4",
            "effectiveness of maximal regions (10q query)",
            ("dataset", "#DR", "#MR", "#MR/#DR"),
            out,
            notes=[
                "#DR counted as arrangement cells (see DESIGN.md); expected "
                "shape: #MR is a small percentage of #DR",
            ],
        )
    ]


def table5_slabs() -> List[Table]:
    """E6: maximal-slab pruning effectiveness."""
    out: List[Sequence] = []
    for name in _INFLUENCE + _DIVERSITY:
        ds = _dataset(name)
        fn = _score_function(name)
        a, b = ds.query(10)
        _, n_mr = _region_census(name, 10)
        # prune_slices=False scans every slice so #MS is the full census.
        result = SliceBRS(prune_slices=False).solve(ds.points, fn, a, b)
        s = result.stats
        out.append(
            (name, n_mr, s.n_slabs, s.n_slabs_searched, s.n_candidates,
             f"{s.n_slabs_searched / max(1, s.n_slabs):.1%}")
        )
    return [
        Table(
            "Table 5",
            "effectiveness of maximal slabs (10q query)",
            ("dataset", "#MR", "#MS", "#MSP", "#DRP", "#MSP/#MS"),
            out,
            notes=[
                "expected shape: #MSP << #MS everywhere; the processed "
                "fraction is worst on meetup_like (shared tags give loose, "
                "tie-heavy upper bounds)",
            ],
        )
    ]


def fig14_noslice_ablation() -> List[Table]:
    """E7: usefulness of cutting the space into slices."""
    name = "brightkite_like"
    ds = _dataset(name)
    fn = _score_function(name)
    out: List[Sequence] = []
    for k in (1, 5, 10, 15):
        a, b = ds.query(k)
        _, t_sliced = timed(lambda: SliceBRS().solve(ds.points, fn, a, b))
        _, t_noslice = timed(
            lambda: SliceBRS(slicing=False).solve(ds.points, fn, a, b)
        )
        out.append((name, k, t_sliced, t_noslice, t_noslice / max(t_sliced, 1e-9)))
    return [
        Table(
            "Figure 14",
            "SliceBRS vs SliceBRS-NSlice runtime (s)",
            ("dataset", "k", "SliceBRS", "NSlice", "slowdown"),
            out,
            notes=["expected shape: NSlice much slower, gap grows with k"],
        )
    ]


def table6_cover() -> List[Table]:
    """E8: usefulness of the c-cover (c = 1/3, 10q query)."""
    out: List[Sequence] = []
    for name in _INFLUENCE + _DIVERSITY:
        ds = _dataset(name)
        fn = _score_function(name)
        a, b = ds.query(10)
        cover = select_cover(ds.points, 1 / 3, a, b)
        reduced_f = reduce_over_cover(fn, cover.groups)
        ra, rb = (2 / 3) * a, (2 / 3) * b
        reduced_rows = build_siri_rows(cover.points, ra, rb)
        n_dr = count_arrangement_cells(
            Rect(r[0], r[1], r[2], r[3]) for r in reduced_rows
        )
        reduced_slabs = scan_slabs(reduced_rows, reduced_f.evaluator())
        n_mr = count_maximal_regions(reduced_rows, reduced_slabs)
        result = CoverBRS(c=1 / 3).solve(ds.points, fn, a, b)
        out.append(
            (name, len(ds.points), cover.size, n_dr, n_mr,
             result.stats.n_candidates)
        )
    return [
        Table(
            "Table 6",
            "usefulness of the c-cover (c=1/3, 10q query)",
            ("dataset", "|O|", "|T|", "#DR", "#MR", "#DRP"),
            out,
            notes=["expected shape: |T| < |O|; reduced #DR/#MR/#DRP shrink"],
        )
    ]


def fig15_17_theta() -> List[Table]:
    """E9: effect of the slice width theta (Figures 15 and 17)."""
    tables: List[Table] = []
    for figure, datasets, app in (
        ("Figure 15", _INFLUENCE, "Application 1 (influence)"),
        ("Figure 17", _DIVERSITY, "Application 2 (diversity)"),
    ):
        rows: List[Sequence] = []
        for name in datasets:
            ds = _dataset(name)
            fn = _score_function(name)
            a, b = ds.query(10)
            for theta in (1, 2, 3, 4, 5):
                _, t_exact = timed(
                    lambda: SliceBRS(theta=theta).solve(ds.points, fn, a, b)
                )
                tree = ds.quadtree()
                _, t_c4 = timed(
                    lambda: CoverBRS(c=1 / 3, theta=theta).solve(
                        ds.points, fn, a, b, quadtree=tree
                    )
                )
                _, t_c9 = timed(
                    lambda: CoverBRS(c=1 / 2, theta=theta).solve(
                        ds.points, fn, a, b, quadtree=tree
                    )
                )
                rows.append((name, theta, t_exact, t_c4, t_c9))
        tables.append(
            Table(
                figure,
                f"runtime (s) vs slice width theta — {app}",
                ("dataset", "theta", "SliceBRS", "CoverBRS4", "CoverBRS9"),
                rows,
                notes=[
                    "expected shape: SliceBRS degrades as theta grows; "
                    "CoverBRS variants are insensitive",
                ],
            )
        )
    return tables


def fig16_scalability(sizes: Tuple[int, ...] = (5000, 10000, 20000, 40000)) -> List[Table]:
    """E10: scalability with the number of objects (Gaussian synthetic)."""
    rows: List[Sequence] = []
    # Fixed query size across sizes, as in the paper's setup.
    reference = scalability_dataset(sizes[0])
    a, b = query_size(reference.space, sizes[0], k=10)
    for n in sizes:
        ds = scalability_dataset(n)
        fn = ds.score_function()
        _, t_exact = timed(lambda: SliceBRS().solve(ds.points, fn, a, b))
        tree = ds.quadtree()
        _, t_c4 = timed(
            lambda: CoverBRS(c=1 / 3).solve(ds.points, fn, a, b, quadtree=tree)
        )
        _, t_c9 = timed(
            lambda: CoverBRS(c=1 / 2).solve(ds.points, fn, a, b, quadtree=tree)
        )
        rows.append((n, t_exact, t_c4, t_c9))
    return [
        Table(
            "Figure 16",
            "runtime (s) vs dataset size (388 categories, 3 labels/object)",
            ("n_objects", "SliceBRS", "CoverBRS4", "CoverBRS9"),
            rows,
            notes=[
                "expected shape: approximate algorithms scale mildly; the "
                "exact algorithm degrades fastest as density grows",
                "paper sizes (20M-120M) scaled down for pure Python",
            ],
        )
    ]


def table7_maxrs() -> List[Table]:
    """E11: adapted SliceBRS vs OE on the MaxRS problem."""
    rows: List[Sequence] = []
    for name in _INFLUENCE + _DIVERSITY:
        ds = _dataset(name)
        for k in (5, 10, 15, 20):
            a, b = ds.query(k)
            adapted, t_adapted = timed(lambda: slicebrs_maxrs(ds.points, a, b))
            oe, t_oe = timed(lambda: oe_maxrs(ds.points, a, b))
            assert abs(adapted.score - oe.score) < 1e-6, "MaxRS solvers disagree"
            rows.append((name, k, t_adapted, t_oe, f"{t_adapted / max(t_oe, 1e-9):.0%}"))
    return [
        Table(
            "Table 7",
            "adapted SliceBRS runtime as a fraction of OE (MaxRS)",
            ("dataset", "k", "SliceBRS-MaxRS (s)", "OE (s)", "ratio"),
            rows,
            notes=["paper reports 20%-40%; shape to check: ratio well below 100%"],
        )
    ]


def fig19_aspect_ratio() -> List[Table]:
    """E12: effect of the query rectangle's aspect ratio (Gowalla)."""
    name = "gowalla_like"
    ds = _dataset(name)
    fn = _score_function(name)
    rows: List[Sequence] = []
    for label, aspect in (("1:3", 1 / 3), ("1:2", 0.5), ("1:1", 1.0),
                          ("2:1", 2.0), ("3:1", 3.0)):
        a, b = ds.query(10, aspect=aspect)
        _, t_exact = timed(lambda: SliceBRS().solve(ds.points, fn, a, b))
        tree = ds.quadtree()
        _, t_c4 = timed(
            lambda: CoverBRS(c=1 / 3).solve(ds.points, fn, a, b, quadtree=tree)
        )
        _, t_c9 = timed(
            lambda: CoverBRS(c=1 / 2).solve(ds.points, fn, a, b, quadtree=tree)
        )
        rows.append((label, t_exact, t_c4, t_c9))
    return [
        Table(
            "Figure 19",
            "runtime (s) vs query aspect ratio (a:b), 10q area, gowalla_like",
            ("aspect", "SliceBRS", "CoverBRS4", "CoverBRS9"),
            rows,
            notes=["expected shape: square queries slightly slower than skewed"],
        )
    ]


def serve_throughput() -> List[Table]:
    """E13: query-serving throughput — cold wave vs cache-warm wave.

    Not a paper experiment: it measures the `repro.serve` subsystem the
    ROADMAP adds on top.  The same burst of distinct queries is fired
    twice at one engine; the second wave must be served from the result
    cache (hit-rate >= 90%, lower p50) while staying byte-identical.
    """
    import time

    from repro.serve.cache import ResultCache
    from repro.serve.executor import ServeEngine
    from repro.serve.model import QueryRequest
    from repro.serve.store import DatasetStore

    ds = scalability_dataset(800, seed=3)
    store = DatasetStore()
    store.add_dataset("bench", ds)
    space = ds.space
    width = space.x_max - space.x_min
    height = space.y_max - space.y_min
    requests = [
        QueryRequest(
            dataset="bench",
            a=round(width * (0.02 + 0.011 * i), 4),
            b=round(height * (0.028 + 0.011 * i), 4),
        )
        for i in range(16)
    ]
    rows: List[Sequence] = []
    with ServeEngine(store, cache=ResultCache(256), workers=4, shards=4,
                     batch_window=0.002) as engine:
        for wave in ("cold", "warm"):
            hits_before = engine.cache.stats.hits
            start = time.perf_counter()
            futures = [engine.submit(req) for req in requests]
            responses = [f.result(timeout=300) for f in futures]
            elapsed = time.perf_counter() - start
            assert all(r.status == "ok" for r in responses), "serve wave failed"
            latencies = sorted(r.seconds for r in responses)

            def quantile(p: float) -> float:
                return latencies[min(len(latencies) - 1, int(p * len(latencies)))]

            hit_rate = (engine.cache.stats.hits - hits_before) / len(requests)
            rows.append(
                (wave, len(requests), len(requests) / max(elapsed, 1e-9),
                 quantile(0.5) * 1e3, quantile(0.99) * 1e3, hit_rate)
            )
    return [
        Table(
            "Serve",
            "serve-mode throughput: identical burst, cold vs warm cache",
            ("wave", "queries", "qps", "p50_ms", "p99_ms", "hit_rate"),
            rows,
            notes=[
                "expected shape: warm wave >= 90% cache hits, lower p50, "
                "higher QPS than the cold wave",
            ],
        )
    ]


def serve_saturation(
    qps_points: Tuple[float, ...] = (6.0, 14.0, 30.0),
    duration: float = 1.2,
) -> List[Table]:
    """E16: open-loop saturation sweep — asyncio vs threaded front end.

    Not a paper experiment: it is the load story ROADMAP item 2 asks
    for.  Both serve engines face the same open-loop Poisson arrival
    process (two tenants, 2:1 traffic shares, per-request deadlines) at
    three target rates spanning comfortable load to ~2x overload.
    Latency is measured from *intended* send times
    (:mod:`repro.serve.loadgen`), so the p99 column is honest under
    saturation.  The asyncio engine walks the degradation ladder
    (exact -> cover -> gridscan) under queue pressure, which is why its
    goodput — served (ok + degraded) responses per second — must beat
    the threaded engine's at the saturation point.
    """
    from repro.serve.aio import AsyncServeEngine
    from repro.serve.executor import ServeEngine
    from repro.serve.loadgen import SubmitFn, WorkloadMix, saturation_sweep
    from repro.serve.store import DatasetStore

    def make_store() -> DatasetStore:
        store = DatasetStore()
        store.add_dataset("bench", scalability_dataset(1200, seed=3))
        return store

    # Exact in-engine solves on this dataset run ~130-150ms: two workers
    # saturate near 13 qps, so the top point is ~2x overload.  Wide,
    # disjoint k choices per tenant keep the coalescer from collapsing
    # the stream to a handful of unique solves (which would hide the
    # queue from the pressure monitor).
    mixes = (
        WorkloadMix(tenant="alpha", share=2.0, dataset="bench",
                    k_choices=tuple(round(1.0 + 0.8 * i, 2)
                                    for i in range(24)),
                    timeout=1.0),
        WorkloadMix(tenant="beta", share=1.0, dataset="bench",
                    k_choices=tuple(round(1.4 + 1.1 * i, 2)
                                    for i in range(17)),
                    timeout=1.0),
    )

    def async_factory() -> Tuple[SubmitFn, Callable[[], None]]:
        engine = AsyncServeEngine(
            make_store(), cache=None, workers=2, queue_capacity=16,
        )
        engine.start_background()
        return (
            lambda req, tenant: engine.submit_threadsafe(req, tenant=tenant),
            engine.close,
        )

    def thread_factory() -> Tuple[SubmitFn, Callable[[], None]]:
        engine = ServeEngine(
            make_store(), cache=None, workers=2, queue_capacity=16,
        )
        return (lambda req, tenant: engine.submit(req), engine.close)

    rows: List[Sequence] = []
    for kind, factory in (("async", async_factory), ("thread", thread_factory)):
        reports = saturation_sweep(
            factory, mixes, qps_points, duration, seed=11
        )
        for report in reports:
            rows.append(
                (
                    kind,
                    report.target_qps,
                    round(report.p50_seconds * 1e3, 3),
                    round(report.p99_seconds * 1e3, 3),
                    round(report.shed_rate, 4),
                    round(report.degraded_rate, 4),
                    round(report.goodput_qps, 3),
                )
            )
    return [
        Table(
            "Serve-Saturation",
            "open-loop saturation sweep: asyncio vs threaded serve tier",
            ("engine", "target_qps", "p50_ms", "p99_ms", "shed_rate",
             "degraded_rate", "goodput_qps"),
            rows,
            notes=[
                "expected shape: async goodput strictly above threaded at "
                "the top (saturating) QPS point — pressure shedding trades "
                "certified quality bounds for throughput",
                "p50/p99 measured from intended send times (no "
                "coordinated omission)",
            ],
        )
    ]


def ingest_churn(n_objects: int = 600, n_rounds: int = 8) -> List[Table]:
    """E15: query serving under a live mutation stream.

    Not a paper experiment: it measures the `repro.ingest` subsystem the
    ROADMAP adds on top.  One engine answers a fixed wave of focused
    queries while a durable ingest pipeline applies batches confined to
    one corner of the space.  Regional cache invalidation is the claim
    under test: mutations evict only the entries whose query window
    touches them, so the churn wave keeps a non-zero hit-rate where a
    whole-dataset version bump would start cold every round.
    """
    import pathlib
    import random
    import tempfile
    import time

    from repro.ingest import IngestLog, IngestPipeline, live_from_diversity
    from repro.ingest.events import Insert
    from repro.serve.cache import ResultCache
    from repro.serve.executor import ServeEngine
    from repro.serve.model import QueryRequest
    from repro.serve.store import DatasetStore

    ds = scalability_dataset(n_objects, seed=3)
    live = live_from_diversity(ds)
    store = DatasetStore()
    cache = ResultCache(256)
    points, _, fn = live.snapshot()
    store.add_points("bench", points, fn, fn_key="coverage", space=ds.space)

    space = ds.space
    width = space.x_max - space.x_min
    height = space.y_max - space.y_min
    # Focus windows centered on actual objects (never empty), spread over
    # the space; mutations land inside the *first* window only, so each
    # round must evict that one entry and keep the other eleven warm.
    rng = random.Random(17)
    anchors = rng.sample(ds.points, 12)
    hot = anchors[0]
    requests = [
        QueryRequest(
            dataset="bench",
            a=round(height * 0.04, 4),
            b=round(width * 0.04, 4),
            focus=(
                max(space.x_min, p.x - width * 0.08),
                min(space.x_max, p.x + width * 0.08),
                max(space.y_min, p.y - height * 0.08),
                min(space.y_max, p.y + height * 0.08),
            ),
        )
        for p in anchors
    ]

    def wave(engine: ServeEngine) -> Tuple[float, float]:
        hits_before = engine.cache.stats.hits
        start = time.perf_counter()
        responses = [engine.query(req, timeout=300) for req in requests]
        elapsed = time.perf_counter() - start
        assert all(r.status == "ok" for r in responses), "churn wave failed"
        hit_rate = (engine.cache.stats.hits - hits_before) / len(requests)
        return len(requests) / max(elapsed, 1e-9), hit_rate

    rows: List[Sequence] = []
    with tempfile.TemporaryDirectory() as tmp:
        wal = pathlib.Path(tmp) / "churn-wal.jsonl"
        with ServeEngine(store, cache=cache, workers=2, shards=2,
                         batch_window=0.0) as engine:
            pipe = IngestPipeline(
                live, IngestLog(wal), store=store, cache=cache,
                dataset_id="bench",
            )
            try:
                wave(engine)  # cold fill
                qps, hit_rate = wave(engine)
                rows.append(("warm", len(requests), qps, hit_rate, 0, 0))

                queries = hits = 0
                evicted_before = cache.stats.invalidations
                elapsed = 0.0
                for round_no in range(n_rounds):
                    pipe.append(
                        [
                            Insert(
                                hot.x + width * rng.uniform(-0.02, 0.02),
                                hot.y + height * rng.uniform(-0.02, 0.02),
                                payload=[round_no % 5],
                            )
                            for _ in range(3)
                        ]
                    )
                    hits_before = engine.cache.stats.hits
                    start = time.perf_counter()
                    responses = [
                        engine.query(req, timeout=300) for req in requests
                    ]
                    elapsed += time.perf_counter() - start
                    assert all(r.status == "ok" for r in responses)
                    queries += len(requests)
                    hits += engine.cache.stats.hits - hits_before
                evicted = cache.stats.invalidations - evicted_before
                rows.append(
                    ("churn", queries, queries / max(elapsed, 1e-9),
                     hits / queries, n_rounds, evicted)
                )
            finally:
                pipe.close()
    return [
        Table(
            "Ingest",
            "serving under churn: regional invalidation keeps the cache warm",
            ("phase", "queries", "qps", "hit_rate", "batches", "evicted"),
            rows,
            notes=[
                "expected shape: churn hit-rate > 0 (untouched focus windows "
                "survive each flip) with > 0 regional evictions",
            ],
        )
    ]


def parallel_speedup(
    n_objects: int = 0, workers: int = 4, n_parts: int = 8
) -> List[Table]:
    """E14: multiprocessing shard backend — serial vs process pool.

    Not a paper experiment: it measures the `repro.parallel` backend the
    ROADMAP adds on top.  One instance (Gaussian points, seeded uniform
    SumFunction weights) is solved twice through the same partitioned
    path — once in-process, once across a pool — so the runtimes differ
    only by the execution backend and the scores must be identical.

    Sized to 200k objects on machines with at least 4 cores (where the
    pool can win); scaled down elsewhere so the correctness half of the
    shape check still runs everywhere.
    """
    import os
    import random

    from repro.functions.weighted_sum import SumFunction
    from repro.parallel import solve_partitioned

    cores = os.cpu_count() or 1
    if n_objects <= 0:
        n_objects = 200_000 if cores >= 4 else 20_000
    ds = scalability_dataset(n_objects, seed=7)
    rng = random.Random(99)
    fn = SumFunction(n_objects, [rng.random() for _ in range(n_objects)])
    a, b = query_size(ds.space, n_objects, k=10)

    serial, t_serial = timed(
        lambda: solve_partitioned(ds.points, fn, a, b, n_parts=n_parts)
    )
    pool, t_pool = timed(
        lambda: solve_partitioned(
            ds.points, fn, a, b, n_parts=n_parts, workers=workers
        )
    )
    speedup = t_serial / max(t_pool, 1e-9)
    rows: List[Sequence] = [
        ("serial", n_objects, cores, 0, t_serial, serial.score, 1.0),
        ("pool", n_objects, cores, workers, t_pool, pool.score, speedup),
    ]
    return [
        Table(
            "Parallel",
            "multiprocessing shard backend: serial vs pool, one instance",
            ("mode", "n_objects", "cores", "workers", "seconds", "score",
             "speedup"),
            rows,
            notes=[
                "expected shape: identical scores; speedup >= 1.5x with 4 "
                "workers on a >= 4-core machine at 200k objects",
            ],
        )
    ]


def columnar_speedup(n_objects: int = 100_000) -> List[Table]:
    """E15: columnar data plane — object-path solvers vs NumPy kernels.

    Not a paper experiment: it measures the `repro.columnar` subsystem
    the ROADMAP adds on top.  One instance (Gaussian points, seeded
    uniform SumFunction weights, a fixed 100x100 query) is solved four
    ways — SliceBRS and OE MaxRS through the object path, then the same
    two searches through the vectorized kernels — so the runtimes differ
    only by the data plane and the scores must be identical.

    Single-core by construction: the speedup is algorithmic (contiguous
    arrays + searchsorted/prefix-sum kernels), not parallelism, so it is
    expected to hold on any machine at the full 100k instance.
    """
    import random

    from repro.columnar.solvers import columnar_oe_maxrs, columnar_slicebrs
    from repro.functions.weighted_sum import SumFunction

    ds = scalability_dataset(n_objects, seed=7)
    rng = random.Random(99)
    weights = [rng.random() for _ in range(n_objects)]
    fn = SumFunction(n_objects, weights)
    a = b = 100.0
    points = ds.points  # materialize outside the timed sections
    ds.columns()  # warm the facade cache: solver time is the signal

    obj_slice, t_obj_slice = timed(lambda: SliceBRS().solve(points, fn, a, b))
    col_slice, t_col_slice = timed(lambda: columnar_slicebrs(ds, fn, a, b))
    obj_oe, t_obj_oe = timed(lambda: oe_maxrs(points, a, b, weights=weights))
    col_oe, t_col_oe = timed(lambda: columnar_oe_maxrs(ds, a, b, weights=weights))

    rows: List[Sequence] = [
        ("slicebrs", "object", n_objects, t_obj_slice, obj_slice.score, 1.0),
        ("slicebrs", "columnar", n_objects, t_col_slice, col_slice.score,
         t_obj_slice / max(t_col_slice, 1e-9)),
        ("oe_maxrs", "object", n_objects, t_obj_oe, obj_oe.score, 1.0),
        ("oe_maxrs", "columnar", n_objects, t_col_oe, col_oe.score,
         t_obj_oe / max(t_col_oe, 1e-9)),
    ]
    return [
        Table(
            "Columnar",
            "NumPy data plane: object-path vs vectorized solver kernels",
            ("solver", "plane", "n_objects", "seconds", "score", "speedup"),
            rows,
            notes=[
                "expected shape: identical scores per solver; columnar "
                ">= 10x per solver at the full 100k instance, single core",
            ],
        )
    ]


#: experiment id -> callable, in presentation order.
ALL_EXPERIMENTS: Dict[str, Callable[[], List[Table]]] = {
    "fig10_11": fig10_fig11_influence,
    "fig12_13": fig12_fig13_diversity,
    "table4": table4_regions,
    "table5": table5_slabs,
    "fig14": fig14_noslice_ablation,
    "table6": table6_cover,
    "fig15_17": fig15_17_theta,
    "fig16": fig16_scalability,
    "table7": table7_maxrs,
    "fig19": fig19_aspect_ratio,
    "serve": serve_throughput,
    "serve-saturation": serve_saturation,
    "ingest": ingest_churn,
    "parallel": parallel_speedup,
    "columnar": columnar_speedup,
}


def _check_quality_runtime(tables: List[Table]) -> List[str]:
    """Shared shape check for Figures 10/11 and 12/13."""
    failures: List[str] = []
    quality, runtime = tables
    for name, k, exact, c4, c9, oe in quality.rows:
        if not exact >= c4 - 1e-9:
            failures.append(f"{quality.experiment}: SliceBRS < CoverBRS4 on {name} k={k}")
        if not c4 >= 0.25 * exact - 1e-9:
            failures.append(f"{quality.experiment}: CoverBRS4 below 1/4 bound on {name} k={k}")
        if not c9 >= exact / 9.0 - 1e-9:
            failures.append(f"{quality.experiment}: CoverBRS9 below 1/9 bound on {name} k={k}")
        if k == 10 and not oe <= exact:
            failures.append(f"{quality.experiment}: OE above exact on {name} k={k}")
    # Runtime: at the largest query on the largest dataset the approximate
    # solvers must win (the headline of Figures 11/13).
    last = runtime.rows[-1]
    _, _, t_exact, t_c4, t_c9, _ = last
    if not (t_c4 < t_exact and t_c9 < t_exact):
        failures.append(f"{runtime.experiment}: CoverBRS not faster at the largest query")
    return failures


def _check_table4(tables: List[Table]) -> List[str]:
    failures = []
    for name, n_dr, n_mr, _ in tables[0].rows:
        if not n_mr < 0.05 * n_dr:
            failures.append(f"Table 4: #MR not << #DR on {name}")
    return failures


def _check_table5(tables: List[Table]) -> List[str]:
    failures = []
    fractions = {}
    for name, _, n_ms, n_msp, _, _ in tables[0].rows:
        fractions[name] = n_msp / max(1, n_ms)
        if not n_msp <= 0.5 * n_ms:
            failures.append(f"Table 5: #MSP not << #MS on {name}")
    if max(fractions, key=fractions.get) != "meetup_like":
        failures.append("Table 5: meetup_like is not the worst-pruning dataset")
    return failures


def _check_fig14(tables: List[Table]) -> List[str]:
    failures = []
    for _, k, _, _, slowdown in tables[0].rows:
        if k >= 5 and not slowdown > 2.0:
            failures.append(f"Figure 14: NSlice not decisively slower at k={k}")
    return failures


def _check_table6(tables: List[Table]) -> List[str]:
    failures = []
    for name, n_o, n_t, _, n_mr, _ in tables[0].rows:
        if not n_t < n_o:
            failures.append(f"Table 6: |T| not smaller than |O| on {name}")
        if not n_mr >= 0:
            failures.append(f"Table 6: bad #MR on {name}")
    return failures


def _check_theta(tables: List[Table]) -> List[str]:
    failures = []
    for table in tables:
        by_dataset: Dict[str, Dict[int, float]] = {}
        for name, theta, t_exact, _, _ in table.rows:
            by_dataset.setdefault(name, {})[theta] = t_exact
        # SliceBRS at theta=5 should not beat theta=1 on the slowest
        # dataset of the pair (the trend Figures 15/17 show).
        slowest = max(by_dataset, key=lambda n: by_dataset[n][5])
        if not by_dataset[slowest][5] > by_dataset[slowest][1]:
            failures.append(f"{table.experiment}: no theta degradation on {slowest}")
    return failures


def _check_fig16(tables: List[Table]) -> List[str]:
    failures = []
    rows = tables[0].rows
    exact_times = [row[1] for row in rows]
    if exact_times != sorted(exact_times):
        failures.append("Figure 16: exact runtime not increasing with n")
    first_gap = rows[0][1] / max(rows[0][2], 1e-9)
    last_gap = rows[-1][1] / max(rows[-1][2], 1e-9)
    if not last_gap > first_gap:
        failures.append("Figure 16: exact/approx gap does not widen with n")
    return failures


def _check_table7(tables: List[Table]) -> List[str]:
    rows = tables[0].rows
    below = sum(1 for row in rows if row[2] < row[3])
    if below < len(rows) * 0.6:
        return ["Table 7: adapted SliceBRS not faster than OE on most rows"]
    return []


def _check_serve(tables: List[Table]) -> List[str]:
    failures = []
    rows = {row[0]: row for row in tables[0].rows}
    cold, warm = rows["cold"], rows["warm"]
    if not warm[5] >= 0.9:
        failures.append(f"Serve: warm hit-rate {warm[5]:.0%} below 90%")
    if not warm[3] <= cold[3]:
        failures.append("Serve: warm p50 not lower than cold p50")
    return failures


def _check_saturation(tables: List[Table]) -> List[str]:
    """Shape check: >=3 QPS points per engine, asyncio wins at saturation."""
    failures: List[str] = []
    (table,) = tables
    goodput: Dict[str, Dict[float, float]] = {}
    for engine, qps, _p50, _p99, _shed, _deg, gput in table.rows:
        goodput.setdefault(engine, {})[qps] = gput
    for engine in ("async", "thread"):
        if len(goodput.get(engine, {})) < 3:
            failures.append(
                f"serve-saturation: fewer than 3 QPS points for {engine}"
            )
    if not failures:
        top = max(goodput["async"])
        if not goodput["async"][top] > goodput["thread"][top]:
            failures.append(
                "serve-saturation: asyncio goodput not strictly above "
                f"threaded at saturation ({goodput['async'][top]:.2f} vs "
                f"{goodput['thread'][top]:.2f} qps)"
            )
    return failures


def _check_ingest(tables: List[Table]) -> List[str]:
    failures = []
    rows = {row[0]: row for row in tables[0].rows}
    churn = rows["churn"]
    if not churn[3] > 0:
        failures.append(
            f"Ingest: churn hit-rate {churn[3]:.0%} is zero — regional "
            "invalidation is over-evicting"
        )
    if not churn[5] > 0:
        failures.append("Ingest: no regional evictions under churn")
    if not churn[4] > 0:
        failures.append("Ingest: no mutation batches were applied")
    return failures


def _check_parallel(tables: List[Table]) -> List[str]:
    import os

    failures = []
    rows = {row[0]: row for row in tables[0].rows}
    serial, pool = rows["serial"], rows["pool"]
    if abs(serial[5] - pool[5]) > 1e-9:
        failures.append(
            f"Parallel: scores differ between serial ({serial[5]}) and "
            f"pool ({pool[5]})"
        )
    # The speedup claim only binds where the pool can physically win:
    # enough cores for the configured workers, at the full instance size.
    if (os.cpu_count() or 1) >= 4 and pool[1] >= 200_000 and pool[6] < 1.5:
        failures.append(
            f"Parallel: speedup {pool[6]:.2f}x below 1.5x with "
            f"{pool[3]} workers"
        )
    return failures


def _check_columnar(tables: List[Table]) -> List[str]:
    failures = []
    rows = {(row[0], row[1]): row for row in tables[0].rows}
    for solver in ("slicebrs", "oe_maxrs"):
        obj, col = rows[(solver, "object")], rows[(solver, "columnar")]
        if abs(obj[4] - col[4]) > 1e-9:
            failures.append(
                f"Columnar: {solver} scores differ between object "
                f"({obj[4]}) and columnar ({col[4]}) planes"
            )
        # The 10x claim binds only at the full instance size; smoke runs
        # at reduced n still get a warn-level 3x floor via --check logs.
        if col[2] >= 100_000 and col[5] < 10.0:
            failures.append(
                f"Columnar: {solver} speedup {col[5]:.1f}x below 10x at "
                f"n={col[2]}"
            )
        elif col[2] < 100_000 and col[5] < 3.0:
            failures.append(
                f"Columnar: {solver} speedup {col[5]:.1f}x below the 3x "
                f"smoke floor at n={col[2]}"
            )
    return failures


def _check_fig19(tables: List[Table]) -> List[str]:
    times = {row[0]: row[1] for row in tables[0].rows}
    if not (times["1:1"] > times["1:3"] and times["1:1"] > times["3:1"]):
        return ["Figure 19: square query not the slowest"]
    return []


#: experiment id -> shape validator over its tables; returns failures.
SHAPE_CHECKS: Dict[str, Callable[[List[Table]], List[str]]] = {
    "fig10_11": _check_quality_runtime,
    "fig12_13": _check_quality_runtime,
    "table4": _check_table4,
    "table5": _check_table5,
    "fig14": _check_fig14,
    "table6": _check_table6,
    "fig15_17": _check_theta,
    "fig16": _check_fig16,
    "table7": _check_table7,
    "fig19": _check_fig19,
    "serve": _check_serve,
    "serve-saturation": _check_saturation,
    "ingest": _check_ingest,
    "parallel": _check_parallel,
    "columnar": _check_columnar,
}
