"""Small utilities shared by the benchmark experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.runtime.budget import Budget, budget_scope
from repro.runtime.errors import BRSError


def timed(
    fn: Callable[[], Any], budget: Optional[Budget] = None
) -> Tuple[Any, float]:
    """Run ``fn`` once and return ``(result, wall seconds)``.

    With a ``budget`` the call runs inside a
    :func:`~repro.runtime.budget.budget_scope`, so budget-aware solvers
    invoked anywhere beneath ``fn`` pick it up ambiently and come back
    with anytime answers instead of overrunning the benchmark.
    """
    start = time.perf_counter()
    if budget is None:
        result = fn()
    else:
        with budget_scope(budget):
            result = fn()
    return result, time.perf_counter() - start


@dataclass
class RunOutcome:
    """What happened when one experiment ran under the harness.

    Attributes:
        status: ``"ok"``, ``"degraded"``, ``"timeout"``, or ``"error"``.
        seconds: wall-clock time the run took.
        result: whatever the experiment returned (``None`` on error).
        error: one-line description when ``status == "error"``.
        metrics: registry snapshot of the run's solver work counters, when
            the run was collected with ``collect_metrics=True``.
    """

    status: str
    seconds: float
    result: Any = None
    error: Optional[str] = None
    metrics: Optional[Dict[str, dict]] = None


def run_with_status(
    fn: Callable[[], Any],
    budget: Optional[Budget] = None,
    collect_metrics: bool = False,
) -> RunOutcome:
    """Run ``fn`` under an optional budget and never let it raise.

    The contract the benchmark driver needs: one hanging or crashing
    experiment must not wedge the whole run.  Budget-aware code beneath
    ``fn`` sees the budget ambiently (see :func:`timed`); anytime results
    that report a non-``"ok"`` status propagate it into the outcome, and
    any :class:`~repro.runtime.errors.BRSError` (or unexpected exception)
    is captured as ``status="error"`` instead of escaping.

    With ``collect_metrics=True`` the run executes inside a fresh
    :func:`~repro.obs.metrics.metrics_scope` and the outcome carries the
    registry snapshot — even for failed runs, where the counters say how
    far the experiment got.
    """
    registry = MetricsRegistry() if collect_metrics else None
    start = time.perf_counter()
    try:
        if registry is not None:
            with metrics_scope(registry):
                result, seconds = timed(fn, budget=budget)
        else:
            result, seconds = timed(fn, budget=budget)
    except BRSError as exc:
        return RunOutcome(
            status="error",
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            metrics=registry.snapshot() if registry is not None else None,
        )
    except Exception as exc:  # pragma: no cover - defensive catch-all
        return RunOutcome(
            status="error",
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            metrics=registry.snapshot() if registry is not None else None,
        )
    status = "ok"
    for candidate in _iter_statuses(result):
        if candidate == "timeout":
            status = "timeout"
            break
        if candidate == "degraded":
            status = "degraded"
    return RunOutcome(
        status=status,
        seconds=seconds,
        result=result,
        metrics=registry.snapshot() if registry is not None else None,
    )


def _iter_statuses(result: Any):
    """Yield ``status`` strings found on a result or a sequence of them."""
    if hasattr(result, "status"):
        yield result.status
    elif isinstance(result, (list, tuple)):
        for item in result:
            if hasattr(item, "status"):
                yield item.status


@dataclass
class Table:
    """A printable experiment result.

    Attributes:
        experiment: identifier (e.g. "Figure 11").
        title: one-line description.
        headers: column names.
        rows: cell values; floats are rendered with sensible precision.
        notes: optional caveat lines printed under the table.
    """

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        return format_table(
            f"{self.experiment} — {self.title}", self.headers, self.rows, self.notes
        )


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Sequence[str] = (),
) -> str:
    """Render an ASCII table with a title and optional footnotes."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(row[i]) for row in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]

    def line(values: Sequence[str]) -> str:
        return "  ".join(str(v).rjust(w) for v, w in zip(values, widths))

    out = [title, "=" * len(title), line([str(h) for h in headers])]
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    for note in notes:
        out.append(f"  note: {note}")
    return "\n".join(out) + "\n"
