"""Small utilities shared by the benchmark experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence, Tuple


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` once and return ``(result, wall seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@dataclass
class Table:
    """A printable experiment result.

    Attributes:
        experiment: identifier (e.g. "Figure 11").
        title: one-line description.
        headers: column names.
        rows: cell values; floats are rendered with sensible precision.
        notes: optional caveat lines printed under the table.
    """

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        return format_table(
            f"{self.experiment} — {self.title}", self.headers, self.rows, self.notes
        )


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Sequence[str] = (),
) -> str:
    """Render an ASCII table with a title and optional footnotes."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(row[i]) for row in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]

    def line(values: Sequence[str]) -> str:
        return "  ".join(str(v).rjust(w) for v, w in zip(values, widths))

    out = [title, "=" * len(title), line([str(h) for h in headers])]
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    for note in notes:
        out.append(f"  note: {note}")
    return "\n".join(out) + "\n"
