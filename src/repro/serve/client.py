"""Small stdlib HTTP client for the serving protocol.

Wraps ``urllib.request`` so scripts, tests, and the benchmark harness can
talk to a :class:`~repro.serve.server.BRSServer` without any dependency.
Non-2xx responses that still carry the JSON protocol envelope (a rejected
query is HTTP 429 with a full response body) are decoded rather than
raised, so callers handle backpressure as data; transport-level failures
raise :class:`ServeClientError`.

When the caller runs under a :func:`repro.obs.trace.trace_scope`, each
:meth:`ServeClient.query` opens a ``client.query`` span and sends its
trace context in the ``X-BRS-Trace`` header, so the server's spans join
the caller's trace (one tree from client call to solver leaf).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import TRACE_HEADER, active_tracer
from repro.runtime.errors import BRSError
from repro.serve.model import QueryRequest, QueryResponse


class ServeClientError(BRSError):
    """The server could not be reached or spoke something other than JSON."""


class ServeClient:
    """Client for one serving endpoint.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8331"`` (no trailing slash
            needed); :attr:`~repro.serve.server.BRSServer.url` hands you
            this directly.
        timeout: socket timeout in seconds for each HTTP call (distinct
            from the per-query deadline inside a request).
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _call(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if extra_headers:
            headers.update(extra_headers)
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read()
        except urllib.error.HTTPError as exc:
            # Protocol-level failures (400/429/500) still carry the JSON
            # envelope; surface them as decoded payloads.
            raw = exc.read()
        except (urllib.error.URLError, OSError) as exc:
            raise ServeClientError(f"cannot reach {self.base_url}: {exc}")
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeClientError(f"non-JSON response from server: {exc}")
        if not isinstance(doc, dict):
            raise ServeClientError(f"malformed response envelope: {doc!r}")
        return doc

    # -- protocol --------------------------------------------------------

    def query(self, request: QueryRequest) -> QueryResponse:
        """Solve one query; rejected/error responses are returned, not raised.

        Under an active :func:`~repro.obs.trace.trace_scope` the call is
        recorded as a ``client.query`` span and its context rides the
        ``X-BRS-Trace`` header, joining the server's spans to this trace.

        Raises:
            ServeClientError: on transport failures or a body that is not
                a query response (e.g. a 400 validation error).
        """
        tracer = active_tracer()
        with tracer.span("client.query", dataset=request.dataset):
            extra: Optional[Dict[str, str]] = None
            if tracer.enabled:
                extra = {TRACE_HEADER: tracer.context().to_header()}
            doc = self._call(
                "POST", "/v1/query", request.to_json(), extra_headers=extra
            )
        if "status" not in doc:
            raise ServeClientError(
                f"server refused the query: {doc.get('error', doc)!r}"
            )
        return QueryResponse.from_json(doc)

    def query_raw(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """POST an arbitrary body to ``/v1/query``; returns the raw envelope.

        Exists for protocol tests (malformed bodies, unknown fields).
        """
        return self._call("POST", "/v1/query", body)

    def datasets(self) -> List[Dict[str, Any]]:
        """Describe the datasets the server is answering for."""
        return self._call("GET", "/v1/datasets").get("datasets", [])

    def stats(self) -> Dict[str, Any]:
        """The server's cache/queue/latency snapshot."""
        return self._call("GET", "/v1/stats")

    def debug_slo(self) -> Dict[str, Any]:
        """The server's sliding-window SLO snapshot (``/debug/slo``)."""
        return self._call("GET", "/debug/slo")

    def invalidate(self, dataset: str) -> Tuple[str, int]:
        """Bump a dataset's version server-side; returns ``(id, version)``.

        Raises:
            ServeClientError: when the server refused (unknown dataset).
        """
        doc = self._call("POST", "/v1/invalidate", {"dataset": dataset})
        if "version" not in doc:
            raise ServeClientError(
                f"invalidate failed: {doc.get('error', doc)!r}"
            )
        return doc["dataset"], int(doc["version"])

    def metrics_text(self) -> str:
        """The server's Prometheus text exposition (``/metrics``)."""
        req = urllib.request.Request(
            self.base_url + "/metrics", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            raise ServeClientError(f"cannot reach {self.base_url}: {exc}")

    def healthy(self) -> bool:
        """True when the server answers its liveness probe."""
        try:
            return self._call("GET", "/healthz").get("status") == "ok"
        except ServeClientError:
            return False
