"""Weighted-fair queueing for multi-tenant serve traffic.

:class:`WeightedFairQueue` implements start-time fair queueing (SFQ):
every enqueued item receives a *start tag* (the later of the queue's
virtual time and the tenant's last finish tag) and a *finish tag*
(``start + size / weight``); dequeue always pops the smallest finish
tag.  Virtual time advances to the start tag of the item in service, so
an idle tenant re-enters at the current virtual time instead of
accumulating unbounded credit.

The scheme gives two guarantees the property suite pins down:

* **Bounded bypass (no starvation).**  Once an item of tenant *i* is
  queued with ``q_i`` items of *i* ahead of it, the number of items of
  any other tenant *j* that arrive later yet dequeue earlier is at most
  ``(q_i + 1) * w_j / w_i + 1`` — so an adversarial arrival order can
  delay a tenant by a constant (weight-ratio) factor, never unboundedly.
* **Weight-proportional throughput.**  Continuously backlogged tenants
  dequeue in proportion to their weights over any long-enough run.

The queue is a pure data structure driven by its callers' events — no
clock, no threads of its own — and is safe to drive from both asyncio
callbacks and worker threads (all state mutations happen under one
lock, with no blocking calls inside it).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Weight assigned to tenants never explicitly registered.
DEFAULT_WEIGHT = 1.0


@dataclass(frozen=True)
class QueueStats:
    """Point-in-time occupancy snapshot of a :class:`WeightedFairQueue`.

    Attributes:
        depth: total queued items across all tenants.
        per_tenant: queued items per tenant id (zero-depth tenants with a
            registered weight included).
        virtual_time: the queue's current virtual clock.
    """

    depth: int
    per_tenant: Dict[str, int]
    virtual_time: float


class WeightedFairQueue:
    """A start-time fair queue over opaque items, keyed by tenant id.

    Args:
        weights: initial ``tenant id -> weight`` map; unknown tenants
            enqueue with :data:`DEFAULT_WEIGHT`.

    Raises:
        ValueError: on a non-positive initial weight.
    """

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self._weights: Dict[str, float] = {}
        for tenant, weight in (weights or {}).items():
            self._check_weight(tenant, weight)
            self._weights[tenant] = float(weight)
        self._heap: List[Tuple[float, int, str, Any]] = []
        self._last_finish: Dict[str, float] = {}
        self._depths: Dict[str, int] = {}
        self._virtual_time = 0.0
        self._seq = itertools.count()
        self._lock = threading.Lock()

    @staticmethod
    def _check_weight(tenant: str, weight: float) -> None:
        if not (weight > 0):
            raise ValueError(
                f"tenant {tenant!r} weight must be positive, got {weight!r}"
            )

    def set_weight(self, tenant: str, weight: float) -> None:
        """Register or update a tenant's scheduling weight.

        Already-queued items keep the tags they were admitted with; the
        new weight applies from the next :meth:`push`.

        Raises:
            ValueError: on a non-positive weight.
        """
        self._check_weight(tenant, weight)
        with self._lock:
            self._weights[tenant] = float(weight)

    def weight_of(self, tenant: str) -> float:
        """The tenant's effective weight (default for unknown tenants)."""
        with self._lock:
            return self._weights.get(tenant, DEFAULT_WEIGHT)

    def push(self, tenant: str, item: Any, size: float = 1.0) -> float:
        """Enqueue ``item`` for ``tenant``; returns its finish tag.

        ``size`` is the item's nominal cost (1.0 for a unit query); a
        tenant's backlog drains at ``weight`` units of size per virtual
        time unit.

        Raises:
            ValueError: on a non-positive size.
        """
        if not (size > 0):
            raise ValueError(f"size must be positive, got {size!r}")
        with self._lock:
            weight = self._weights.get(tenant, DEFAULT_WEIGHT)
            start = max(self._virtual_time, self._last_finish.get(tenant, 0.0))
            finish = start + float(size) / weight
            self._last_finish[tenant] = finish
            heapq.heappush(self._heap, (finish, next(self._seq), tenant, item))
            self._depths[tenant] = self._depths.get(tenant, 0) + 1
            return finish

    def pop(self) -> Optional[Tuple[str, Any]]:
        """Dequeue the smallest-finish-tag item as ``(tenant, item)``.

        Returns ``None`` when empty.  Virtual time advances to the
        popped item's finish tag floor (its service start), so weights
        stay meaningful across idle gaps.
        """
        with self._lock:
            if not self._heap:
                return None
            finish, _, tenant, item = heapq.heappop(self._heap)
            # Advance the virtual clock monotonically; the popped item's
            # start tag is finish - size/weight, but finish itself is a
            # valid (slightly ahead) clock and keeps pop O(log n).
            if finish > self._virtual_time:
                self._virtual_time = finish
            depth = self._depths.get(tenant, 1) - 1
            if depth <= 0:
                self._depths.pop(tenant, None)
            else:
                self._depths[tenant] = depth
            return tenant, item

    def peek(self) -> Optional[Tuple[str, Any]]:
        """The next ``(tenant, item)`` :meth:`pop` would return, unpopped.

        Lets the scheduler bound how many *new* batches a cycle opens
        without re-queueing (which would re-tag the item and break the
        fairness order).  Returns ``None`` when empty.
        """
        with self._lock:
            if not self._heap:
                return None
            _, _, tenant, item = self._heap[0]
            return tenant, item

    def __len__(self) -> int:
        """Total queued items."""
        with self._lock:
            return len(self._heap)

    def depth(self, tenant: Optional[str] = None) -> int:
        """Queued items for one tenant, or in total when ``tenant=None``."""
        with self._lock:
            if tenant is None:
                return len(self._heap)
            return self._depths.get(tenant, 0)

    def stats(self) -> QueueStats:
        """Occupancy snapshot (see :class:`QueueStats`)."""
        with self._lock:
            per_tenant = {t: 0 for t in self._weights}
            per_tenant.update(self._depths)
            return QueueStats(
                depth=len(self._heap),
                per_tenant=per_tenant,
                virtual_time=self._virtual_time,
            )

    def drain(self) -> List[Tuple[str, Any]]:
        """Remove and return everything, in fair-schedule order."""
        items: List[Tuple[str, Any]] = []
        while True:
            popped = self.pop()
            if popped is None:
                return items
            items.append(popped)


def bypass_bound(
    queued_ahead: int, own_weight: float, other_weights: List[float]
) -> float:
    """Worst-case later-arriving items that may dequeue before yours.

    For an item of a tenant with weight ``own_weight`` and
    ``queued_ahead`` same-tenant items already queued, at most
    ``(queued_ahead + 1) * w_j / own_weight + 1`` later arrivals of each
    competing tenant ``j`` can be served first.  The property suite
    asserts observed bypass never exceeds this.
    """
    return sum(
        (queued_ahead + 1) * w / own_weight + 1 for w in other_weights
    )
