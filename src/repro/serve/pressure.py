"""Pressure-driven shedding policy: queue + SLO burn → runtime ladder rung.

Per-request deadlines (PR 3) bound each query's cost, but they react
*after* a query is already late.  Under sustained overload the right
move is to answer *earlier* queries more cheaply before the backlog
turns into deadline misses.  :class:`PressureMonitor` turns two live
signals into that decision:

* **backlog ratio** — fair-queue depth over the engine's capacity
  (queueing is the leading indicator of overload), and
* **SLO error-budget burn** — the serve tier's
  :class:`~repro.obs.slo.SLOTracker` burn rate plus its p99 verdict
  (the trailing confirmation that users are feeling it).

The monitor maps the combined signal onto the runtime ladder the
solvers already implement (:mod:`repro.serve.solvecore`):

====== ============ ===========================================
level  rung         meaning
====== ============ ===========================================
0      ``exact``    healthy: full exact-over-shards contract
1      ``cover``    shedding: certified (1/4)-approx answers
2      ``grid``     overload: coarse anytime answers
====== ============ ===========================================

Transitions use hysteresis — a level is entered at its ``enter``
threshold but only left below its ``exit`` threshold — so a noisy
signal cannot flap the fleet between rungs.  The monitor is driven
purely by :meth:`observe` calls (no clock, no thread), which keeps it
deterministic under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.metrics import active_registry
from repro.serve.solvecore import RUNG_COVER, RUNG_EXACT, RUNG_GRID

#: Pressure levels, in escalation order.
LEVEL_HEALTHY = 0
LEVEL_SHEDDING = 1
LEVEL_OVERLOAD = 2

_RUNG_OF_LEVEL = {
    LEVEL_HEALTHY: RUNG_EXACT,
    LEVEL_SHEDDING: RUNG_COVER,
    LEVEL_OVERLOAD: RUNG_GRID,
}


@dataclass(frozen=True)
class PressurePolicy:
    """Thresholds governing the pressure state machine.

    The pressure *score* is ``max(backlog_ratio, burn_factor)`` where
    ``burn_factor`` is the SLO error-budget burn scaled by
    :attr:`burn_weight` (a burn of 1.0 — consuming the budget exactly as
    provisioned — maps to a score of ``burn_weight``), bumped to at
    least :attr:`enter_shedding` while the tracker's p99 verdict fails.

    Attributes:
        enter_shedding / exit_shedding: score to enter level 1, and the
            (lower) score required to drop back to level 0.
        enter_overload / exit_overload: same pair for level 2.
        burn_weight: how strongly budget burn counts toward the score.
    """

    enter_shedding: float = 0.5
    exit_shedding: float = 0.25
    enter_overload: float = 0.9
    exit_overload: float = 0.6
    burn_weight: float = 0.5

    def __post_init__(self) -> None:
        """Validate threshold ordering.

        Raises:
            ValueError: when an exit threshold is not strictly below its
                enter threshold, or the two levels are out of order.
        """
        if not (0 <= self.exit_shedding < self.enter_shedding):
            raise ValueError(
                "exit_shedding must be below enter_shedding, got "
                f"{self.exit_shedding} / {self.enter_shedding}"
            )
        if not (self.exit_overload < self.enter_overload):
            raise ValueError(
                "exit_overload must be below enter_overload, got "
                f"{self.exit_overload} / {self.enter_overload}"
            )
        if self.enter_overload <= self.enter_shedding:
            raise ValueError(
                "enter_overload must exceed enter_shedding, got "
                f"{self.enter_overload} / {self.enter_shedding}"
            )


class PressureMonitor:
    """Hysteretic pressure state machine over backlog + SLO burn.

    Not thread-safe by itself: the owning engine drives :meth:`observe`
    from its single scheduler task/thread and readers only see the
    published level through :meth:`level`/:meth:`rung` (plain attribute
    reads of an int/str, atomic in CPython).
    """

    def __init__(self, policy: Optional[PressurePolicy] = None) -> None:
        self.policy = policy if policy is not None else PressurePolicy()
        self._level = LEVEL_HEALTHY
        self._score = 0.0
        self._transitions = 0

    def observe(
        self,
        backlog_ratio: float,
        slo: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Feed one observation; returns the (possibly new) level.

        Args:
            backlog_ratio: queued work over capacity (>= 0; values above
                1.0 mean the queue itself is saturated).
            slo: an :meth:`SLOTracker.snapshot` dict, or ``None`` when no
                tracker is wired (backlog alone then drives the level).
        """
        policy = self.policy
        score = max(0.0, float(backlog_ratio))
        if slo is not None:
            burn = float(slo.get("error_budget_burn", 0.0))
            score = max(score, burn * policy.burn_weight)
            verdicts = slo.get("verdicts") or {}
            if verdicts.get("p99_ok") is False:
                # A failing latency verdict is overload evidence even
                # when the queue happens to be momentarily short.
                score = max(score, policy.enter_shedding)
        previous = self._level
        level = previous
        if previous == LEVEL_HEALTHY:
            if score >= policy.enter_overload:
                level = LEVEL_OVERLOAD
            elif score >= policy.enter_shedding:
                level = LEVEL_SHEDDING
        elif previous == LEVEL_SHEDDING:
            if score >= policy.enter_overload:
                level = LEVEL_OVERLOAD
            elif score <= policy.exit_shedding:
                level = LEVEL_HEALTHY
        else:  # LEVEL_OVERLOAD
            if score <= policy.exit_shedding:
                level = LEVEL_HEALTHY
            elif score <= policy.exit_overload:
                level = LEVEL_SHEDDING
        self._score = score
        if level != previous:
            self._level = level
            self._transitions += 1
            active_registry().counter(
                "brs_serve_pressure_transitions_total",
                help="pressure-level changes (hysteresis-filtered)",
            ).inc()
        active_registry().gauge(
            "brs_serve_pressure_level",
            help="current shedding level: 0 healthy, 1 cover, 2 grid",
        ).set(float(self._level))
        return self._level

    def level(self) -> int:
        """The current pressure level (0/1/2)."""
        return self._level

    def rung(self) -> str:
        """The runtime-ladder rung queries should run at right now."""
        return _RUNG_OF_LEVEL[self._level]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable state for the stats endpoint."""
        return {
            "level": self._level,
            "rung": _RUNG_OF_LEVEL[self._level],
            "score": self._score,
            "transitions": self._transitions,
            "policy": {
                "enter_shedding": self.policy.enter_shedding,
                "exit_shedding": self.policy.exit_shedding,
                "enter_overload": self.policy.enter_overload,
                "exit_overload": self.policy.exit_overload,
                "burn_weight": self.policy.burn_weight,
            },
        }
