"""Dataset store: what the serving layer resolves query dataset ids against.

One server process serves a fixed set of datasets, each owning its point
set, its score function, and a monotonically increasing *version*.  The
version is the invalidation mechanism: bumping it (because the data was
replaced, or an operator asked for an explicit invalidation) changes
every normalized query key derived from the dataset, so previously cached
answers become unreachable.

The store accepts three kinds of sources:

* registry datasets (:class:`~repro.datasets.registry.DiversityDataset`
  and :class:`~repro.datasets.registry.InfluenceDataset`) — the analogs
  the benchmarks use, with ``k*q`` sizing support;
* JSON dataset files (the :mod:`repro.io.json_io` format);
* raw ``(points, f)`` pairs, for tests and embedded use.

Thread-safe: registration and resolution hold one lock; the entries
themselves are treated as immutable after registration (replacement
installs a fresh entry under a bumped version).
"""

from __future__ import annotations

import pathlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.datasets.registry import (
    DiversityDataset,
    InfluenceDataset,
    query_size,
)
from repro.functions.base import SetFunction
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.runtime.errors import InvalidQueryError


def _space_of(points: Sequence[Point]) -> Rect:
    """Bounding box of ``points``, padded so it is never degenerate."""
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    pad_x = max((max(xs) - min(xs)) * 0.01, 1.0)
    pad_y = max((max(ys) - min(ys)) * 0.01, 1.0)
    return Rect(min(xs) - pad_x, max(xs) + pad_x, min(ys) - pad_y, max(ys) + pad_y)


@dataclass
class ServedDataset:
    """One dataset as the serving layer sees it.

    Attributes:
        id: the id clients address queries to.
        points: object locations (ids are positions here).
        fn: the score function queries are evaluated with.
        fn_key: stable identifier of the function configuration; part of
            every normalized query key.
        space: the dataset's space (used for ``k*q`` sizing).
        version: current dataset version (starts at 1).
        kind: ``"diversity"``, ``"influence"``, or ``"custom"``.
        mutation_seq: how many ingest batches have become visible on this
            version.  Regional invalidation keeps the version (and so the
            cache keys) stable across churn; the executor compares
            mutation_seq before caching so an answer solved against an
            older snapshot is never stored against a newer one.
        external_ids: stable object id of each position, when the entry
            is an ingest snapshot (``None`` means positions *are* the
            ids).  Responses report external ids, which survive the
            compaction each snapshot performs.
    """

    id: str
    points: List[Point]
    fn: SetFunction
    fn_key: str
    space: Rect
    version: int = 1
    kind: str = "custom"
    mutation_seq: int = 0
    external_ids: Optional[List[int]] = None
    _columns: Optional[Any] = None
    _columns_key: Optional[Tuple[int, int]] = None

    def columns(self):
        """The entry's coordinate columns, cached per (version, mutation_seq).

        Entries are otherwise immutable after registration, but
        :meth:`DatasetStore.bump_version` mutates ``version`` in place, so
        the cache is keyed on the invalidation counters rather than
        trusting identity: a bumped or flipped entry rebuilds its columns
        on the next ask.

        Returns:
            The :class:`~repro.columnar.dataset.ColumnarDataset` of
            :attr:`points`.
        """
        from repro.columnar.dataset import ColumnarDataset

        key = (self.version, self.mutation_seq)
        if self._columns is None or self._columns_key != key:
            self._columns = ColumnarDataset.from_points(self.points)
            self._columns_key = key
        return self._columns

    def resolve_size(
        self, k: float, aspect: Optional[float] = None
    ) -> Tuple[float, float]:
        """``(a, b)`` for a ``k*q`` query on this dataset (Section 6.1)."""
        return query_size(self.space, len(self.points), k, aspect)

    def describe(self) -> Dict[str, Any]:
        """JSON-serializable summary for the datasets endpoint."""
        return {
            "id": self.id,
            "kind": self.kind,
            "objects": len(self.points),
            "version": self.version,
            "mutation_seq": self.mutation_seq,
            "fn_key": self.fn_key,
            "space": [
                self.space.x_min,
                self.space.x_max,
                self.space.y_min,
                self.space.y_max,
            ],
        }


class DatasetStore:
    """Registry of datasets a server instance answers queries for."""

    def __init__(self) -> None:
        self._entries: Dict[str, ServedDataset] = {}
        self._lock = threading.Lock()

    # -- registration ----------------------------------------------------

    def add_points(
        self,
        dataset_id: str,
        points: Sequence[Point],
        fn: SetFunction,
        fn_key: str = "custom",
        space: Optional[Rect] = None,
    ) -> ServedDataset:
        """Register a raw point set with its score function.

        Raises:
            InvalidQueryError: on an empty point set or a duplicate id.
        """
        if not points:
            raise InvalidQueryError(f"dataset {dataset_id!r} has no objects")
        entry = ServedDataset(
            id=dataset_id,
            points=list(points),
            fn=fn,
            fn_key=fn_key,
            space=space if space is not None else _space_of(points),
        )
        return self._install(entry, expect_new=True)

    def add_dataset(
        self,
        dataset_id: str,
        dataset: Union[DiversityDataset, InfluenceDataset],
        n_rr_sets: int = 2000,
        seed: int = 0,
    ) -> ServedDataset:
        """Register a registry dataset (diversity or influence analog).

        Influence datasets get their RIS-backed function built once here
        (``n_rr_sets``/``seed`` become part of the function key, so
        differently configured estimators never share cache entries).
        """
        if isinstance(dataset, DiversityDataset):
            fn: SetFunction = dataset.score_function()
            fn_key, kind = "coverage", "diversity"
        elif isinstance(dataset, InfluenceDataset):
            fn = dataset.score_function(n_rr_sets=n_rr_sets, seed=seed)
            fn_key, kind = f"influence:rr={n_rr_sets}:seed={seed}", "influence"
        else:
            raise InvalidQueryError(
                f"cannot serve a {type(dataset).__name__}; expected a "
                "DiversityDataset or InfluenceDataset"
            )
        entry = ServedDataset(
            id=dataset_id,
            points=list(dataset.points),
            fn=fn,
            fn_key=fn_key,
            space=dataset.space,
            kind=kind,
        )
        return self._install(entry, expect_new=True)

    def add_file(
        self, path: Union[str, pathlib.Path], dataset_id: Optional[str] = None
    ) -> ServedDataset:
        """Register a JSON dataset file; the id defaults to the file stem."""
        from repro.io.json_io import load_dataset

        dataset = load_dataset(path)
        if dataset_id is None:
            dataset_id = pathlib.Path(path).stem
        return self.add_dataset(dataset_id, dataset)

    def replace_points(
        self, dataset_id: str, points: Sequence[Point], fn: SetFunction
    ) -> ServedDataset:
        """Swap a dataset's data in place, bumping its version.

        The new entry keeps the old function key and space kind; callers
        that changed the function family should re-register instead.

        Raises:
            InvalidQueryError: on an unknown id or empty point set.
        """
        if not points:
            raise InvalidQueryError(f"dataset {dataset_id!r} has no objects")
        old = self.resolve(dataset_id)
        entry = ServedDataset(
            id=dataset_id,
            points=list(points),
            fn=fn,
            fn_key=old.fn_key,
            space=_space_of(points),
            version=old.version + 1,
            kind=old.kind,
        )
        return self._install(entry, expect_new=False)

    def apply_regional(
        self,
        dataset_id: str,
        points: Sequence[Point],
        fn: SetFunction,
        external_ids: Sequence[int],
        space: Optional[Rect] = None,
    ) -> ServedDataset:
        """Atomically flip a dataset to a new ingest snapshot.

        Unlike :meth:`replace_points` this keeps the *version* — cache
        keys for the dataset stay reachable — and bumps ``mutation_seq``
        instead.  The caller (the ingest pipeline) pairs the flip with a
        **regional** cache invalidation covering exactly the touched
        rectangles, so untouched cached answers survive the mutation.

        The dictionary swap inside :meth:`_install` is the visibility
        point: readers resolve either the old snapshot or the new one,
        never a mixture.

        Raises:
            InvalidQueryError: on an unknown id or empty point set.
        """
        if not points:
            raise InvalidQueryError(f"dataset {dataset_id!r} has no objects")
        old = self.resolve(dataset_id)
        if space is None:
            inside = all(
                old.space.x_min <= p.x <= old.space.x_max
                and old.space.y_min <= p.y <= old.space.y_max
                for p in points
            )
            if inside:
                space = old.space
            else:
                # Never shrink: growing the space keeps the k*q -> (a, b)
                # quantization stable, so cached keys stay reachable.
                grown = _space_of(points)
                space = Rect(
                    min(old.space.x_min, grown.x_min),
                    max(old.space.x_max, grown.x_max),
                    min(old.space.y_min, grown.y_min),
                    max(old.space.y_max, grown.y_max),
                )
        entry = ServedDataset(
            id=dataset_id,
            points=list(points),
            fn=fn,
            fn_key=old.fn_key,
            space=space,
            version=old.version,
            kind=old.kind,
            mutation_seq=old.mutation_seq + 1,
            external_ids=list(external_ids),
        )
        return self._install(entry, expect_new=False)

    def _install(self, entry: ServedDataset, expect_new: bool) -> ServedDataset:
        with self._lock:
            exists = entry.id in self._entries
            if expect_new and exists:
                raise InvalidQueryError(f"dataset id {entry.id!r} already registered")
            if not expect_new and not exists:
                raise InvalidQueryError(f"unknown dataset {entry.id!r}")
            self._entries[entry.id] = entry
        return entry

    # -- resolution ------------------------------------------------------

    def resolve(self, dataset_id: str) -> ServedDataset:
        """Return the live entry for ``dataset_id``.

        Raises:
            InvalidQueryError: on an unknown id (lists the known ones).
        """
        with self._lock:
            entry = self._entries.get(dataset_id)
        if entry is None:
            raise InvalidQueryError(
                f"unknown dataset {dataset_id!r}; serving {sorted(self._entries)}"
            )
        return entry

    def bump_version(self, dataset_id: str) -> int:
        """Invalidate a dataset: bump its version and return the new one.

        Every normalized query key embeds the version, so all previously
        cached answers for the dataset become unreachable at once.
        """
        with self._lock:
            entry = self._entries.get(dataset_id)
            if entry is None:
                raise InvalidQueryError(
                    f"unknown dataset {dataset_id!r}; serving {sorted(self._entries)}"
                )
            entry.version += 1
            return entry.version

    def ids(self) -> List[str]:
        """Registered dataset ids, sorted."""
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> List[Dict[str, Any]]:
        """Summaries of every registered dataset (for the HTTP endpoint)."""
        with self._lock:
            entries = list(self._entries.values())
        return [entry.describe() for entry in entries]
