"""Open-loop load generation with coordinated-omission-safe latency.

The selfcheck's original burst harness was *closed-loop*: a thread pool
fired a query, waited for the answer, then fired the next.  Under
saturation that measurement lies — when the server stalls, the client
politely stops sending, so the stalled interval contributes *one* slow
sample instead of the many a real open-loop population would have
suffered.  That is coordinated omission, and it systematically
under-reports p99 exactly when p99 matters.

This module does it properly:

* **Open loop.**  Arrivals follow a seeded Poisson process at a target
  QPS (:func:`poisson_schedule`); the driver submits at each *intended*
  send time whether or not earlier queries have answered.  Engine
  ``submit`` APIs are non-blocking (they return a future), so a slow
  server cannot push back on the arrival process.
* **Intended-time latency.**  Every sample's latency is measured from
  its intended send time, not the moment the submit call actually
  happened — a stalled driver or a slow accept loop shows up *in the
  percentiles* instead of silently shifting the schedule.  The
  closed-loop view (``service_latency``, completion minus actual send)
  is kept alongside for comparison; the regression suite pins the two
  apart with an injected stall.
* **Per-tenant mixes.**  Traffic splits across
  :class:`WorkloadMix` entries (tenant id, share, dataset, sizes), so
  fairness claims are measured per tenant, from the client side.
* **SLO wiring.**  Outcomes stream into an
  :class:`~repro.obs.slo.SLOTracker` against a chosen objective, and
  :class:`LoadReport` carries the tracker's verdicts next to the raw
  percentile curves (p50/p99/shed-rate/goodput) the saturation
  experiment and the perf ledger record.

Everything is deterministic given the seed (modulo true service times):
the schedule is precomputed, the driver is a single thread, and clocks
are injectable for the stall-injection tests.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.slo import SLOTracker, objective_for, percentile
from repro.runtime.errors import BRSError
from repro.serve.model import QueryRequest, QueryResponse

#: A non-blocking submit: (request, tenant id) -> future of the response.
SubmitFn = Callable[[QueryRequest, Optional[str]], "Future[QueryResponse]"]

#: Clock and sleep signatures (injectable for stall-injection tests).
ClockFn = Callable[[], float]
SleepFn = Callable[[float], None]


@dataclass(frozen=True)
class WorkloadMix:
    """One tenant's slice of the offered load.

    Attributes:
        tenant: tenant id stamped on this slice's requests.
        share: relative traffic share (normalized across the mixes).
        dataset: dataset id the slice queries.
        k_choices: ``k*q`` scale factors sampled uniformly per request.
        timeout: optional per-request deadline forwarded to the server.
    """

    tenant: str
    share: float = 1.0
    dataset: str = "demo"
    k_choices: Tuple[float, ...] = (1.0, 5.0, 10.0)
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate the mix.

        Raises:
            ValueError: on a non-positive share or empty k choices.
        """
        if not (self.share > 0):
            raise ValueError(f"share must be positive, got {self.share!r}")
        if not self.k_choices:
            raise ValueError("k_choices must be non-empty")


@dataclass(frozen=True)
class ScheduledQuery:
    """One arrival of the precomputed open-loop schedule.

    Attributes:
        intended: intended send time, seconds from run start.
        tenant: tenant id to submit as.
        request: the query to send.
    """

    intended: float
    tenant: str
    request: QueryRequest


@dataclass
class LoadSample:
    """One completed (or failed) scheduled query.

    Attributes:
        tenant: tenant id the query was submitted as.
        intended: intended send offset (seconds from run start).
        actual: actual submit offset (>= intended when the driver fell
            behind — the gap the coordinated-omission fix accounts for).
        latency: completion minus *intended* send (the honest number).
        service_latency: completion minus *actual* send (the closed-loop
            view; under-reports at saturation).
        status: response status (``ok``/``degraded``/``rejected``/``error``).
        response: the response, when one was produced.
    """

    tenant: str
    intended: float
    actual: float
    latency: float
    service_latency: float
    status: str
    response: Optional[QueryResponse] = None


@dataclass
class LoadReport:
    """Aggregated outcome of one open-loop run.

    Attributes:
        target_qps: offered arrival rate.
        offered: scheduled arrivals.
        completed: samples with any terminal status.
        duration_seconds: wall time from first intended send to last
            completion.
        p50_seconds / p99_seconds: intended-time latency percentiles
            over served (ok/degraded) samples.
        naive_p50_seconds / naive_p99_seconds: the closed-loop
            (service-time) percentiles, kept to quantify the omission
            gap.
        shed_rate: rejected fraction of completed samples.
        error_rate: errored fraction of completed samples.
        degraded_rate: degraded fraction of completed samples.
        goodput_qps: served (ok + degraded) samples per wall second.
        per_tenant: per-tenant sample counts and percentiles.
        slo: the SLO tracker's closing snapshot (verdicts included).
        samples: every sample, in completion-record order.
    """

    target_qps: float
    offered: int
    completed: int
    duration_seconds: float
    p50_seconds: float
    p99_seconds: float
    naive_p50_seconds: float
    naive_p99_seconds: float
    shed_rate: float
    error_rate: float
    degraded_rate: float
    goodput_qps: float
    per_tenant: Dict[str, Dict[str, float]]
    slo: Dict[str, Any]
    samples: List[LoadSample] = field(default_factory=list)

    def row(self) -> Dict[str, Any]:
        """The compact JSON row the sweep and the ledger record."""
        return {
            "target_qps": self.target_qps,
            "offered": self.offered,
            "completed": self.completed,
            "duration_seconds": round(self.duration_seconds, 4),
            "p50_ms": round(self.p50_seconds * 1000, 3),
            "p99_ms": round(self.p99_seconds * 1000, 3),
            "naive_p50_ms": round(self.naive_p50_seconds * 1000, 3),
            "naive_p99_ms": round(self.naive_p99_seconds * 1000, 3),
            "shed_rate": round(self.shed_rate, 4),
            "error_rate": round(self.error_rate, 4),
            "degraded_rate": round(self.degraded_rate, 4),
            "goodput_qps": round(self.goodput_qps, 3),
            "per_tenant": self.per_tenant,
            "slo_healthy": bool(self.slo.get("healthy", False)),
        }


def poisson_schedule(
    mixes: Sequence[WorkloadMix],
    target_qps: float,
    duration: float,
    seed: int = 0,
) -> List[ScheduledQuery]:
    """Precompute a Poisson arrival schedule over the workload mixes.

    Deterministic given ``seed``: interarrival gaps are exponential at
    ``target_qps``, each arrival draws its mix proportionally to
    ``share`` and its ``k`` uniformly from the mix's choices.

    Raises:
        ValueError: on a non-positive rate/duration or empty mixes.
    """
    if target_qps <= 0:
        raise ValueError(f"target_qps must be positive, got {target_qps}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if not mixes:
        raise ValueError("at least one WorkloadMix is required")
    rng = random.Random(seed)
    shares = [m.share for m in mixes]
    schedule: List[ScheduledQuery] = []
    t = rng.expovariate(target_qps)
    while t < duration:
        mix = rng.choices(list(mixes), weights=shares, k=1)[0]
        k = rng.choice(mix.k_choices)
        schedule.append(
            ScheduledQuery(
                intended=t,
                tenant=mix.tenant,
                request=QueryRequest(
                    dataset=mix.dataset, k=k, timeout=mix.timeout
                ),
            )
        )
        t += rng.expovariate(target_qps)
    return schedule


def fire_schedule(
    submit: SubmitFn,
    schedule: Sequence[ScheduledQuery],
    clock: ClockFn = time.perf_counter,
    sleep: SleepFn = time.sleep,
    wait_timeout: float = 60.0,
) -> List[LoadSample]:
    """Drive a precomputed schedule open-loop; returns all samples.

    The driver submits each query at its intended offset (sleeping only
    *forward* — when it falls behind it submits immediately and the
    samples record the slip), then waits up to ``wait_timeout`` seconds
    for stragglers.  Latencies are measured from the intended send time.

    A query whose submit raises (closed engine, policy violation) yields
    an ``"error"`` sample immediately rather than aborting the run.
    """
    samples: List[LoadSample] = []
    lock = threading.Lock()
    outstanding = threading.Semaphore(0)
    submitted = 0
    t0 = clock()

    def _record(
        scheduled: ScheduledQuery, actual: float, fut: "Future[QueryResponse]"
    ) -> None:
        done = clock() - t0
        try:
            response: Optional[QueryResponse] = fut.result()
            status = response.status if response is not None else "error"
        except (BRSError, RuntimeError) as exc:
            response = None
            status = "error"
            del exc
        sample = LoadSample(
            tenant=scheduled.tenant,
            intended=scheduled.intended,
            actual=actual,
            latency=max(0.0, done - scheduled.intended),
            service_latency=max(0.0, done - actual),
            status=status,
            response=response,
        )
        with lock:
            samples.append(sample)
        outstanding.release()

    for scheduled in schedule:
        now = clock() - t0
        if scheduled.intended > now:
            sleep(scheduled.intended - now)
        actual = clock() - t0
        try:
            future = submit(scheduled.request, scheduled.tenant)
        except (BRSError, RuntimeError) as exc:
            done = clock() - t0
            with lock:
                samples.append(
                    LoadSample(
                        tenant=scheduled.tenant,
                        intended=scheduled.intended,
                        actual=actual,
                        latency=max(0.0, done - scheduled.intended),
                        service_latency=max(0.0, done - actual),
                        status="error",
                        response=None,
                    )
                )
            del exc
            continue
        submitted += 1
        future.add_done_callback(
            lambda fut, s=scheduled, a=actual: _record(s, a, fut)
        )

    deadline = clock() + wait_timeout
    for _ in range(submitted):
        remaining = deadline - clock()
        if remaining <= 0 or not outstanding.acquire(timeout=remaining):
            break
    with lock:
        return list(samples)


def summarize(
    samples: Sequence[LoadSample],
    target_qps: float,
    offered: int,
    slo_tier: str = "interactive",
) -> LoadReport:
    """Aggregate samples into a :class:`LoadReport` (SLO verdict included)."""
    tracker = SLOTracker(
        objective_for(slo_tier), window=max(1, len(samples))
    )
    for sample in samples:
        tracker.record(sample.status, sample.latency)
    served = [s for s in samples if s.status in ("ok", "degraded")]
    latencies = [s.latency for s in served]
    naive = [s.service_latency for s in served]
    completed = len(samples)
    end = max((s.intended + s.latency for s in samples), default=0.0)
    start = min((s.intended for s in samples), default=0.0)
    wall = max(end - start, 1e-9)
    per_tenant: Dict[str, Dict[str, float]] = {}
    for tenant in sorted({s.tenant for s in samples}):
        mine = [s for s in samples if s.tenant == tenant]
        mine_served = [s.latency for s in mine if s.status in ("ok", "degraded")]
        per_tenant[tenant] = {
            "count": float(len(mine)),
            "p50_ms": round(percentile(mine_served, 0.50) * 1000, 3),
            "p99_ms": round(percentile(mine_served, 0.99) * 1000, 3),
            "shed_rate": round(
                sum(1 for s in mine if s.status == "rejected") / len(mine), 4
            )
            if mine
            else 0.0,
        }
    return LoadReport(
        target_qps=target_qps,
        offered=offered,
        completed=completed,
        duration_seconds=wall,
        p50_seconds=percentile(latencies, 0.50),
        p99_seconds=percentile(latencies, 0.99),
        naive_p50_seconds=percentile(naive, 0.50),
        naive_p99_seconds=percentile(naive, 0.99),
        shed_rate=(
            sum(1 for s in samples if s.status == "rejected") / completed
            if completed
            else 0.0
        ),
        error_rate=(
            sum(1 for s in samples if s.status == "error") / completed
            if completed
            else 0.0
        ),
        degraded_rate=(
            sum(1 for s in samples if s.status == "degraded") / completed
            if completed
            else 0.0
        ),
        goodput_qps=len(served) / wall,
        per_tenant=per_tenant,
        slo=tracker.snapshot(),
        samples=list(samples),
    )


def run_load(
    submit: SubmitFn,
    mixes: Sequence[WorkloadMix],
    target_qps: float,
    duration: float,
    seed: int = 0,
    slo_tier: str = "interactive",
    clock: ClockFn = time.perf_counter,
    sleep: SleepFn = time.sleep,
    wait_timeout: float = 60.0,
) -> LoadReport:
    """One open-loop run: schedule, fire, summarize.

    See :func:`poisson_schedule` and :func:`fire_schedule` for the
    pieces; this is the composition the sweep and the tests call.
    """
    schedule = poisson_schedule(mixes, target_qps, duration, seed=seed)
    samples = fire_schedule(
        submit, schedule, clock=clock, sleep=sleep, wait_timeout=wait_timeout
    )
    return summarize(
        samples, target_qps=target_qps, offered=len(schedule), slo_tier=slo_tier
    )


def saturation_sweep(
    make_submit: Callable[[], Tuple[SubmitFn, Callable[[], None]]],
    mixes: Sequence[WorkloadMix],
    qps_points: Sequence[float],
    duration: float,
    seed: int = 0,
    slo_tier: str = "interactive",
) -> List[LoadReport]:
    """Run one open-loop load point per target QPS, coldest first.

    ``make_submit`` builds a fresh target per point — ``(submit fn,
    close fn)`` — so points do not share caches, SLO windows, or queue
    backlog and the curve is a function of offered load alone.
    """
    reports: List[LoadReport] = []
    for i, qps in enumerate(qps_points):
        submit, close = make_submit()
        try:
            reports.append(
                run_load(
                    submit,
                    mixes,
                    target_qps=qps,
                    duration=duration,
                    seed=seed + i,
                    slo_tier=slo_tier,
                )
            )
        finally:
            close()
    return reports
