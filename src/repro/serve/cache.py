"""Versioned, size-bounded LRU result cache.

Exploratory BRS traffic is dominated by repeats: the same dataset, the
same score function, the same handful of rectangle sizes, re-asked as
users scroll back and forth.  This cache turns the second ask into a
dictionary lookup.

Design:

* **Keys are normalized queries** (:class:`~repro.serve.model.CacheKey`),
  which embed the dataset *version*.  Mutating a dataset bumps its
  version (see :class:`~repro.serve.store.DatasetStore`), which makes
  every old key unreachable — stale answers cannot be served even if
  purging raced a lookup.  :meth:`ResultCache.purge_dataset` additionally
  drops the unreachable entries so they stop occupying LRU slots.
* **Bounded and LRU.**  At most ``max_entries`` live entries; a hit
  refreshes recency, an insert beyond the bound evicts the least
  recently used entry.
* **Value-agnostic.**  The serving executor stores
  :class:`~repro.serve.model.QueryResponse` cores;
  :class:`~repro.core.session.ExplorationSession` stores
  ``(method, BRSResult)`` pairs.  The cache never inspects values.
* **Instrumented.**  Hit/miss/eviction/invalidation counts are kept
  locally (always) and mirrored into the ambient metrics registry as
  ``brs_result_cache_*`` counters plus a ``brs_result_cache_entries``
  gauge when one is installed.

Thread-safe: every operation holds one lock; values are returned as-is,
so callers must treat them as immutable (both stored value types are).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.geometry.rect import BBox
from repro.obs.metrics import active_registry
from repro.serve.model import CacheKey


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of cache effectiveness.

    Attributes:
        hits: lookups answered from the cache.
        misses: lookups that found nothing.
        evictions: entries dropped by the LRU bound.
        invalidations: entries dropped by dataset purges.
        size: live entries right now.
        max_entries: the configured bound.
    """

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    max_entries: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_json(self) -> Dict[str, Any]:
        """JSON-serializable form for the stats endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "max_entries": self.max_entries,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """LRU cache from normalized queries to solved answers.

    Args:
        max_entries: bound on live entries; must be positive.

    Raises:
        ValueError: on a non-positive bound.
    """

    def __init__(self, max_entries: int = 2048) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._data: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: CacheKey) -> Optional[Any]:
        """Return the cached value for ``key``, refreshing its recency.

        ``None`` means a miss (``None`` itself is never stored).
        """
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
        self._publish(hit=value is not None)
        return value

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU entries past the bound.

        Raises:
            ValueError: when asked to store ``None`` (reserved for misses).
        """
        if value is None:
            raise ValueError("cannot cache None (it encodes a miss)")
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            registry = active_registry()
            if registry.enabled:
                registry.counter(
                    "brs_result_cache_evictions_total",
                    help="result-cache entries dropped by the LRU bound",
                ).inc(evicted)
        self._publish_size()

    def purge_dataset(self, dataset: str) -> int:
        """Drop every entry for ``dataset`` (any version); return the count.

        Called on dataset-version bumps.  Correctness does not depend on
        it — bumped versions make old keys unreachable — this just frees
        the LRU slots they would otherwise pin.
        """
        with self._lock:
            doomed = [key for key in self._data if key.dataset == dataset]
            for key in doomed:
                del self._data[key]
            self._invalidations += len(doomed)
        if doomed:
            registry = active_registry()
            if registry.enabled:
                registry.counter(
                    "brs_result_cache_invalidations_total",
                    help="result-cache entries dropped by dataset purges",
                ).inc(len(doomed))
        self._publish_size()
        return len(doomed)

    def invalidate_region(self, dataset: str, regions: Sequence[BBox]) -> int:
        """Drop entries whose query window touches a mutated region.

        The streaming-ingest path: a visible batch reports the closed
        bounding boxes of the points it inserted/deleted, and only cached
        answers that could have *seen* those points are evicted:

        * a focused entry depends only on objects inside its focus
          rectangle → evicted iff some region touches the focus
          (closed test — a mutation on the boundary still evicts);
        * an unfocused entry depends on the whole dataset → always
          evicted.

        Entries for other datasets, and focused entries whose windows
        miss every region, survive — that is the point of regional over
        version-bump invalidation.

        Returns the number of entries dropped.
        """
        if not regions:
            return 0
        with self._lock:
            doomed = []
            for key in self._data:
                if key.dataset != dataset:
                    continue
                if key.focus is None:
                    doomed.append(key)
                    continue
                fx_min, fx_max, fy_min, fy_max = key.focus
                if any(
                    region.x_min <= fx_max
                    and fx_min <= region.x_max
                    and region.y_min <= fy_max
                    and fy_min <= region.y_max
                    for region in regions
                ):
                    doomed.append(key)
            for key in doomed:
                del self._data[key]
            self._invalidations += len(doomed)
        if doomed:
            registry = active_registry()
            if registry.enabled:
                registry.counter(
                    "brs_result_cache_regional_invalidations_total",
                    help="result-cache entries dropped by regional invalidation",
                ).inc(len(doomed))
        self._publish_size()
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        with self._lock:
            self._data.clear()
        self._publish_size()

    def __len__(self) -> int:
        """Live entry count."""
        with self._lock:
            return len(self._data)

    def __contains__(self, key: CacheKey) -> bool:
        """Membership test without touching recency or counters."""
        with self._lock:
            return key in self._data

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/eviction/invalidation counts and size."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._data),
                max_entries=self.max_entries,
            )

    # -- metrics mirroring -----------------------------------------------

    def _publish(self, hit: bool) -> None:
        registry = active_registry()
        if not registry.enabled:
            return
        if hit:
            registry.counter(
                "brs_result_cache_hits_total",
                help="result-cache lookups answered from the cache",
            ).inc()
        else:
            registry.counter(
                "brs_result_cache_misses_total",
                help="result-cache lookups that found nothing",
            ).inc()

    def _publish_size(self) -> None:
        registry = active_registry()
        if registry.enabled:
            with self._lock:
                size = len(self._data)
            registry.gauge(
                "brs_result_cache_entries", help="live result-cache entries"
            ).set(size)
