"""End-to-end serving smoke check: ``python -m repro.serve.selfcheck``.

Boots a real :class:`~repro.serve.server.BRSServer` on an ephemeral port
and drives it over HTTP the way CI does:

1. a **cold wave** of concurrent mixed queries, each fired twice so the
   in-flight dedup path is exercised; the wave is driven *open-loop*
   through :mod:`repro.serve.loadgen` (latency measured from intended
   send times — no coordinated omission) and every admitted answer is
   checked for score-equality against a direct
   :class:`~repro.core.slicebrs.SliceBRS` solve of the same normalized
   query;
2. a **warm wave** of the same queries, which must be served from the
   result cache (byte-identical cores, positive hit rate);
3. a **past-deadline probe** (microsecond timeout) that must come back
   ``degraded`` — an anytime answer, not an overrun and not an error;
4. a **backpressure probe**: the admission queue is filled with slow
   queries and one more must be explicitly ``rejected``;
5. an **SLO verdict**: the engine's sliding-window tracker must judge the
   whole run healthy against the ``interactive`` objective (the one
   rejection above is designed shedding, within its ceiling), and the
   summary prints SLO-comparable p50/p99 from ``histogram_quantile``
   instead of raw means;
6. a Prometheus text snapshot written to ``--out`` (and, with
   ``--slo-out``, the SLO snapshot as JSON) for artifact upload.

Exit code 0 when every check passes, 1 otherwise.  Stdlib + repro only.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.slicebrs import SliceBRS
from repro.datasets.registry import scalability_dataset
from repro.functions.base import SetFunction
from repro.geometry.rect import Rect
from repro.obs.metrics import Histogram, histogram_quantile
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.executor import ServeEngine
from repro.serve.loadgen import ScheduledQuery, fire_schedule, summarize
from repro.serve.model import QueryRequest, QueryResponse, quantize
from repro.serve.server import BRSServer
from repro.serve.store import DatasetStore


class _SlowFunction(SetFunction):
    """A score function with an artificial per-evaluation delay.

    Only the selfcheck uses it: queries against it reliably occupy
    admission slots long enough to probe backpressure deterministically.
    """

    def __init__(self, inner: SetFunction, delay: float) -> None:
        """Wrap ``inner``, sleeping ``delay`` seconds per evaluation."""
        self._inner = inner
        self._delay = delay

    @property
    def n_objects(self) -> int:
        """Number of objects of the wrapped function."""
        return self._inner.n_objects

    def value(self, objects: Iterable[int]) -> float:
        """Sleep, then evaluate the wrapped function."""
        time.sleep(self._delay)
        return self._inner.value(objects)


class _Checks:
    """Collects named pass/fail outcomes and prints them as they land."""

    def __init__(self) -> None:
        self.failures: List[str] = []

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        """Record one check outcome."""
        tag = "ok" if ok else "FAIL"
        suffix = f" ({detail})" if detail else ""
        print(f"[{tag}] {name}{suffix}")
        if not ok:
            self.failures.append(name)


def _sizes(space: Rect, count: int) -> List[Tuple[float, float]]:
    """``count`` distinct (a, b) rectangle sizes spanning the space."""
    width = space.x_max - space.x_min
    height = space.y_max - space.y_min
    out = []
    for i in range(count):
        frac = 0.05 + 0.3 * i / max(1, count - 1)
        out.append((quantize(height * frac), quantize(width * frac)))
    return out


def run_selfcheck(
    out_path: Optional[str] = None,
    burst: int = 6,
    capacity: int = 6,
    argv_echo: Optional[Sequence[str]] = None,
    slo_out_path: Optional[str] = None,
) -> int:
    """Run the full smoke sequence; returns a process exit code."""
    checks = _Checks()
    data = scalability_dataset(400, seed=7)
    fast_fn = data.score_function()
    store = DatasetStore()
    store.add_dataset("demo", data)
    store.add_points(
        "treacle",
        data.points,
        _SlowFunction(data.score_function(), delay=0.004),
        fn_key="coverage-slow",
        space=data.space,
    )
    engine = ServeEngine(
        store,
        cache=ResultCache(max_entries=256),
        workers=2,
        shards=4,
        queue_capacity=capacity,
        batch_window=0.01,
    )
    with BRSServer(engine, port=0) as server:
        client = ServeClient(server.url, timeout=60.0)
        checks.record("healthz", client.healthy())

        sizes = _sizes(data.space, burst)
        requests = [QueryRequest(dataset="demo", a=a, b=b) for a, b in sizes]

        # -- cold wave: every query twice, open-loop ---------------------
        # Driven through the loadgen scheduler so latency is measured
        # from *intended* send times: a server stall widens the recorded
        # percentiles instead of silently delaying later sends (the
        # coordinated-omission failure of the old closed-loop pool).
        schedule = [
            ScheduledQuery(intended=i * 0.002, tenant="public", request=req)
            for i, req in enumerate(requests * 2)
        ]
        with ThreadPoolExecutor(max_workers=len(schedule)) as pool:
            samples = fire_schedule(
                lambda req, tenant: pool.submit(client.query, req),
                schedule,
                wait_timeout=60.0,
            )
        cold_report = summarize(
            samples, target_qps=500.0, offered=len(schedule)
        )
        ordered = sorted(samples, key=lambda s: s.intended)
        cold: List[QueryResponse] = [
            s.response for s in ordered if s.response is not None
        ]
        checks.record(
            "cold wave all ok",
            len(cold) == len(schedule)
            and all(r.status == "ok" for r in cold),
            f"{len(cold)} responses in {cold_report.duration_seconds:.2f}s",
        )
        print(
            f"cold wave (open-loop, intended-time): "
            f"p50={cold_report.p50_seconds * 1000:.1f}ms "
            f"p99={cold_report.p99_seconds * 1000:.1f}ms "
            f"(closed-loop view would claim "
            f"p99={cold_report.naive_p99_seconds * 1000:.1f}ms)"
        )

        solver = SliceBRS()
        exact = True
        for (a, b), resp in zip(sizes, cold[:burst]):
            ref = solver.solve(data.points, fast_fn, a, b)
            if not math.isclose(ref.score, resp.score or -1.0, rel_tol=1e-9,
                                abs_tol=1e-12):
                exact = False
                checks.record(
                    f"exactness a={a} b={b}", False,
                    f"served {resp.score} vs direct {ref.score}",
                )
        checks.record("served scores equal direct SliceBRS", exact)

        spec_solves = engine.registry.counter("brs_serve_spec_solves_total").value
        checks.record(
            "duplicate in-flight queries solved once",
            spec_solves <= len(sizes),
            f"{int(spec_solves)} solves for {len(sizes)} distinct queries "
            f"asked {len(cold)} times",
        )

        # -- warm wave: same queries must come from the cache ------------
        t0 = time.perf_counter()
        warm = [client.query(req) for req in requests]
        warm_seconds = time.perf_counter() - t0
        checks.record(
            "warm wave served from cache",
            all(r.cached and r.status == "ok" for r in warm),
            f"{len(warm)} responses in {warm_seconds:.2f}s",
        )
        checks.record(
            "warm responses byte-identical to cold",
            all(
                w.canonical_bytes() == c.canonical_bytes()
                for w, c in zip(warm, cold[:burst])
            ),
        )
        hit_rate = client.stats()["cache"]["hit_rate"]
        checks.record("cache hit rate positive", hit_rate > 0, f"{hit_rate:.2f}")

        # -- past-deadline probe -----------------------------------------
        probe = client.query(
            QueryRequest(dataset="demo", a=sizes[0][0] * 1.7,
                         b=sizes[0][1] * 1.7, timeout=1e-6)
        )
        checks.record(
            "past-deadline query degrades gracefully",
            probe.status == "degraded" and probe.center is not None,
            f"status={probe.status} solver_status={probe.solver_status}",
        )

        # -- backpressure probe ------------------------------------------
        slow_sizes = _sizes(data.space, capacity + 1)
        slow_reqs = [
            QueryRequest(dataset="treacle", a=a, b=b, timeout=1.5)
            for a, b in slow_sizes
        ]
        with ThreadPoolExecutor(max_workers=capacity) as pool:
            holders = [pool.submit(client.query, req) for req in slow_reqs[:capacity]]
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                if client.stats()["queue"]["open"] >= capacity:
                    break
                time.sleep(0.02)
            overflow = client.query(slow_reqs[capacity])
            checks.record(
                "overload query explicitly rejected",
                overflow.status == "rejected",
                f"status={overflow.status}",
            )
            drained = [f.result() for f in holders]
        checks.record(
            "held queries still answered",
            all(r.status in ("ok", "degraded") for r in drained),
            ",".join(sorted({r.status for r in drained})),
        )

        # -- SLO verdict -------------------------------------------------
        slo = client.debug_slo()
        verdicts = slo["verdicts"]
        checks.record(
            "SLO verdicts all pass",
            slo["healthy"],
            ", ".join(f"{k}={v}" for k, v in verdicts.items()),
        )
        metric = engine.registry.metrics().get("brs_serve_request_seconds")
        if isinstance(metric, Histogram) and metric.count:
            print(
                f"latency (histogram_quantile over {metric.count} requests): "
                f"p50={histogram_quantile(metric, 0.5) * 1000:.1f}ms "
                f"p99={histogram_quantile(metric, 0.99) * 1000:.1f}ms"
            )
        print(
            f"slo[{slo['tier']}]: p50={slo['p50_seconds'] * 1000:.1f}ms "
            f"p99={slo['p99_seconds'] * 1000:.1f}ms "
            f"burn={slo['error_budget_burn']:.2f} "
            f"shed={slo['shed_ratio']:.3f} "
            f"window={slo['window_requests']}"
        )
        if slo_out_path:
            with open(slo_out_path, "w", encoding="utf-8") as fh:
                json.dump(slo, fh, indent=2, sort_keys=True)
            print(f"SLO snapshot written to {slo_out_path}")

        # -- metrics artifact --------------------------------------------
        text = client.metrics_text()
        required = (
            "brs_serve_requests_total",
            "brs_serve_request_seconds",
            "brs_result_cache_hits_total",
            "brs_serve_queue_depth",
            "brs_serve_inflight",
            "brs_slo_p99_seconds",
            "brs_slo_error_budget_burn",
        )
        checks.record(
            "metrics exposition complete",
            all(name in text for name in required),
        )
        if out_path:
            with open(out_path, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"metrics snapshot written to {out_path}")

    if checks.failures:
        print(f"selfcheck FAILED: {', '.join(checks.failures)}")
        return 1
    print("selfcheck passed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for the smoke check."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.selfcheck",
        description="end-to-end smoke check of the repro serving stack",
    )
    parser.add_argument(
        "--out", default=None, help="write the Prometheus metrics snapshot here"
    )
    parser.add_argument(
        "--burst", type=int, default=6, help="distinct queries per wave"
    )
    parser.add_argument(
        "--capacity", type=int, default=6,
        help="admission capacity of the engine under test",
    )
    parser.add_argument(
        "--slo-out", default=None,
        help="write the SLO snapshot here as JSON",
    )
    args = parser.parse_args(argv)
    return run_selfcheck(out_path=args.out, burst=args.burst,
                         capacity=args.capacity, slo_out_path=args.slo_out)


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
