"""The shared solving core both serve engines execute queries through.

:class:`QuerySolver` is the piece of the old ``ServeEngine`` that has
nothing to do with threads or event loops: given a normalized
:class:`~repro.serve.model.CacheKey`, a resolved
:class:`~repro.serve.store.ServedDataset`, and a
:class:`~repro.runtime.budget.Budget`, produce a
:class:`~repro.serve.model.QueryResponse`.  Pulling it out lets the
threaded engine (:class:`~repro.serve.executor.ServeEngine`) and the
asyncio engine (:class:`~repro.serve.aio.engine.AsyncServeEngine`) run
byte-identical solves — the differential acceptance suite pins exactly
that property.

The solver exposes the runtime ladder as explicit *rungs* so a serve
tier can shed load by answer quality, not just by deadline:

* :data:`RUNG_EXACT` — CoverBRS incumbent seeding plus one SliceBRS pass
  per shard (the exact contract; degrades on budget expiry as before).
* :data:`RUNG_COVER` — one CoverBRS(c=1/3) pass; the (1-c)-style cover
  guarantee certifies ``optimum <= score / guarantee``, so the degraded
  response still carries a sound quality bound.
* :data:`RUNG_GRID` — one coarse grid scan; ``f`` of all candidates caps
  the optimum.

Every non-exact rung returns ``status="degraded"`` with a non-``None``
``upper_bound`` — the invariant the saturation tests assert: a shed
answer is never an unbounded guess.

Metrics are published through the *ambient* registry
(:func:`repro.obs.metrics.active_registry`), so whichever engine wraps
the call in its own ``metrics_scope`` owns the counters.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.core.coverbrs import CoverBRS
from repro.core.gridscan import coarse_grid_scan
from repro.core.partitioned import Shard, plan_shards
from repro.core.result import BRSResult
from repro.core.siri import objects_in_region
from repro.core.slicebrs import SliceBRS
from repro.functions.base import SetFunction
from repro.functions.reduced import reduce_over_cover
from repro.geometry.point import Point
from repro.obs.metrics import active_registry
from repro.parallel.backend import solve_partitioned
from repro.runtime.budget import Budget, BudgetExceededError
from repro.runtime.errors import InvalidQueryError
from repro.serve.model import (
    CacheKey,
    QueryRequest,
    QueryResponse,
    normalize_query,
)
from repro.serve.store import ServedDataset

#: Full-quality rung: the exact-over-shards contract.
RUNG_EXACT = "exact"
#: First shedding rung: a certified cover approximation.
RUNG_COVER = "cover"
#: Last shedding rung: the coarse grid scan.
RUNG_GRID = "grid"

#: All rungs, best quality first (the pressure ladder walks this order).
RUNGS = (RUNG_EXACT, RUNG_COVER, RUNG_GRID)

#: Cover parameter the shedding rung uses (the paper's CoverBRS4).
_SHED_COVER_C = 1.0 / 3.0


class QuerySolver:
    """Execute normalized queries over served datasets at a chosen rung.

    Stateless apart from its configuration — safe to share between
    worker threads and engines.

    Args:
        shards: x-window count per solve (see
            :func:`repro.core.partitioned.plan_shards`).
        theta: slice-width multiple handed to the exact solver.
        backend: ``"thread"`` solves shards in the calling thread;
            ``"process"`` routes large unfocused queries through the
            multiprocessing shard backend.
        process_workers: pool size for the ``"process"`` backend.
        process_threshold: minimum object count before the ``"process"``
            backend engages.

    Raises:
        ValueError: on a non-positive shard count or an unknown backend.
    """

    def __init__(
        self,
        shards: int = 4,
        theta: float = 1.0,
        backend: str = "thread",
        process_workers: int = 2,
        process_threshold: int = 10_000,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
        if process_workers <= 0:
            raise ValueError(
                f"process_workers must be positive, got {process_workers}"
            )
        self.shards = shards
        self.theta = theta
        self.backend = backend
        self.process_workers = process_workers
        self.process_threshold = process_threshold

    # -- planning --------------------------------------------------------

    def plan(self, entry: ServedDataset, key: CacheKey) -> List[Shard]:
        """One shard plan for ``key``'s rectangle width over ``entry``.

        Raises:
            ValueError: when the rectangle cannot be planned (degenerate
                width against the dataset extent).
        """
        return list(plan_shards(entry.points, key.b, self.shards))

    @staticmethod
    def resolve_key(request: QueryRequest, entry: ServedDataset) -> CacheKey:
        """Normalize a validated request against its resolved entry.

        Raises:
            InvalidQueryError: on a request carrying neither an explicit
                rectangle nor a ``k`` scale (``validated()`` rejects
                these, but the contract is restated here for callers
                normalizing un-validated requests).
        """
        if request.a is not None and request.b is not None:
            a, b = float(request.a), float(request.b)
        elif request.k is not None:
            a, b = entry.resolve_size(request.k, request.aspect)
        else:
            raise InvalidQueryError("request needs a rectangle: a/b or k")
        return normalize_query(
            entry.id, entry.version, entry.fn_key, a, b, request.focus
        )

    # -- solving ---------------------------------------------------------

    def solve(
        self,
        key: CacheKey,
        entry: ServedDataset,
        shards: Sequence[Shard],
        budget: Optional[Budget],
        rung: str = RUNG_EXACT,
    ) -> QueryResponse:
        """Solve one normalized query at ``rung`` quality.

        The exact rung preserves the historical engine behavior
        (anytime degradation on budget expiry included); the shedding
        rungs return ``status="degraded"`` answers whose ``upper_bound``
        soundly caps the optimum.

        Raises:
            InvalidQueryError: on a focus region with no objects, or an
                unknown rung.
            BRSError: solver-level failures propagate to the engine's
                error envelope.
        """
        if rung not in RUNGS:
            raise InvalidQueryError(f"unknown ladder rung {rung!r}")
        points, fn = entry.points, entry.fn

        if (
            rung == RUNG_EXACT
            and self.backend == "process"
            and key.focus is None
            and len(points) >= self.process_threshold
        ):
            routed = self._process_solve(key, entry, budget)
            if routed is not None:
                return routed
            # Unshippable function: fall through to the thread path.

        # Apply the focus restriction once, remapping to a local id space.
        if key.focus is None:
            cand_ids: Optional[List[int]] = None
            cand_points: Sequence[Point] = points
            cand_fn: SetFunction = fn
            local_shards = [list(shard.object_ids) for shard in shards]
        else:
            x_min, x_max, y_min, y_max = key.focus
            cand_ids = [
                i for i, p in enumerate(points)
                if x_min < p.x < x_max and y_min < p.y < y_max
            ]
            if not cand_ids:
                return error_response(key, "focus region contains no objects")
            local_of = {g: l for l, g in enumerate(cand_ids)}
            cand_points = [points[i] for i in cand_ids]
            cand_fn = reduce_over_cover(fn, [[i] for i in cand_ids])
            local_shards = [
                [local_of[g] for g in shard.object_ids if g in local_of]
                for shard in shards
            ]

        a, b = key.a, key.b
        if rung == RUNG_COVER:
            return self._cover_shed(
                key, entry, cand_points, cand_fn, cand_ids, a, b, budget
            )
        if rung == RUNG_GRID:
            grid = self._grid_fallback(cand_points, cand_fn, a, b, budget, 0.0)
            active_registry().counter(
                "brs_serve_shed_grid_total",
                help="queries answered on the grid shedding rung",
            ).inc()
            return self._response(
                key, grid.point, grid.score, cand_points, cand_fn, cand_ids,
                solver_status="gridscan",
                upper_bound=grid.upper_bound
                if grid.upper_bound is not None
                else cand_fn.value(range(len(cand_points))),
                external_ids=entry.external_ids,
            )

        if budget is not None and budget.expired():
            # Past-deadline on arrival (or the queue ate the deadline):
            # skip the exact machinery and return the cheapest anytime
            # answer immediately.
            grid = self._grid_fallback(cand_points, cand_fn, a, b, budget, 0.0)
            return self._response(
                key, grid.point, grid.score, cand_points, cand_fn, cand_ids,
                solver_status=grid.status, upper_bound=grid.upper_bound,
                external_ids=entry.external_ids,
            )

        best_point, best_score, shard_bounds, timed_out = self._exact_over_shards(
            cand_points, cand_fn, a, b, local_shards, budget
        )
        if not timed_out:
            return self._response(
                key, best_point, best_score, cand_points, cand_fn, cand_ids,
                solver_status="ok", upper_bound=None,
                external_ids=entry.external_ids,
            )

        grid = self._grid_fallback(cand_points, cand_fn, a, b, budget, best_score)
        if grid.score > best_score:
            best_point, best_score = grid.point, grid.score
        # Both bounds cap the same optimum; keep the tighter one.
        shard_upper = max([best_score] + shard_bounds)
        upper = min(shard_upper, grid.upper_bound or shard_upper)
        return self._response(
            key, best_point, best_score, cand_points, cand_fn, cand_ids,
            solver_status="degraded" if grid.status == "degraded" else "timeout",
            upper_bound=max(upper, best_score),
            external_ids=entry.external_ids,
        )

    # -- rungs -----------------------------------------------------------

    def _cover_shed(
        self,
        key: CacheKey,
        entry: ServedDataset,
        cand_points: Sequence[Point],
        cand_fn: SetFunction,
        cand_ids: Optional[List[int]],
        a: float,
        b: float,
        budget: Optional[Budget],
    ) -> QueryResponse:
        """The cover rung: one certified approximate pass, never exact."""
        solver = CoverBRS(c=_SHED_COVER_C, theta=self.theta)
        try:
            res = solver.solve(cand_points, cand_fn, a, b, budget=budget)
        except BudgetExceededError:
            grid = self._grid_fallback(cand_points, cand_fn, a, b, budget, 0.0)
            return self._response(
                key, grid.point, grid.score, cand_points, cand_fn, cand_ids,
                solver_status="gridscan",
                upper_bound=grid.upper_bound
                if grid.upper_bound is not None
                else cand_fn.value(range(len(cand_points))),
                external_ids=entry.external_ids,
            )
        upper = res.upper_bound
        if upper is None:
            # A zero-score cover answer carries no multiplicative bound;
            # f over every candidate still soundly caps the optimum.
            upper = cand_fn.value(range(len(cand_points)))
        active_registry().counter(
            "brs_serve_shed_cover_total",
            help="queries answered on the cover shedding rung",
        ).inc()
        return self._response(
            key, res.point, res.score, cand_points, cand_fn, cand_ids,
            solver_status="cover", upper_bound=upper,
            external_ids=entry.external_ids,
        )

    def _process_solve(
        self,
        key: CacheKey,
        entry: ServedDataset,
        budget: Optional[Budget],
    ) -> Optional[QueryResponse]:
        """Route one unfocused query through the multiprocessing backend.

        Returns ``None`` when the dataset's function cannot cross a
        process boundary, so the caller falls back to the in-thread
        shard loop instead of failing the query.
        """
        try:
            result = solve_partitioned(
                entry.points, entry.fn, key.a, key.b,
                n_parts=self.shards, theta=self.theta,
                workers=self.process_workers, budget=budget,
            )
        except InvalidQueryError:
            return None
        active_registry().counter(
            "brs_serve_process_solves_total",
            help="queries executed on the multiprocessing shard backend",
        ).inc()
        return self._response(
            key, result.point, result.score, entry.points, entry.fn, None,
            solver_status=result.status, upper_bound=result.upper_bound,
            external_ids=entry.external_ids,
        )

    def _exact_over_shards(
        self,
        cand_points: Sequence[Point],
        cand_fn: SetFunction,
        a: float,
        b: float,
        local_shards: Sequence[Sequence[int]],
        budget: Optional[Budget],
    ) -> Tuple[Optional[Point], float, List[float], bool]:
        """One SliceBRS pass per shard, sharing one incumbent and budget.

        Returns ``(best_point, best_score, sound_bounds, timed_out)`` where
        ``sound_bounds`` carries an upper bound for every shard that was
        not searched to completion.
        """
        registry = active_registry()
        best_point: Optional[Point] = None
        best_score = 0.0
        timed_out = False
        bounds: List[float] = []

        # One cheap approximate pass seeds every shard's pruning bound.
        try:
            incumbent = CoverBRS(c=_SHED_COVER_C, theta=self.theta).solve(
                cand_points, cand_fn, a, b,
                budget=budget.sub(time_fraction=0.25, eval_fraction=0.25)
                if budget is not None else None,
            )
            best_point, best_score = incumbent.point, incumbent.score
            if incumbent.status != "ok":
                timed_out = True
        except BudgetExceededError:
            timed_out = True

        solver = SliceBRS(theta=self.theta)
        for ids in local_shards:
            if not ids:
                continue
            if budget is not None and budget.expired():
                timed_out = True
                # Monotone bound for the shard we cannot afford to search.
                bounds.append(cand_fn.value(ids))
                continue
            sub_points = [cand_points[i] for i in ids]
            sub_f = reduce_over_cover(cand_fn, [[i] for i in ids])
            registry.counter(
                "brs_serve_exact_solves_total",
                help="per-shard exact solver invocations",
            ).inc()
            try:
                res = solver.solve(
                    sub_points, sub_f, a, b,
                    initial_best=best_score, budget=budget,
                )
            except BudgetExceededError:
                timed_out = True
                bounds.append(cand_fn.value(ids))
                continue
            if res.status != "ok":
                timed_out = True
                bounds.append(
                    res.upper_bound
                    if res.upper_bound is not None
                    else cand_fn.value(ids)
                )
            if res.score > best_score:
                best_score = res.score
                best_point = Point(res.point.x, res.point.y)
        return best_point, best_score, bounds, timed_out

    @staticmethod
    def _grid_fallback(
        cand_points: Sequence[Point],
        cand_fn: SetFunction,
        a: float,
        b: float,
        budget: Optional[Budget],
        initial_best: float,
    ) -> BRSResult:
        """Last-rung anytime answer; never raises on an expired budget."""
        try:
            return coarse_grid_scan(
                cand_points, cand_fn, a, b,
                budget=budget.sub() if budget is not None else None,
                initial_best=initial_best,
            )
        except BudgetExceededError:  # pragma: no cover - defensive
            return coarse_grid_scan(cand_points, cand_fn, a, b, budget=None,
                                    initial_best=initial_best)

    def _response(
        self,
        key: CacheKey,
        best_point: Optional[Point],
        best_score: float,
        cand_points: Sequence[Point],
        cand_fn: SetFunction,
        cand_ids: Optional[List[int]],
        solver_status: str,
        upper_bound: Optional[float],
        external_ids: Optional[Sequence[int]] = None,
    ) -> QueryResponse:
        """Assemble the response, re-evaluating the region globally.

        ``external_ids`` (present on ingest snapshots) maps dataset
        positions to stable object ids, so reported ids stay comparable
        across the compaction every mutation flip performs.
        """
        if best_point is None:
            best_point = cand_points[0]
        member_local = objects_in_region(cand_points, best_point, key.a, key.b)
        score = cand_fn.value(member_local)
        if upper_bound is not None:
            upper_bound = max(upper_bound, score)
        if cand_ids is None:
            global_ids = sorted(member_local)
        else:
            global_ids = sorted(cand_ids[l] for l in member_local)
        if external_ids is not None:
            global_ids = sorted(external_ids[g] for g in global_ids)
        return QueryResponse(
            status="ok" if solver_status == "ok" else "degraded",
            dataset=key.dataset,
            version=key.version,
            a=key.a,
            b=key.b,
            center=(best_point.x, best_point.y),
            score=score,
            object_ids=tuple(global_ids),
            solver_status=solver_status,
            upper_bound=upper_bound,
        )


def error_response(key: CacheKey, message: str) -> QueryResponse:
    """The shared error envelope for a normalized query."""
    return QueryResponse(
        status="error",
        dataset=key.dataset,
        version=key.version,
        a=key.a,
        b=key.b,
        error=message,
    )


def timed_solve(
    solver: QuerySolver,
    key: CacheKey,
    entry: ServedDataset,
    shards: Sequence[Shard],
    budget: Optional[Budget],
    rung: str = RUNG_EXACT,
) -> Tuple[QueryResponse, float]:
    """Solve and return ``(response, wall_seconds)`` (envelope helper)."""
    start = time.perf_counter()
    response = solver.solve(key, entry, shards, budget, rung=rung)
    return response, time.perf_counter() - start
