"""The serving engine: admission → cache → dedup → batch → shard execution.

:class:`ServeEngine` is the in-process core the HTTP front end wraps.  A
submitted request flows through the pipeline stages in order:

1. **Resolve + normalize** — the dataset id is resolved against the
   :class:`~repro.serve.store.DatasetStore`, ``k*q`` sizing is applied,
   and the request becomes a :class:`~repro.serve.model.CacheKey`.
2. **Cache** — a hit returns immediately (envelope marked ``cached``).
3. **Dedup** — an identical in-flight query absorbs the request; N
   concurrent identical queries cost one solve.
4. **Admission** — a bounded count of open queries; overload yields an
   explicit ``"rejected"`` response instead of an unbounded queue.
5. **Batching** — a dispatcher thread collects queries admitted within
   one batch window and groups compatible ones (same dataset, version,
   function, rectangle size); each group shares one shard plan, one
   per-shard object extraction, and one approximate incumbent pass.
6. **Execution** — a worker pool runs each group over the overlapping
   x-window shards of :func:`repro.core.partitioned.plan_shards` with
   :class:`~repro.runtime.budget.Budget` deadlines; on expiry the answer
   degrades (anytime best-so-far, then a coarse grid scan) instead of
   overrunning.

Results that honored the exact contract are written back to the
:class:`~repro.serve.cache.ResultCache`; degraded answers never are.
Everything is instrumented through ``repro.obs`` (request latency
histogram, queue-depth gauge, batch-size histogram, solver-invocation
counters, per-query spans).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.core.partitioned import Shard, plan_shards
from repro.obs.metrics import (
    MetricsRegistry,
    histogram_quantile,
    metrics_scope,
)
from repro.obs.export import to_prometheus_text
from repro.obs.slo import SLOTracker, objective_for
from repro.obs.trace import TraceContext, Tracer, active_tracer, trace_scope
from repro.runtime.budget import Budget
from repro.runtime.errors import AdmissionRejectedError, BRSError, InvalidQueryError
from repro.serve.admission import AdmissionController
from repro.serve.cache import ResultCache
from repro.serve.model import CacheKey, QueryRequest, QueryResponse, normalize_query
from repro.serve.planner import BatchPlanner, PlannedQuery
from repro.serve.solvecore import QuerySolver, error_response
from repro.serve.store import DatasetStore, ServedDataset

#: Fine-grained latency buckets for request latency (cache hits are ~µs).
_LATENCY_BUCKETS = (
    0.00001, 0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)


class ServeEngine:
    """Batched, cached, deadline-aware query execution over a dataset store.

    Args:
        store: the datasets this engine answers queries for.
        cache: result cache to consult and fill; a fresh bounded LRU is
            created when omitted.
        workers: worker threads executing planned batches.
        shards: x-window count per solve (see
            :func:`repro.core.partitioned.plan_shards`).
        queue_capacity: maximum open (admitted, unanswered) queries;
            arrivals beyond it are rejected (backpressure).
        batch_window: seconds the dispatcher waits after a wake-up so
            concurrent arrivals can share a batch.
        theta: slice-width multiple handed to the exact solver.
        default_timeout: per-request deadline applied when a request does
            not carry its own (``None`` = unlimited).
        backend: ``"thread"`` (default) solves shards in the worker
            thread; ``"process"`` routes unfocused queries on datasets of
            at least ``process_threshold`` objects through the
            multiprocessing shard backend
            (:func:`repro.parallel.solve_partitioned`) — the right choice
            for large same-size batches, where the per-query solve is
            CPU-bound long enough to amortize pool bootstrap.
        process_workers: pool size for the ``"process"`` backend.
        process_threshold: minimum object count before the ``"process"``
            backend engages (smaller instances stay on the thread path,
            where pool bootstrap would dominate).
        registry: metrics registry all pipeline stages publish into; a
            private one is created when omitted (read it via
            :attr:`registry`).
        tracer: span tracer for per-request/per-batch spans; defaults to
            the ambient tracer at construction time.
        slo_tier: quality tier whose :class:`~repro.obs.slo.SLObjective`
            this engine is judged against (see
            :data:`~repro.obs.slo.DEFAULT_OBJECTIVES`).
        slo_window: sliding-window size of the SLO tracker.
    """

    def __init__(
        self,
        store: DatasetStore,
        cache: Optional[ResultCache] = None,
        workers: int = 2,
        shards: int = 4,
        queue_capacity: int = 64,
        batch_window: float = 0.005,
        theta: float = 1.0,
        default_timeout: Optional[float] = None,
        backend: str = "thread",
        process_workers: int = 2,
        process_threshold: int = 10_000,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slo_tier: str = "interactive",
        slo_window: int = 1024,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if batch_window < 0:
            raise ValueError(f"batch_window cannot be negative, got {batch_window}")
        self.store = store
        self.cache = cache if cache is not None else ResultCache()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else active_tracer()
        self._slo = SLOTracker(objective_for(slo_tier), window=slo_window)
        self._planner = BatchPlanner()
        self._admission = AdmissionController(queue_capacity)
        self._solver = QuerySolver(
            shards=shards,
            theta=theta,
            backend=backend,
            process_workers=process_workers,
            process_threshold=process_threshold,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="brs-serve"
        )
        self._shards = shards
        self._batch_window = batch_window
        self._default_timeout = default_timeout
        self._wake = threading.Event()
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="brs-serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- public API ------------------------------------------------------

    def submit(
        self,
        request: QueryRequest,
        trace: Optional[TraceContext] = None,
    ) -> "Future[QueryResponse]":
        """Admit a request; the future resolves to its response.

        Cache hits resolve immediately; duplicates of an in-flight query
        share its future; overload resolves to a ``"rejected"`` response.

        Args:
            request: the query.
            trace: optional trace context of the caller (the HTTP front
                end forwards the ``X-BRS-Trace`` header here); the solve's
                ``serve.query`` span is parented under it.

        Raises:
            InvalidQueryError: on a malformed request or unknown dataset
                (synchronous failures — nothing was admitted).
            RuntimeError: when the engine is closed.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        request = request.validated()
        start = time.perf_counter()
        with metrics_scope(self.registry):
            self.registry.counter(
                "brs_serve_requests_total", help="queries received"
            ).inc()
            entry = self.store.resolve(request.dataset)
            if request.a is not None:
                a, b = request.a, request.b
            else:
                a, b = entry.resolve_size(request.k, request.aspect)
            key = normalize_query(
                entry.id, entry.version, entry.fn_key, a, b, request.focus
            )

            cached = self.cache.get(key)
            if cached is not None:
                future: "Future[QueryResponse]" = Future()
                future.set_result(cached.with_envelope(cached=True, seconds=0.0))
                self._observe_latency(start)
                self._slo.record("ok", time.perf_counter() - start)
                return future

            timeout = (
                request.timeout
                if request.timeout is not None
                else self._default_timeout
            )
            budget = Budget.of(timeout=timeout)
            planned, is_new = self._planner.submit(key, budget, trace=trace)
            planned.future.add_done_callback(
                lambda f: self._finish_request(start, f)
            )
            self._publish_inflight()
            if not is_new:
                self.registry.counter(
                    "brs_serve_dedup_joins_total",
                    help="requests absorbed by an identical in-flight query",
                ).inc()
                return planned.future

            try:
                self._admission.admit()
            except AdmissionRejectedError as exc:
                self._planner.finish(planned)
                self._publish_inflight()
                if not planned.future.done():
                    planned.future.set_result(
                        QueryResponse(
                            status="rejected",
                            dataset=key.dataset,
                            version=key.version,
                            a=key.a,
                            b=key.b,
                            error=str(exc),
                        )
                    )
                return planned.future
            planned.admitted = True
            self._wake.set()
            return planned.future

    def query(
        self,
        request: QueryRequest,
        timeout: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> QueryResponse:
        """Synchronous :meth:`submit`: block until the response is ready.

        Args:
            request: the query.
            timeout: seconds to wait for the *future* (a safety net around
                the whole pipeline, distinct from the request's deadline).
            trace: optional caller trace context (see :meth:`submit`).
        """
        return self.submit(request, trace=trace).result(timeout=timeout)

    def invalidate(self, dataset_id: str) -> int:
        """Bump a dataset's version and purge its cache entries.

        Returns the new version.  In-flight solves against the old version
        finish normally but are no longer cached or reachable.
        """
        version = self.store.bump_version(dataset_id)
        self.cache.purge_dataset(dataset_id)
        return version

    def stats(self) -> Dict[str, Any]:
        """JSON-serializable operational snapshot (the stats endpoint)."""
        latency: Dict[str, float] = {}
        metric = self.registry.metrics().get("brs_serve_request_seconds")
        if metric is not None and getattr(metric, "count", 0):
            latency = {
                "count": metric.count,
                "p50_seconds": histogram_quantile(metric, 0.5),
                "p99_seconds": histogram_quantile(metric, 0.99),
            }
        return {
            "cache": self.cache.stats.to_json(),
            "queue": {
                "open": self._admission.open_count,
                "capacity": self._admission.capacity,
                "inflight": self._planner.inflight_count(),
            },
            "latency": latency,
            "slo": self._slo.snapshot(),
            "datasets": self.store.describe(),
        }

    def slo_snapshot(self) -> Dict[str, Any]:
        """Live SLO state, with the SLO gauges freshly published.

        Backs ``GET /debug/slo`` and the health probe's verdict.
        """
        return self._slo.publish(self.registry)

    def prometheus_text(self) -> str:
        """The registry's Prometheus exposition, SLO gauges included."""
        self._slo.publish(self.registry)
        return to_prometheus_text(self.registry)

    @property
    def tracer(self) -> Tracer:
        """The tracer this engine records spans into."""
        return self._tracer

    def close(self) -> None:
        """Stop the dispatcher and workers; fail leftover queries cleanly."""
        if self._closed:
            return
        self._closed = True
        self._wake.set()
        self._dispatcher.join(timeout=5.0)
        for group in self._planner.drain():
            for planned in group:
                self._fail(planned, "server shutting down")
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ServeEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # -- pipeline internals ----------------------------------------------

    def _observe_latency(self, start: float) -> None:
        self.registry.histogram(
            "brs_serve_request_seconds",
            help="request latency, admission to response (cache hits included)",
            buckets=_LATENCY_BUCKETS,
        ).observe(time.perf_counter() - start)

    def _finish_request(self, start: float, future: "Future[QueryResponse]") -> None:
        """Done-callback bookkeeping: latency histogram + SLO outcome."""
        self._observe_latency(start)
        try:
            status = future.result().status
        except Exception:  # pragma: no cover - futures resolve to responses
            status = "error"
        self._slo.record(status, time.perf_counter() - start)

    def _publish_inflight(self) -> None:
        self.registry.gauge(
            "brs_serve_inflight",
            help="distinct queries between submission and resolution",
        ).set(float(self._planner.inflight_count()))

    def _dispatch_loop(self) -> None:
        """Collect admitted queries into compatibility groups and dispatch."""
        while not self._closed:
            self._wake.wait(timeout=0.1)
            if self._closed:
                break
            if not self._wake.is_set():
                continue
            self._wake.clear()
            if self._batch_window > 0:
                time.sleep(self._batch_window)
            for group in self._planner.drain():
                self._pool.submit(self._run_group, group)

    def _run_group(self, group: List[PlannedQuery]) -> None:
        """Execute one compatibility group: shared plan, per-spec solves."""
        with metrics_scope(self.registry), trace_scope(self._tracer):
            key = group[0].key
            try:
                entry = self.store.resolve(key.dataset)
            except InvalidQueryError as exc:
                for planned in group:
                    self._fail(planned, str(exc))
                return
            self.registry.counter(
                "brs_serve_batches_total", help="compatibility groups executed"
            ).inc()
            self.registry.histogram(
                "brs_serve_batch_size",
                help="distinct queries per executed group",
                buckets=(1, 2, 4, 8, 16, 32, 64),
            ).observe(len(group))
            with self._tracer.span(
                "serve.batch", dataset=key.dataset, a=key.a, b=key.b, size=len(group)
            ):
                # Shared once per group: the shard plan for this rectangle
                # width over the full dataset.  Focused members intersect it.
                try:
                    shards = plan_shards(entry.points, key.b, self._shards)
                except ValueError as exc:
                    for planned in group:
                        self._fail(planned, str(exc))
                    return
                for planned in group:
                    self._run_spec(planned, entry, shards, len(group))

    def _run_spec(
        self,
        planned: PlannedQuery,
        entry: ServedDataset,
        shards: Sequence[Shard],
        batch_size: int,
    ) -> None:
        """Solve one distinct query and resolve every request riding on it."""
        key = planned.key
        start = time.perf_counter()
        try:
            self.registry.counter(
                "brs_serve_spec_solves_total",
                help="distinct normalized queries executed (after dedup)",
            ).inc()
            if planned.trace is not None:
                # Parent the solve under the requester's span (the HTTP
                # front end's server.request, or any caller-held span),
                # not the ambient serve.batch — so the request's trace
                # reads client → server → query → solver in one tree.
                span = self._tracer.span(
                    "serve.query", parent_id=planned.trace.parent_span_id,
                    trace_id=planned.trace.trace_id,
                    dataset=key.dataset, a=key.a, b=key.b,
                    focused=key.focus is not None,
                )
            else:
                span = self._tracer.span(
                    "serve.query", dataset=key.dataset, a=key.a, b=key.b,
                    focused=key.focus is not None,
                )
            with span:
                response = self._solver.solve(key, entry, shards, planned.budget)
        except BRSError as exc:
            response = self._error_response(key, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # pragma: no cover - defensive catch-all
            response = self._error_response(key, f"{type(exc).__name__}: {exc}")
        response = response.with_envelope(
            seconds=time.perf_counter() - start, batch_size=batch_size
        )
        if response.status == "degraded":
            self.registry.counter(
                "brs_serve_degraded_total",
                help="queries answered with a degraded (anytime) result",
            ).inc()
        current = self.store.resolve(key.dataset)
        if (
            response.status == "ok"
            and current.version == key.version
            # An ingest flip mid-solve means this answer was computed
            # against an older snapshot; caching it would dodge the
            # regional invalidation that already ran.
            and current.mutation_seq == entry.mutation_seq
        ):
            self.cache.put(key, response)
        if not planned.future.done():
            planned.future.set_result(response)
        self._planner.finish(planned)
        self._publish_inflight()
        if planned.admitted:
            self._admission.release()

    def _fail(self, planned: PlannedQuery, message: str) -> None:
        if not planned.future.done():
            planned.future.set_result(self._error_response(planned.key, message))
        self._planner.finish(planned)
        self._publish_inflight()
        if planned.admitted:
            self._admission.release()

    @staticmethod
    def _error_response(key: CacheKey, message: str) -> QueryResponse:
        return error_response(key, message)
