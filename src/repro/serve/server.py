"""Stdlib-only HTTP front end for the serving engine.

A thin JSON shell around :class:`~repro.serve.executor.ServeEngine`:
``http.server.ThreadingHTTPServer`` gives one handler thread per
connection, and each handler blocks on the engine future for its own
request, so concurrency, batching, dedup, and backpressure all live in
the engine where they are testable without sockets.

Protocol (all bodies JSON, version :data:`~repro.serve.model.PROTOCOL_VERSION`):

========  =================  ==================================================
method    path               meaning
========  =================  ==================================================
POST      ``/v1/query``      solve a :class:`~repro.serve.model.QueryRequest`;
                             200 for ``ok``/``degraded``, 429 for ``rejected``,
                             400 for malformed requests, 500 for ``error``
GET       ``/v1/datasets``   served datasets with versions
GET       ``/v1/stats``      cache/queue/latency snapshot
POST      ``/v1/invalidate`` ``{"dataset": id}`` — bump version, purge cache
GET       ``/metrics``       Prometheus text exposition of the engine registry
                             (SLO gauges freshly published)
GET       ``/healthz``       liveness probe, with the live SLO verdict
GET       ``/debug/slo``     sliding-window SLO snapshot (p50/p99, burn rate)
========  =================  ==================================================

Responses are wrapped in an envelope ``{"protocol": 1, ...payload}``.

Distributed tracing: a client may send an ``X-BRS-Trace`` header
(``trace_id[:parent_span_id]``, see :class:`repro.obs.trace.TraceContext`).
The handler opens a ``server.request`` span parented under the client's
span id and forwards the context into the engine, so the request's whole
path — HTTP accept, batching, solve — lands in one span tree.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from types import FrameType
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.trace import TRACE_HEADER, TraceContext
from repro.runtime.errors import InvalidQueryError
from repro.serve.executor import ServeEngine
from repro.serve.model import PROTOCOL_VERSION, QueryRequest

#: Largest request body accepted, to keep a hostile client from ballooning
#: handler memory (queries are a few hundred bytes).
MAX_BODY_BYTES = 1 << 20


def _status_code(status: str) -> int:
    """HTTP status for a serve response status."""
    return {"ok": 200, "degraded": 200, "rejected": 429, "error": 500}.get(
        status, 500
    )


class _Handler(BaseHTTPRequestHandler):
    """Routes the JSON protocol onto the engine owned by the server."""

    server: "BRSServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr lines (metrics cover observability)."""

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise InvalidQueryError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise InvalidQueryError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidQueryError(f"request body is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            raise InvalidQueryError("request body must be a JSON object")
        return doc

    def _send(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps({"protocol": PROTOCOL_VERSION, **payload}).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:
        """Serve the read-only endpoints."""
        engine = self.server.engine
        try:
            if self.path == "/healthz":
                self._send(
                    200,
                    {
                        "status": "ok",
                        "slo_healthy": engine.slo_snapshot()["healthy"],
                    },
                )
            elif self.path == "/v1/datasets":
                self._send(200, {"datasets": engine.store.describe()})
            elif self.path == "/v1/stats":
                self._send(200, engine.stats())
            elif self.path == "/debug/slo":
                self._send(200, engine.slo_snapshot())
            elif self.path == "/metrics":
                self._send_text(
                    200,
                    engine.prometheus_text(),
                    "text/plain; version=0.0.4",
                )
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        except Exception as exc:  # pragma: no cover - defensive
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:
        """Serve the query and invalidation endpoints."""
        engine = self.server.engine
        try:
            if self.path == "/v1/query":
                ctx = TraceContext.from_header(self.headers.get(TRACE_HEADER))
                tracer = engine.tracer
                if ctx is not None:
                    span = tracer.span(
                        "server.request",
                        parent_id=ctx.parent_span_id,
                        trace_id=ctx.trace_id,
                        path=self.path,
                    )
                else:
                    span = tracer.span("server.request", path=self.path)
                with span:
                    request = QueryRequest.from_json(self._read_json())
                    inner = tracer.context() if tracer.enabled else None
                    response = engine.query(request, trace=inner)
                self._send(_status_code(response.status), response.to_json())
            elif self.path == "/v1/invalidate":
                doc = self._read_json()
                dataset = doc.get("dataset")
                if not isinstance(dataset, str) or not dataset:
                    raise InvalidQueryError("invalidate needs a dataset id")
                version = engine.invalidate(dataset)
                self._send(200, {"dataset": dataset, "version": version})
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        except InvalidQueryError as exc:
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})


class BRSServer:
    """The ``repro serve`` HTTP server: engine + threading HTTP listener.

    Args:
        engine: the serving engine answering queries.
        host: interface to bind (default loopback).
        port: TCP port; ``0`` picks an ephemeral port (read it back from
            :attr:`port` — the test-suite idiom).

    Use as a context manager, or pair :meth:`start` with :meth:`close`.
    :meth:`serve_forever` blocks (the CLI path); :meth:`start` runs the
    listener on a daemon thread (the test/embedding path).
    """

    def __init__(
        self, engine: ServeEngine, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.engine = engine
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.engine = engine  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._pipelines: List[Any] = []

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port resolved if 0 was asked)."""
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self.address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "BRSServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="brs-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI path)."""
        self._httpd.serve_forever()

    def attach_pipeline(self, pipeline: Any) -> None:
        """Tie an ingest pipeline's lifecycle to this server's.

        On shutdown (including SIGTERM) attached pipelines are flushed
        and closed *before* the engine stops: every batch accepted so
        far reaches a terminal state and the write-ahead log closes
        cleanly, so a graceful shutdown leaves nothing pending.
        """
        self._pipelines.append(pipeline)

    def install_signal_handlers(
        self, signums: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)
    ) -> Callable[[int, Optional[FrameType]], None]:
        """Make SIGTERM/SIGINT perform a graceful shutdown.

        The handler hands the actual work to a daemon thread: signal
        handlers run on the main thread, which in the CLI path is blocked
        inside :meth:`serve_forever` — the very loop :meth:`close` must
        stop — so shutting down inline would deadlock.

        Returns the installed handler (tests invoke it directly).  Call
        from the main thread only (a CPython restriction on ``signal``).
        """

        def _handle(signum: int, frame: Optional[FrameType]) -> None:
            threading.Thread(
                target=self.close, name="brs-serve-shutdown", daemon=True
            ).start()

        for signum in signums:
            signal.signal(signum, _handle)
        return _handle

    def close(self) -> None:
        """Flush attached pipelines, stop the listener, shut the engine down."""
        if self._closed:
            return
        self._closed = True
        for pipeline in self._pipelines:
            pipeline.close(flush=True)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.engine.close()

    def __enter__(self) -> "BRSServer":
        """Context-manager entry: start the background listener."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()
