"""Query-serving subsystem: batching, result caching, admission control.

The paper frames BRS as the inner loop of *data exploration* — many
users re-asking similar best-region queries against a few datasets.  This
package turns the solver stack into a long-lived service shaped for that
workload:

* :mod:`repro.serve.model` — the canonical query: normalization and
  quantization, cache keys, and the cacheable response core.
* :mod:`repro.serve.cache` — a versioned, size-bounded LRU result cache
  with hit/miss/eviction metrics and dataset-version invalidation.
* :mod:`repro.serve.store` — the datasets a server answers for, each with
  a version that query keys embed.
* :mod:`repro.serve.planner` — dedup of identical in-flight queries and
  grouping of compatible ones into shared-setup batches.
* :mod:`repro.serve.admission` — bounded open-query count with explicit
  rejection (backpressure) instead of unbounded queueing.
* :mod:`repro.serve.executor` — :class:`ServeEngine`, the worker pool
  executing planned batches over the partitioned-solver shards with
  per-request :class:`~repro.runtime.budget.Budget` deadlines and
  degraded anytime answers on expiry.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — the stdlib-only
  HTTP front end (``repro serve``) and its JSON protocol client.
* :mod:`repro.serve.solvecore` — :class:`QuerySolver`, the shared
  solve-one-group core both front ends execute, with the degradation
  ladder (exact → cover → gridscan) the pressure monitor drives.
* :mod:`repro.serve.tenancy` / :mod:`repro.serve.fairqueue` /
  :mod:`repro.serve.pressure` — per-tenant quotas and dataset allow
  lists, start-time-fair queueing with a provable bypass bound, and the
  hysteresis ladder that sheds load when backlog or SLO burn climbs.
* :mod:`repro.serve.aio` — :class:`AsyncServeEngine` and
  :class:`AsyncBRSServer`, the asyncio multi-tenant front end that is
  the default server (``repro-brs serve``; ``--threaded`` keeps the
  classic engine).
* :mod:`repro.serve.loadgen` — open-loop, coordinated-omission-safe
  load generation (Poisson arrivals, per-tenant mixes, saturation
  sweeps) feeding the ``serve-saturation`` experiment.
* :mod:`repro.serve.selfcheck` — the end-to-end smoke driver CI runs.
"""

from repro.serve.admission import AdmissionController
from repro.serve.aio import AsyncBRSServer, AsyncServeEngine
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.executor import ServeEngine
from repro.serve.fairqueue import WeightedFairQueue, bypass_bound
from repro.serve.loadgen import (
    LoadReport,
    LoadSample,
    ScheduledQuery,
    WorkloadMix,
    fire_schedule,
    poisson_schedule,
    run_load,
    saturation_sweep,
    summarize,
)
from repro.serve.model import (
    PROTOCOL_VERSION,
    QUANT_SIG_DIGITS,
    SERVE_STATUSES,
    CacheKey,
    QueryRequest,
    QueryResponse,
    normalize_query,
    quantize,
)
from repro.serve.planner import BatchPlanner, PlannedQuery
from repro.serve.pressure import PressureMonitor, PressurePolicy
from repro.serve.server import BRSServer
from repro.serve.solvecore import QuerySolver
from repro.serve.store import DatasetStore, ServedDataset
from repro.serve.tenancy import TenantAdmission, TenantRegistry, TenantSpec

__all__ = [
    "PROTOCOL_VERSION",
    "QUANT_SIG_DIGITS",
    "SERVE_STATUSES",
    "AdmissionController",
    "AsyncBRSServer",
    "AsyncServeEngine",
    "BRSServer",
    "BatchPlanner",
    "CacheKey",
    "CacheStats",
    "DatasetStore",
    "LoadReport",
    "LoadSample",
    "PlannedQuery",
    "PressureMonitor",
    "PressurePolicy",
    "QueryRequest",
    "QueryResponse",
    "QuerySolver",
    "ResultCache",
    "ScheduledQuery",
    "ServeClient",
    "ServeClientError",
    "ServeEngine",
    "ServedDataset",
    "TenantAdmission",
    "TenantRegistry",
    "TenantSpec",
    "WeightedFairQueue",
    "WorkloadMix",
    "bypass_bound",
    "fire_schedule",
    "normalize_query",
    "poisson_schedule",
    "quantize",
    "run_load",
    "saturation_sweep",
    "summarize",
]
