"""Per-tenant dataset registry and admission quotas for the serve tier.

ROADMAP item 2's "millions of users" resolve, at the serve boundary,
into *tenants*: named principals with a scheduling weight (how much of
the machine they deserve under contention), an admission quota (how many
of their queries may be open at once), and an optional dataset allow
list.  This module keeps that bookkeeping out of the engines:

* :class:`TenantSpec` — the declarative per-tenant policy.
* :class:`TenantRegistry` — id → spec resolution with a permissive
  default tenant, so single-tenant deployments need no configuration.
* :class:`TenantAdmission` — per-tenant open-query quotas layered under
  a global capacity; quota rejections are the *first* shedding stage
  (cheaper than queueing work that fairness would stall anyway).

The metrics registry is label-free, so the fixed gauges/counters here
carry aggregates (``brs_tenant_open``, ``brs_tenant_rejected_total``);
per-tenant breakdowns are exposed through :meth:`TenantAdmission.stats`
and surface in the stats/tenants JSON endpoints.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional

from repro.obs.metrics import active_registry
from repro.runtime.errors import AdmissionRejectedError, InvalidQueryError

#: Tenant id applied to requests that do not identify themselves.
DEFAULT_TENANT = "public"

#: Open-query quota granted to unregistered tenants.
DEFAULT_QUOTA = 16

#: Scheduling weight granted to unregistered tenants.
DEFAULT_WEIGHT = 1.0


@dataclass(frozen=True)
class TenantSpec:
    """Declarative policy for one tenant.

    Attributes:
        id: tenant identifier (the ``X-BRS-Tenant`` header value).
        weight: weighted-fair-queue share under contention.
        quota: maximum open (admitted, unanswered) queries.
        datasets: dataset ids this tenant may query; ``None`` = all.
    """

    id: str
    weight: float = DEFAULT_WEIGHT
    quota: int = DEFAULT_QUOTA
    datasets: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        """Validate the spec's invariants at construction.

        Raises:
            ValueError: on an empty id, non-positive weight, or
                non-positive quota.
        """
        if not self.id:
            raise ValueError("tenant id must be non-empty")
        if not (self.weight > 0):
            raise ValueError(
                f"tenant {self.id!r} weight must be positive, got {self.weight!r}"
            )
        if self.quota <= 0:
            raise ValueError(
                f"tenant {self.id!r} quota must be positive, got {self.quota!r}"
            )

    def allows(self, dataset: str) -> bool:
        """Whether this tenant may query ``dataset``."""
        return self.datasets is None or dataset in self.datasets

    def describe(self) -> Dict[str, Any]:
        """JSON-serializable summary for the tenants endpoint."""
        return {
            "id": self.id,
            "weight": self.weight,
            "quota": self.quota,
            "datasets": sorted(self.datasets) if self.datasets is not None else None,
        }


class TenantRegistry:
    """Thread-safe id → :class:`TenantSpec` resolution.

    Unknown ids resolve to a default-policy spec (default weight and
    quota, all datasets), so tenancy is opt-in configuration rather than
    a deployment prerequisite.
    """

    def __init__(self, specs: Optional[List[TenantSpec]] = None) -> None:
        self._specs: Dict[str, TenantSpec] = {}
        self._lock = threading.Lock()
        for spec in specs or []:
            self.register(spec)

    def register(self, spec: TenantSpec) -> None:
        """Add or replace one tenant's policy."""
        with self._lock:
            self._specs[spec.id] = spec

    def resolve(self, tenant_id: Optional[str]) -> TenantSpec:
        """The policy governing ``tenant_id`` (default policy if unknown)."""
        tid = tenant_id or DEFAULT_TENANT
        with self._lock:
            spec = self._specs.get(tid)
        if spec is not None:
            return spec
        return TenantSpec(id=tid)

    def authorize(self, tenant_id: Optional[str], dataset: str) -> TenantSpec:
        """Resolve and check dataset access in one step.

        Raises:
            InvalidQueryError: when the tenant's allow list excludes
                ``dataset`` (surfaces as a 4xx error response, not a
                shed — policy violations must not look like overload).
        """
        spec = self.resolve(tenant_id)
        if not spec.allows(dataset):
            raise InvalidQueryError(
                f"tenant {spec.id!r} is not authorized for dataset {dataset!r}"
            )
        return spec

    def describe(self) -> List[Dict[str, Any]]:
        """JSON-serializable list of registered tenant policies."""
        with self._lock:
            specs = sorted(self._specs.values(), key=lambda s: s.id)
        return [spec.describe() for spec in specs]

    def weights(self) -> Dict[str, float]:
        """``tenant id -> weight`` for seeding the fair queue."""
        with self._lock:
            return {tid: spec.weight for tid, spec in self._specs.items()}


@dataclass
class _TenantCounters:
    """Mutable per-tenant admission bookkeeping."""

    open: int = 0
    admitted_total: int = 0
    rejected_total: int = 0
    released_total: int = 0


class TenantAdmission:
    """Per-tenant open-query quotas under an optional global capacity.

    Admission is monotone in quota: raising one tenant's quota (holding
    the arrival/release sequence fixed and the global capacity
    unconstrained) never turns one of its admitted requests into a
    rejection — the property suite pins this down.

    Args:
        registry: tenant policy source.
        capacity: global open-query ceiling across tenants; ``None``
            leaves only per-tenant quotas in force.
    """

    def __init__(
        self, registry: TenantRegistry, capacity: Optional[int] = None
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.registry = registry
        self.capacity = capacity
        self._counters: Dict[str, _TenantCounters] = {}
        self._open_total = 0
        self._lock = threading.Lock()

    def _counter(self, tenant_id: str) -> _TenantCounters:
        counters = self._counters.get(tenant_id)
        if counters is None:
            counters = self._counters[tenant_id] = _TenantCounters()
        return counters

    def admit(self, tenant_id: Optional[str]) -> TenantSpec:
        """Admit one query for ``tenant_id`` or raise.

        Raises:
            AdmissionRejectedError: when the tenant's quota or the global
                capacity is exhausted.  The caller records the rejection
                as a shed outcome.
        """
        spec = self.registry.resolve(tenant_id)
        with self._lock:
            counters = self._counter(spec.id)
            if counters.open >= spec.quota:
                counters.rejected_total += 1
                rejected = True
                reason = (
                    f"tenant {spec.id!r} quota exhausted "
                    f"({counters.open}/{spec.quota} open)"
                )
            elif self.capacity is not None and self._open_total >= self.capacity:
                counters.rejected_total += 1
                rejected = True
                reason = (
                    f"serve capacity exhausted "
                    f"({self._open_total}/{self.capacity} open)"
                )
            else:
                counters.open += 1
                counters.admitted_total += 1
                self._open_total += 1
                rejected = False
                reason = ""
        if rejected:
            active_registry().counter(
                "brs_tenant_rejected_total",
                help="queries rejected by tenant quota or serve capacity",
            ).inc()
            self._publish()
            raise AdmissionRejectedError(reason)
        self._publish()
        return spec

    def release(self, tenant_id: Optional[str]) -> None:
        """Return one admitted query's slot."""
        tid = self.registry.resolve(tenant_id).id
        with self._lock:
            counters = self._counter(tid)
            if counters.open > 0:
                counters.open -= 1
                counters.released_total += 1
            if self._open_total > 0:
                self._open_total -= 1
        self._publish()

    def _publish(self) -> None:
        registry = active_registry()
        with self._lock:
            open_total = self._open_total
            active = sum(1 for c in self._counters.values() if c.open > 0)
        registry.gauge(
            "brs_tenant_open",
            help="admitted, unanswered queries across all tenants",
        ).set(float(open_total))
        registry.gauge(
            "brs_tenant_active",
            help="tenants with at least one open query",
        ).set(float(active))

    @property
    def open_total(self) -> int:
        """Admitted, unanswered queries across all tenants."""
        with self._lock:
            return self._open_total

    def open_count(self, tenant_id: str) -> int:
        """Open queries for one tenant."""
        with self._lock:
            counters = self._counters.get(tenant_id)
            return counters.open if counters is not None else 0

    def stats(self) -> Dict[str, Any]:
        """Per-tenant admission counters for the stats endpoint."""
        with self._lock:
            per_tenant = {
                tid: {
                    "open": c.open,
                    "admitted_total": c.admitted_total,
                    "rejected_total": c.rejected_total,
                    "released_total": c.released_total,
                }
                for tid, c in sorted(self._counters.items())
            }
            return {
                "open_total": self._open_total,
                "capacity": self.capacity,
                "tenants": per_tenant,
            }
