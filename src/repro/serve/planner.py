"""Batch planner: dedup identical in-flight queries, group compatible ones.

Two normalization-aware optimizations sit between admission and execution:

* **Dedup.**  A query whose normalized key is already *in flight*
  (pending or executing) attaches to the existing entry's future instead
  of creating new work.  N simultaneous identical queries cost one solve.
* **Grouping.**  Pending queries with the same *group key* — dataset,
  version, function, quantized rectangle size — are dispatched together
  as one batch, so the executor plans shards once, extracts per-shard
  object subsets once, and computes one shared incumbent for the whole
  group.  Group members differ at most in their focus rectangle.

The planner is passive: the engine's dispatcher thread calls
:meth:`BatchPlanner.drain` to collect pending work, and
:meth:`BatchPlanner.finish` when a query's future resolves.  Between those
two calls the key stays in the in-flight table, which is what lets late
duplicates join an *executing* solve, not just a queued one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import TraceContext
from repro.runtime.budget import Budget
from repro.serve.model import CacheKey


@dataclass
class PlannedQuery:
    """One distinct in-flight query and the requests riding on it.

    Attributes:
        key: the normalized query.
        budget: execution budget of the *first* requester; duplicates
            share the solve and therefore the budget (documented in
            docs/serving.md).
        future: resolves to the :class:`~repro.serve.model.QueryResponse`
            every attached requester receives.
        waiters: how many requests were deduplicated onto this entry.
        admitted: whether this entry holds an admission slot that must be
            released when the future resolves.
        trace: trace context of the *first* requester (like the budget,
            duplicates share the solve and therefore its span parent);
            the executor parents its ``serve.query`` span here so the
            solve lands in the requester's trace tree.
    """

    key: CacheKey
    budget: Optional[Budget]
    future: Future = field(default_factory=Future)
    waiters: int = 1
    admitted: bool = False
    trace: Optional[TraceContext] = None


class BatchPlanner:
    """In-flight dedup table plus pending-batch grouping."""

    def __init__(self) -> None:
        self._pending: "OrderedDict[CacheKey, PlannedQuery]" = OrderedDict()
        self._inflight: Dict[CacheKey, PlannedQuery] = {}
        self._lock = threading.Lock()

    def submit(
        self,
        key: CacheKey,
        budget: Optional[Budget],
        trace: Optional[TraceContext] = None,
    ) -> Tuple[PlannedQuery, bool]:
        """Register a query; returns ``(entry, is_new)``.

        ``is_new`` is False when an identical query was already in flight
        — the caller should await the shared future and must *not* take
        an admission slot.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                existing.waiters += 1
                return existing, False
            planned = PlannedQuery(key=key, budget=budget, trace=trace)
            self._inflight[key] = planned
            self._pending[key] = planned
            return planned, True

    def drain(self) -> List[List[PlannedQuery]]:
        """Take every pending query, grouped by compatibility.

        Groups preserve arrival order (of each group's first member).
        Drained queries stay in the in-flight table until
        :meth:`finish`, so duplicates arriving mid-solve still join them.
        """
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        groups: "OrderedDict[tuple, List[PlannedQuery]]" = OrderedDict()
        for planned in pending:
            groups.setdefault(planned.key.group_key, []).append(planned)
        return list(groups.values())

    def finish(self, planned: PlannedQuery) -> None:
        """Retire a query once its future has been resolved."""
        with self._lock:
            current = self._inflight.get(planned.key)
            if current is planned:
                del self._inflight[planned.key]
            self._pending.pop(planned.key, None)

    def pending_count(self) -> int:
        """Queries not yet drained (waiting for dispatch)."""
        with self._lock:
            return len(self._pending)

    def inflight_count(self) -> int:
        """Distinct queries between submission and resolution."""
        with self._lock:
            return len(self._inflight)

    def inflight_entry(self, key: CacheKey) -> Optional[PlannedQuery]:
        """The live entry for ``key``, if any (introspection for tests)."""
        with self._lock:
            return self._inflight.get(key)
