"""Canonical query model for the serving subsystem.

The exploratory workload the paper motivates — many users re-running BRS
queries over the same datasets with varying rectangle sizes — is served
well only if two textually different requests that *mean* the same query
are recognized as one.  This module defines that meaning:

* :class:`QueryRequest` — what a client sends: a dataset id, a rectangle
  (explicit ``a x b`` or the paper's ``k*q`` scaling), an optional focus
  rectangle, and an optional deadline.
* :class:`CacheKey` — the *normalized* query: dataset id + dataset
  version + score-function key + quantized rectangle + quantized focus.
  Two requests with the same key are the same query; the key is what the
  result cache, the in-flight dedup table, and the batch planner operate
  on.
* :class:`QueryResponse` — the answer, split into a *cacheable core*
  (everything derived from the normalized query and the dataset version)
  and a per-request *envelope* (``cached``, ``batch_size``, ``seconds``)
  that never enters the cache.

Quantization rounds rectangle sides and focus coordinates to
:data:`QUANT_SIG_DIGITS` significant digits, so floating-point noise from
repeated ``k*q`` derivations cannot fragment the cache, while any humanly
intended size difference stays distinct.  Executors solve at the
*quantized* size, which keeps cached and fresh answers byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.runtime.errors import InvalidQueryError

#: Significant digits rectangle sides and focus coordinates are kept to.
QUANT_SIG_DIGITS = 6

#: Response statuses the serving layer can return.  ``"ok"`` — the exact
#: contract was honored; ``"degraded"`` — a deadline forced an anytime or
#: fallback answer; ``"rejected"`` — admission control refused the query;
#: ``"error"`` — the request failed outright.
SERVE_STATUSES = ("ok", "degraded", "rejected", "error")

#: Protocol version embedded in every HTTP response envelope.
PROTOCOL_VERSION = 1


def quantize(value: float, sig_digits: int = QUANT_SIG_DIGITS) -> float:
    """Round ``value`` to ``sig_digits`` significant digits.

    This is the serving layer's canonical float: requests whose sizes
    differ only in floating-point noise map to the same cache entry.
    """
    return float(f"{float(value):.{sig_digits}g}")


def _check_positive_finite(name: str, value: float) -> float:
    value = float(value)
    if not (value > 0 and value == value and value != float("inf")):
        raise InvalidQueryError(f"{name} must be positive and finite, got {value!r}")
    return value


def _normalize_focus(
    focus: Optional[Tuple[float, float, float, float]]
) -> Optional[Tuple[float, float, float, float]]:
    if focus is None:
        return None
    try:
        x_min, x_max, y_min, y_max = (float(v) for v in focus)
    except (TypeError, ValueError) as exc:
        raise InvalidQueryError(f"focus must be [x_min, x_max, y_min, y_max]: {exc}")
    if not (x_min < x_max and y_min < y_max):
        raise InvalidQueryError(
            f"focus rectangle is degenerate: [{x_min}, {x_max}] x [{y_min}, {y_max}]"
        )
    return (quantize(x_min), quantize(x_max), quantize(y_min), quantize(y_max))


@dataclass(frozen=True)
class QueryRequest:
    """One client query, as received (before normalization).

    Either an explicit rectangle (``a`` and ``b``) or the paper's scaled
    unit query (``k``, optionally ``aspect``) must be given; the server
    resolves ``k*q`` against the dataset's space before normalizing.

    Attributes:
        dataset: id of a dataset registered with the server.
        a: query-rectangle height (mutually inclusive with ``b``).
        b: query-rectangle width.
        k: query scale factor — ``k*q`` sizing per Section 6.1.
        aspect: height/width ratio for ``k``-style sizing.
        focus: optional ``(x_min, x_max, y_min, y_max)`` restriction; only
            objects inside the focus rectangle participate in the query.
        timeout: optional per-request deadline in seconds, measured from
            admission (queue wait counts against it).
    """

    dataset: str
    a: Optional[float] = None
    b: Optional[float] = None
    k: Optional[float] = None
    aspect: Optional[float] = None
    focus: Optional[Tuple[float, float, float, float]] = None
    timeout: Optional[float] = None

    def validated(self) -> "QueryRequest":
        """Check field consistency and return self.

        Raises:
            InvalidQueryError: on a missing dataset id, a half-specified
                or doubly-specified rectangle, or non-positive values.
        """
        if not self.dataset or not isinstance(self.dataset, str):
            raise InvalidQueryError("request needs a dataset id")
        explicit = self.a is not None or self.b is not None
        scaled = self.k is not None
        if explicit and scaled:
            raise InvalidQueryError("give either a/b or k, not both")
        if explicit and (self.a is None or self.b is None):
            raise InvalidQueryError("explicit sizing needs both a and b")
        if not explicit and not scaled:
            raise InvalidQueryError("request needs a rectangle: a/b or k")
        if self.a is not None:
            _check_positive_finite("a", self.a)
            _check_positive_finite("b", self.b)
        if self.k is not None:
            _check_positive_finite("k", self.k)
        if self.aspect is not None:
            _check_positive_finite("aspect", self.aspect)
        if self.timeout is not None:
            _check_positive_finite("timeout", self.timeout)
        _normalize_focus(self.focus)
        return self

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "QueryRequest":
        """Build a request from a decoded JSON body.

        Raises:
            InvalidQueryError: on unknown fields or malformed values, so a
                typo'd protocol field fails loudly instead of being ignored.
        """
        if not isinstance(doc, dict):
            raise InvalidQueryError("request body must be a JSON object")
        known = {"dataset", "a", "b", "k", "aspect", "focus", "timeout"}
        unknown = set(doc) - known
        if unknown:
            raise InvalidQueryError(f"unknown request fields: {sorted(unknown)}")
        focus = doc.get("focus")
        if focus is not None:
            focus = tuple(focus)
        return cls(
            dataset=doc.get("dataset", ""),
            a=doc.get("a"),
            b=doc.get("b"),
            k=doc.get("k"),
            aspect=doc.get("aspect"),
            focus=focus,
            timeout=doc.get("timeout"),
        ).validated()

    def to_json(self) -> Dict[str, Any]:
        """The request as a JSON-serializable dict (omits unset fields)."""
        doc: Dict[str, Any] = {"dataset": self.dataset}
        for name in ("a", "b", "k", "aspect", "timeout"):
            value = getattr(self, name)
            if value is not None:
                doc[name] = value
        if self.focus is not None:
            doc["focus"] = list(self.focus)
        return doc


@dataclass(frozen=True)
class CacheKey:
    """A normalized query: the identity the cache and planner operate on.

    Attributes:
        dataset: dataset id.
        version: dataset version the query is addressed to.  Bumping the
            version on mutation makes every old key unreachable, which is
            what guarantees invalidation can never serve stale scores.
        fn_key: identifies the score function configuration (e.g.
            ``"coverage"`` or ``"influence:rr=2000:seed=0"``).
        a: quantized rectangle height.
        b: quantized rectangle width.
        focus: quantized focus rectangle, or ``None``.
    """

    dataset: str
    version: int
    fn_key: str
    a: float
    b: float
    focus: Optional[Tuple[float, float, float, float]] = None

    @property
    def group_key(self) -> Tuple[str, int, str, float, float]:
        """Batch-compatibility key: same dataset, version, function, size.

        Queries sharing a group key can share one shard plan and one
        SIRI/slab setup per shard — they differ at most in focus.
        """
        return (self.dataset, self.version, self.fn_key, self.a, self.b)


def normalize_query(
    dataset: str,
    version: int,
    fn_key: str,
    a: float,
    b: float,
    focus: Optional[Tuple[float, float, float, float]] = None,
) -> CacheKey:
    """Build the canonical :class:`CacheKey` for a resolved query.

    Raises:
        InvalidQueryError: on non-positive sizes or a degenerate focus.
    """
    return CacheKey(
        dataset=dataset,
        version=int(version),
        fn_key=fn_key,
        a=quantize(_check_positive_finite("a", a)),
        b=quantize(_check_positive_finite("b", b)),
        focus=_normalize_focus(focus),
    )


@dataclass(frozen=True)
class QueryResponse:
    """The answer to one served query.

    Fields up to ``error`` are the *cacheable core* — fully determined by
    the normalized query and the dataset version, and the payload of
    :meth:`canonical_bytes`.  The remaining fields are the per-request
    envelope (excluded from equality): whether this copy came from the
    cache, how many compatible queries shared the batch, and the solve
    wall time.

    Attributes:
        status: one of :data:`SERVE_STATUSES`.
        dataset: dataset id the answer is for.
        version: dataset version the answer was computed against.
        a: quantized rectangle height actually solved.
        b: quantized rectangle width actually solved.
        center: ``(x, y)`` center of the best region, or ``None`` when no
            region was produced (rejected/error responses).
        score: score of the returned region on the original instance.
        object_ids: dataset-global ids of the objects inside the region.
        solver_status: the underlying anytime status (``"ok"``,
            ``"degraded"``, ``"timeout"``) when a solve ran; ``None`` for
            rejected/error responses.
        upper_bound: sound cap on the optimum for non-exact answers.
        error: one-line diagnosis for rejected/error responses.
        cached: envelope — this copy was served from the result cache.
        batch_size: envelope — compatible queries in the executed batch.
        seconds: envelope — solve wall time (0 for cache hits).
    """

    status: str
    dataset: str
    version: int
    a: float
    b: float
    center: Optional[Tuple[float, float]] = None
    score: Optional[float] = None
    object_ids: Tuple[int, ...] = ()
    solver_status: Optional[str] = None
    upper_bound: Optional[float] = None
    error: Optional[str] = None
    cached: bool = field(default=False, compare=False)
    batch_size: int = field(default=1, compare=False)
    seconds: float = field(default=0.0, compare=False)

    def core(self) -> Dict[str, Any]:
        """The cacheable part of the response as a plain dict."""
        return {
            "status": self.status,
            "dataset": self.dataset,
            "version": self.version,
            "a": self.a,
            "b": self.b,
            "center": list(self.center) if self.center is not None else None,
            "score": self.score,
            "object_ids": list(self.object_ids),
            "solver_status": self.solver_status,
            "upper_bound": self.upper_bound,
            "error": self.error,
        }

    def canonical_bytes(self) -> bytes:
        """Deterministic byte encoding of the cacheable core.

        Two responses to the same normalized query against the same
        dataset version must compare equal here — the property the cache
        tests pin down.
        """
        return json.dumps(
            self.core(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def to_json(self) -> Dict[str, Any]:
        """Core plus envelope, ready for the HTTP layer."""
        doc = self.core()
        doc["cached"] = self.cached
        doc["batch_size"] = self.batch_size
        doc["seconds"] = self.seconds
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "QueryResponse":
        """Rebuild a response from :meth:`to_json` output (client side)."""
        center = doc.get("center")
        return cls(
            status=doc["status"],
            dataset=doc["dataset"],
            version=doc["version"],
            a=doc["a"],
            b=doc["b"],
            center=tuple(center) if center is not None else None,
            score=doc.get("score"),
            object_ids=tuple(doc.get("object_ids") or ()),
            solver_status=doc.get("solver_status"),
            upper_bound=doc.get("upper_bound"),
            error=doc.get("error"),
            cached=bool(doc.get("cached", False)),
            batch_size=int(doc.get("batch_size", 1)),
            seconds=float(doc.get("seconds", 0.0)),
        )

    def with_envelope(
        self,
        cached: Optional[bool] = None,
        batch_size: Optional[int] = None,
        seconds: Optional[float] = None,
    ) -> "QueryResponse":
        """Copy with envelope fields replaced; the core is untouched."""
        return replace(
            self,
            cached=self.cached if cached is None else cached,
            batch_size=self.batch_size if batch_size is None else batch_size,
            seconds=self.seconds if seconds is None else seconds,
        )
