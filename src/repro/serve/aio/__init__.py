"""Asyncio multi-tenant serve tier: fair queueing + pressure shedding.

The package splits the async front end the same way the threaded tier
does: :mod:`repro.serve.aio.engine` holds the in-process core
(:class:`AsyncServeEngine` — tenancy, weighted-fair scheduling,
coalescing, pressure-driven rung selection), and
:mod:`repro.serve.aio.http` wraps it in a stdlib-only asyncio HTTP
server (:class:`AsyncBRSServer`) speaking the exact protocol of the
threaded :class:`~repro.serve.server.BRSServer`, plus the tenant
surface (``X-BRS-Tenant`` header, ``GET /v1/tenants``).
"""

from repro.serve.aio.engine import AsyncServeEngine
from repro.serve.aio.http import AsyncBRSServer

__all__ = ["AsyncServeEngine", "AsyncBRSServer"]
