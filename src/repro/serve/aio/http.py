"""Stdlib-only asyncio HTTP front end for the async serving engine.

A minimal HTTP/1.1 server over :func:`asyncio.start_server`, speaking
the exact JSON protocol of the threaded
:class:`~repro.serve.server.BRSServer` — same paths, same envelope
(``{"protocol": 1, ...}``), same status-code mapping — so the existing
:class:`~repro.serve.client.ServeClient` works against either server
unchanged, and the differential suite can stream one workload through
both.  Two additions carry the tenant surface:

* ``POST /v1/query`` reads the ``X-BRS-Tenant`` header and routes the
  request through the tenant's quota and fair-queue weight.
* ``GET /v1/tenants`` lists registered tenant policies and live
  per-tenant admission counters.

Connections are keep-alive by default (``Connection: close`` honored);
request bodies are capped at the same
:data:`~repro.serve.server.MAX_BODY_BYTES` as the threaded server.  The
server runs natively (``await server.start()``) or from synchronous
code via :meth:`AsyncBRSServer.start`, which hosts engine + listener on
a private daemon-thread event loop — the CLI and test embedding path.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from types import FrameType
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs.trace import TRACE_HEADER, TraceContext
from repro.runtime.errors import InvalidQueryError
from repro.serve.aio.engine import AsyncServeEngine
from repro.serve.model import PROTOCOL_VERSION, QueryRequest
from repro.serve.server import MAX_BODY_BYTES, _status_code

#: Header carrying the requester's tenant id.
TENANT_HEADER = "X-BRS-Tenant"


class AsyncBRSServer:
    """The ``repro serve --async`` HTTP server: async engine + listener.

    Args:
        engine: the async serving engine answering queries.
        host: interface to bind (default loopback).
        port: TCP port; ``0`` picks an ephemeral port (read it back from
            :attr:`port` once started).

    Use as a context manager (background-thread mode), or start natively
    with :meth:`start_async` on a running loop.
    """

    def __init__(
        self, engine: AsyncServeEngine, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.engine = engine
        self._host = host
        self._port = port
        self._server: Optional["asyncio.Server"] = None
        self._address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (after start)."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self.address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    async def start_async(self) -> "AsyncBRSServer":
        """Bind the listener on the running loop; returns self."""
        if self._server is not None:
            return self
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sock = self._server.sockets[0].getsockname()
        self._address = (sock[0], sock[1])
        self._ready.set()
        return self

    async def serve_async(self) -> None:
        """Serve until :meth:`close` (native embedding path)."""
        await self.start_async()
        assert self._server is not None and self._shutdown is not None
        async with self._server:
            await self._shutdown.wait()
        await self.engine.aclose()

    def start(self) -> "AsyncBRSServer":
        """Host engine + listener on a daemon-thread event loop.

        Raises:
            RuntimeError: when the loop fails to come up (the underlying
                bind error is chained).
        """
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="brs-aio-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=5.0) or self._startup_error is not None:
            raise RuntimeError(
                "async server failed to start"
            ) from self._startup_error
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self.serve_async())
        except Exception as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
            self._ready.set()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI path)."""
        asyncio.run(self.serve_async())

    def wait(self) -> None:
        """Block until a started server stops (CLI foreground path).

        Use after :meth:`start` when the caller needs the bound
        :attr:`url` *before* blocking — e.g. to print the listening
        address.  The short join timeout keeps the main thread
        responsive to signals while it waits.
        """
        thread = self._thread
        while thread is not None and thread.is_alive():
            thread.join(timeout=0.5)

    def install_signal_handlers(
        self, signums: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)
    ) -> Callable[[int, Optional[FrameType]], None]:
        """Make SIGTERM/SIGINT perform a graceful shutdown.

        Mirrors :meth:`repro.serve.server.BRSServer.install_signal_handlers`:
        the handler hands the work to a daemon thread because the main
        thread is blocked inside :meth:`serve_forever`.
        """

        def _handle(signum: int, frame: Optional[FrameType]) -> None:
            threading.Thread(
                target=self.close, name="brs-aio-shutdown", daemon=True
            ).start()

        for signum in signums:
            signal.signal(signum, _handle)
        return _handle

    def close(self) -> None:
        """Stop the listener and shut the engine down (any thread)."""
        if self._closed:
            return
        self._closed = True
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        # Native embeddings (serve_async awaited by the caller) shut the
        # engine down in serve_async; the background path already did so
        # inside the joined thread.  This is a defensive second stop for
        # engines that never entered serve_async.
        self.engine.close()

    def __enter__(self) -> "AsyncBRSServer":
        """Context-manager entry: start the background listener."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # -- HTTP handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: parse requests, route, keep-alive until close."""
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._write(
                        writer, 400, {"error": "malformed request line"}, False
                    )
                    break
                method, path, _version = parts
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                if length > MAX_BODY_BYTES:
                    await self._write(
                        writer,
                        400,
                        {"error": f"request body over {MAX_BODY_BYTES} bytes"},
                        False,
                    )
                    break
                body = await reader.readexactly(length) if length > 0 else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                code, payload, text = await self._route(
                    method, path, headers, body
                )
                if text is not None:
                    await self._write_text(writer, code, text, keep_alive)
                else:
                    assert payload is not None
                    await self._write(writer, code, payload, keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer already gone
                pass

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, Optional[Dict[str, Any]], Optional[str]]:
        """Dispatch one request; returns (code, json_payload, text_payload)."""
        engine = self.engine
        try:
            if method == "GET":
                if path == "/healthz":
                    return (
                        200,
                        {
                            "status": "ok",
                            "slo_healthy": engine.slo_snapshot()["healthy"],
                        },
                        None,
                    )
                if path == "/v1/datasets":
                    return 200, {"datasets": engine.store.describe()}, None
                if path == "/v1/stats":
                    return 200, engine.stats(), None
                if path == "/v1/tenants":
                    return 200, engine.tenants_snapshot(), None
                if path == "/debug/slo":
                    return 200, engine.slo_snapshot(), None
                if path == "/debug/pressure":
                    return 200, engine.pressure_snapshot(), None
                if path == "/metrics":
                    return 200, None, engine.prometheus_text()
                return 404, {"error": f"unknown path {path!r}"}, None
            if method == "POST":
                if path == "/v1/query":
                    return await self._route_query(headers, body)
                if path == "/v1/invalidate":
                    doc = self._parse_json(body)
                    dataset = doc.get("dataset")
                    if not isinstance(dataset, str) or not dataset:
                        raise InvalidQueryError("invalidate needs a dataset id")
                    version = engine.invalidate(dataset)
                    return 200, {"dataset": dataset, "version": version}, None
                return 404, {"error": f"unknown path {path!r}"}, None
            return 404, {"error": f"unsupported method {method!r}"}, None
        except InvalidQueryError as exc:
            return 400, {"error": str(exc)}, None
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None

    async def _route_query(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Optional[Dict[str, Any]], Optional[str]]:
        """The query endpoint: tenant + trace headers, engine submit."""
        engine = self.engine
        tenant = headers.get(TENANT_HEADER.lower()) or None
        ctx = TraceContext.from_header(headers.get(TRACE_HEADER.lower()))
        tracer = engine.tracer
        if ctx is not None:
            span = tracer.span(
                "server.request",
                parent_id=ctx.parent_span_id,
                trace_id=ctx.trace_id,
                path="/v1/query",
            )
        else:
            span = tracer.span("server.request", path="/v1/query")
        with span:
            request = QueryRequest.from_json(self._parse_json(body))
            inner = tracer.context() if tracer.enabled else None
            response = await engine.submit(request, tenant=tenant, trace=inner)
        return _status_code(response.status), response.to_json(), None

    @staticmethod
    def _parse_json(body: bytes) -> Dict[str, Any]:
        if not body:
            raise InvalidQueryError("request needs a JSON body")
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidQueryError(f"request body is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            raise InvalidQueryError("request body must be a JSON object")
        return doc

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        code: int,
        payload: Dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps({"protocol": PROTOCOL_VERSION, **payload}).encode(
            "utf-8"
        )
        await AsyncBRSServer._write_raw(
            writer, code, body, "application/json", keep_alive
        )

    @staticmethod
    async def _write_text(
        writer: asyncio.StreamWriter, code: int, text: str, keep_alive: bool
    ) -> None:
        await AsyncBRSServer._write_raw(
            writer,
            code,
            text.encode("utf-8"),
            "text/plain; version=0.0.4",
            keep_alive,
        )

    @staticmethod
    async def _write_raw(
        writer: asyncio.StreamWriter,
        code: int,
        body: bytes,
        content_type: str,
        keep_alive: bool,
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  429: "Too Many Requests", 500: "Internal Server Error"}.get(
            code, "OK"
        )
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
