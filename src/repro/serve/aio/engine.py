"""The asyncio serving engine: tenancy, fair queueing, pressure shedding.

:class:`AsyncServeEngine` is the event-loop counterpart of the threaded
:class:`~repro.serve.executor.ServeEngine`.  The two share every
deterministic stage — request normalization, the result cache, the
in-flight dedup/coalescing table (:class:`~repro.serve.planner.BatchPlanner`),
and the solving core (:class:`~repro.serve.solvecore.QuerySolver`) — so
an identical query stream produces byte-identical ``canonical_bytes``
responses on both (the differential acceptance suite pins this).  What
the async engine adds is everything that matters at high fan-in:

1. **Tenancy.**  Requests carry a tenant id (the ``X-BRS-Tenant``
   header); a :class:`~repro.serve.tenancy.TenantRegistry` resolves it
   to a weight, an admission quota, and a dataset allow list, and
   :class:`~repro.serve.tenancy.TenantAdmission` enforces the quota
   *before* any queueing — quota overflow is the first, cheapest
   shedding stage.
2. **Weighted-fair scheduling.**  Admitted queries enter a
   :class:`~repro.serve.fairqueue.WeightedFairQueue`; the scheduler task
   drains it in finish-tag order, so a flooding tenant delays a polite
   one by at most the bounded bypass of start-time fair queueing, never
   unboundedly.
3. **Pressure-driven shedding.**  A :class:`~repro.serve.pressure.PressureMonitor`
   watches fair-queue backlog and SLO error-budget burn each scheduling
   cycle and selects the runtime-ladder rung (exact → cover → grid) for
   the *whole* cycle — answers get cheaper before deadlines start
   missing, and every shed answer still carries a certified quality
   bound (see :mod:`repro.serve.solvecore`).

Solves are CPU-bound, so they run on a worker thread pool via
``run_in_executor``; the event loop only routes, queues, and awaits.
The engine can be embedded two ways: natively (``await engine.start()``
on a running loop) or from synchronous code via
:meth:`AsyncServeEngine.start_background`, which runs a private loop on
a daemon thread and exposes the thread-safe :meth:`submit_threadsafe` /
:meth:`query` — the interface the load generator and the differential
tests drive.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.partitioned import Shard
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import MetricsRegistry, histogram_quantile, metrics_scope
from repro.obs.slo import SLOTracker, objective_for
from repro.obs.trace import TraceContext, Tracer, active_tracer, trace_scope
from repro.runtime.budget import Budget
from repro.runtime.errors import (
    AdmissionRejectedError,
    BRSError,
    InvalidQueryError,
)
from repro.serve.cache import ResultCache
from repro.serve.executor import _LATENCY_BUCKETS
from repro.serve.model import QueryRequest, QueryResponse
from repro.serve.planner import BatchPlanner, PlannedQuery
from repro.serve.fairqueue import WeightedFairQueue
from repro.serve.pressure import PressureMonitor, PressurePolicy
from repro.serve.solvecore import QuerySolver, error_response
from repro.serve.store import DatasetStore, ServedDataset
from repro.serve.tenancy import TenantAdmission, TenantRegistry


class AsyncServeEngine:
    """Tenant-aware, pressure-shedding query execution on an event loop.

    Args:
        store: the datasets this engine answers queries for.
        cache: result cache to consult and fill; fresh LRU when omitted.
        tenants: tenant policy registry; a permissive default registry
            (every id gets default weight/quota) when omitted.
        workers: solver threads (solves are CPU-bound and leave the loop).
        shards: x-window count per solve.
        queue_capacity: global open-query ceiling; per-tenant quotas
            apply underneath it.
        batch_window: seconds the scheduler waits after a wake-up so
            concurrent arrivals can coalesce into batches.
        max_dispatch: queries drained from the fair queue per scheduling
            cycle; the remainder stays queued (and visible to the
            pressure monitor).  Defaults to ``max(8, 4 * workers)``.
        theta: slice-width multiple handed to the exact solver.
        default_timeout: per-request deadline when none is given.
        backend / process_workers / process_threshold: forwarded to the
            shared :class:`~repro.serve.solvecore.QuerySolver`.
        pressure: shedding policy thresholds; defaults apply when omitted.
        registry: metrics registry; private one when omitted.
        tracer: span tracer; ambient tracer at construction when omitted.
        slo_tier / slo_window: SLO objective and sliding-window size.

    Raises:
        ValueError: on non-positive workers/capacity or a negative
            batch window.
    """

    def __init__(
        self,
        store: DatasetStore,
        cache: Optional[ResultCache] = None,
        tenants: Optional[TenantRegistry] = None,
        workers: int = 2,
        shards: int = 4,
        queue_capacity: int = 64,
        batch_window: float = 0.005,
        max_dispatch: Optional[int] = None,
        theta: float = 1.0,
        default_timeout: Optional[float] = None,
        backend: str = "thread",
        process_workers: int = 2,
        process_threshold: int = 10_000,
        pressure: Optional[PressurePolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slo_tier: str = "interactive",
        slo_window: int = 1024,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if batch_window < 0:
            raise ValueError(f"batch_window cannot be negative, got {batch_window}")
        if max_dispatch is not None and max_dispatch <= 0:
            raise ValueError(f"max_dispatch must be positive, got {max_dispatch}")
        self.store = store
        self.cache = cache if cache is not None else ResultCache()
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else active_tracer()
        self._slo = SLOTracker(objective_for(slo_tier), window=slo_window)
        self._planner = BatchPlanner()
        self._admission = TenantAdmission(self.tenants, capacity=queue_capacity)
        self._queue = WeightedFairQueue(self.tenants.weights())
        self._pressure = PressureMonitor(pressure)
        self._solver = QuerySolver(
            shards=shards,
            theta=theta,
            backend=backend,
            process_workers=process_workers,
            process_threshold=process_threshold,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="brs-aio-serve"
        )
        self._capacity = queue_capacity
        self._batch_window = batch_window
        self._max_dispatch = (
            max_dispatch if max_dispatch is not None else max(8, 4 * workers)
        )
        # Dispatch throttle: once this many groups are in the worker
        # pool, further arrivals stay in the fair queue — where the
        # pressure monitor can see them.  Without it the scheduler would
        # shovel the backlog into the pool's invisible work queue and
        # pressure (hence the shedding ladder) would never engage.
        self._max_inflight_groups = workers + 2
        self._inflight_groups = 0
        self._inflight_lock = threading.Lock()
        self._default_timeout = default_timeout
        self._closed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._scheduler_task: Optional["asyncio.Task[None]"] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "AsyncServeEngine":
        """Bind to the running event loop and start the scheduler task."""
        if self._loop is not None:
            return self
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._scheduler_task = self._loop.create_task(self._scheduler())
        self._ready.set()
        return self

    def start_background(self) -> "AsyncServeEngine":
        """Run a private event loop on a daemon thread; returns self.

        The synchronous embedding path: callers then use
        :meth:`submit_threadsafe` / :meth:`query` from any thread.
        """
        if self._thread is not None or self._loop is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="brs-aio-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=5.0):  # pragma: no cover - defensive
            raise RuntimeError("async engine event loop failed to start")
        return self

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            loop.run_forever()
            # Drain callbacks scheduled during shutdown.
            loop.run_until_complete(asyncio.sleep(0))
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    def close(self) -> None:
        """Stop the scheduler, fail queued work, shut the pool down.

        Callable from any thread (including the loop's own shutdown
        path); idempotent.
        """
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._stop_on_loop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        while True:
            popped = self._queue.pop()
            if popped is None:
                break
            tenant, planned = popped
            self._fail(tenant, planned, "server shutting down")
        self._pool.shutdown(wait=True)

    async def aclose(self) -> None:
        """Async :meth:`close` for natively embedded engines."""
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        while True:
            popped = self._queue.pop()
            if popped is None:
                break
            tenant, planned = popped
            self._fail(tenant, planned, "server shutting down")
        self._pool.shutdown(wait=False)

    def _stop_on_loop(self) -> None:
        """Scheduled on the loop by :meth:`close`: cancel, await, stop."""
        assert self._loop is not None
        self._loop.create_task(self._shutdown_on_loop())

    async def _shutdown_on_loop(self) -> None:
        """Let the scheduler observe its cancellation, then stop the loop."""
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        assert self._loop is not None
        self._loop.stop()

    def __enter__(self) -> "AsyncServeEngine":
        """Context-manager entry: start the background loop."""
        return self.start_background()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    async def __aenter__(self) -> "AsyncServeEngine":
        """Async context-manager entry: bind to the running loop."""
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        """Async context-manager exit: :meth:`aclose`."""
        await self.aclose()

    # -- public API ------------------------------------------------------

    async def submit(
        self,
        request: QueryRequest,
        tenant: Optional[str] = None,
        trace: Optional[TraceContext] = None,
    ) -> QueryResponse:
        """Admit, schedule, and await one query on the event loop.

        Args:
            request: the query.
            tenant: tenant id (the ``X-BRS-Tenant`` header value); the
                default tenant when omitted.
            trace: optional caller trace context; the solve's
                ``serve.query`` span is parented under it.

        Raises:
            InvalidQueryError: malformed request, unknown dataset, or a
                tenant allow-list violation (synchronous failures —
                nothing was admitted).
            RuntimeError: when the engine is closed.
        """
        return await asyncio.wrap_future(
            self.submit_threadsafe(request, tenant=tenant, trace=trace)
        )

    def submit_threadsafe(
        self,
        request: QueryRequest,
        tenant: Optional[str] = None,
        trace: Optional[TraceContext] = None,
    ) -> "Future[QueryResponse]":
        """Thread-safe :meth:`submit`: returns a concurrent future.

        The load generator and the differential harness call this from
        plain threads; the future resolves when the scheduled solve (or
        rejection) completes.

        Raises:
            InvalidQueryError: see :meth:`submit`.
            RuntimeError: when the engine is closed or never started.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if self._loop is None:
            raise RuntimeError(
                "engine not started; call start() or start_background()"
            )
        request = request.validated()
        start = time.perf_counter()
        with metrics_scope(self.registry):
            self.registry.counter(
                "brs_serve_requests_total", help="queries received"
            ).inc()
            spec = self.tenants.authorize(tenant, request.dataset)
            entry = self.store.resolve(request.dataset)
            key = QuerySolver.resolve_key(request, entry)

            cached = self.cache.get(key)
            if cached is not None:
                future: "Future[QueryResponse]" = Future()
                future.set_result(cached.with_envelope(cached=True, seconds=0.0))
                self._observe_latency(start)
                self._slo.record("ok", time.perf_counter() - start)
                return future

            timeout = (
                request.timeout
                if request.timeout is not None
                else self._default_timeout
            )
            budget = Budget.of(timeout=timeout)
            planned, is_new = self._planner.submit(key, budget, trace=trace)
            planned.future.add_done_callback(
                lambda f: self._finish_request(start, f)
            )
            self._publish_inflight()
            if not is_new:
                self.registry.counter(
                    "brs_serve_dedup_joins_total",
                    help="requests absorbed by an identical in-flight query",
                ).inc()
                return planned.future

            try:
                self._admission.admit(spec.id)
            except AdmissionRejectedError as exc:
                self._planner.finish(planned)
                self._publish_inflight()
                if not planned.future.done():
                    planned.future.set_result(
                        QueryResponse(
                            status="rejected",
                            dataset=key.dataset,
                            version=key.version,
                            a=key.a,
                            b=key.b,
                            error=str(exc),
                        )
                    )
                return planned.future
            planned.admitted = True
            self._queue.push(spec.id, planned)
            self._publish_queue_depth()
            self._wake_scheduler()
            return planned.future

    def query(
        self,
        request: QueryRequest,
        tenant: Optional[str] = None,
        timeout: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> QueryResponse:
        """Blocking :meth:`submit_threadsafe` (synchronous callers).

        Args:
            request: the query.
            tenant: tenant id; default tenant when omitted.
            timeout: seconds to wait for the *future* (safety net around
                the pipeline, distinct from the request's deadline).
            trace: optional caller trace context.
        """
        return self.submit_threadsafe(request, tenant=tenant, trace=trace).result(
            timeout=timeout
        )

    def invalidate(self, dataset_id: str) -> int:
        """Bump a dataset's version and purge its cache entries."""
        version = self.store.bump_version(dataset_id)
        self.cache.purge_dataset(dataset_id)
        return version

    def stats(self) -> Dict[str, Any]:
        """JSON-serializable operational snapshot (the stats endpoint)."""
        latency: Dict[str, float] = {}
        metric = self.registry.metrics().get("brs_serve_request_seconds")
        if metric is not None and getattr(metric, "count", 0):
            latency = {
                "count": metric.count,
                "p50_seconds": histogram_quantile(metric, 0.5),
                "p99_seconds": histogram_quantile(metric, 0.99),
            }
        fair = self._queue.stats()
        return {
            "cache": self.cache.stats.to_json(),
            "queue": {
                "open": self._admission.open_total,
                "capacity": self._capacity,
                "inflight": self._planner.inflight_count(),
                "fair_depth": fair.depth,
                "per_tenant_depth": fair.per_tenant,
                "virtual_time": fair.virtual_time,
            },
            "tenants": self._admission.stats(),
            "pressure": self._pressure.snapshot(),
            "latency": latency,
            "slo": self._slo.snapshot(),
            "datasets": self.store.describe(),
        }

    def slo_snapshot(self) -> Dict[str, Any]:
        """Live SLO state, with the SLO gauges freshly published."""
        return self._slo.publish(self.registry)

    def tenants_snapshot(self) -> Dict[str, Any]:
        """Registered tenant policies plus live admission counters."""
        return {
            "tenants": self.tenants.describe(),
            "admission": self._admission.stats(),
        }

    def pressure_snapshot(self) -> Dict[str, Any]:
        """The pressure monitor's state (level, rung, score, policy)."""
        return self._pressure.snapshot()

    def prometheus_text(self) -> str:
        """The registry's Prometheus exposition, SLO gauges included."""
        self._slo.publish(self.registry)
        return to_prometheus_text(self.registry)

    @property
    def tracer(self) -> Tracer:
        """The tracer this engine records spans into."""
        return self._tracer

    # -- scheduler -------------------------------------------------------

    def _wake_scheduler(self) -> None:
        loop, wake = self._loop, self._wake
        if loop is not None and wake is not None and loop.is_running():
            loop.call_soon_threadsafe(wake.set)

    async def _scheduler(self) -> None:
        """Coalesce fair-queue arrivals into batches and dispatch them."""
        assert self._wake is not None
        while not self._closed:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.1)
            except asyncio.TimeoutError:
                if len(self._queue) == 0:
                    continue
            if self._closed:
                break
            self._wake.clear()
            if self._batch_window > 0:
                await asyncio.sleep(self._batch_window)
            self._dispatch_cycle()

    def _dispatch_cycle(self) -> None:
        """One scheduling cycle: observe pressure, drain fairly, dispatch."""
        assert self._loop is not None and self._wake is not None
        with metrics_scope(self.registry):
            backlog = len(self._queue)
            ratio = backlog / self._capacity if self._capacity else 0.0
            self._pressure.observe(ratio, self._slo.snapshot())
            rung = self._pressure.rung()
            with self._inflight_lock:
                available = self._max_inflight_groups - self._inflight_groups
            groups: "OrderedDict[tuple, List[Tuple[str, PlannedQuery]]]" = (
                OrderedDict()
            )
            taken = 0
            while taken < self._max_dispatch:
                head = self._queue.peek()
                if head is None:
                    break
                group_key = head[1].key.group_key
                if group_key not in groups and len(groups) >= available:
                    # Opening another batch would overfill the worker
                    # pool; leave the rest queued where the pressure
                    # monitor can see it.
                    break
                popped = self._queue.pop()
                if popped is None:  # pragma: no cover - single consumer
                    break
                tenant, planned = popped
                groups.setdefault(group_key, []).append((tenant, planned))
                taken += 1
            self._publish_queue_depth()
            for group in groups.values():
                with self._inflight_lock:
                    self._inflight_groups += 1
                future = self._loop.run_in_executor(
                    self._pool, self._run_group, group, rung
                )
                future.add_done_callback(self._group_done)
            if len(self._queue) > 0 and available > len(groups):
                # Work we chose not to drain this cycle: keep the
                # scheduler hot instead of waiting on a new arrival.
                self._wake.set()

    def _group_done(self, _future: "asyncio.Future[None]") -> None:
        """A batch left the pool: free its slot and re-run the scheduler."""
        with self._inflight_lock:
            self._inflight_groups -= 1
        self._wake_scheduler()

    # -- execution (worker threads) --------------------------------------

    def _run_group(
        self, group: List[Tuple[str, PlannedQuery]], rung: str
    ) -> None:
        """Execute one compatibility group at the cycle's ladder rung."""
        with metrics_scope(self.registry), trace_scope(self._tracer):
            key = group[0][1].key
            try:
                entry = self.store.resolve(key.dataset)
            except InvalidQueryError as exc:
                for tenant, planned in group:
                    self._fail(tenant, planned, str(exc))
                return
            self.registry.counter(
                "brs_serve_batches_total", help="compatibility groups executed"
            ).inc()
            self.registry.histogram(
                "brs_serve_batch_size",
                help="distinct queries per executed group",
                buckets=(1, 2, 4, 8, 16, 32, 64),
            ).observe(len(group))
            with self._tracer.span(
                "serve.batch",
                dataset=key.dataset,
                a=key.a,
                b=key.b,
                size=len(group),
                rung=rung,
            ):
                try:
                    shards = self._solver.plan(entry, key)
                except ValueError as exc:
                    for tenant, planned in group:
                        self._fail(tenant, planned, str(exc))
                    return
                for tenant, planned in group:
                    self._run_spec(
                        tenant, planned, entry, shards, len(group), rung
                    )

    def _run_spec(
        self,
        tenant: str,
        planned: PlannedQuery,
        entry: ServedDataset,
        shards: Sequence[Shard],
        batch_size: int,
        rung: str,
    ) -> None:
        """Solve one distinct query and resolve every request on it."""
        key = planned.key
        start = time.perf_counter()
        try:
            self.registry.counter(
                "brs_serve_spec_solves_total",
                help="distinct normalized queries executed (after dedup)",
            ).inc()
            if planned.trace is not None:
                span = self._tracer.span(
                    "serve.query",
                    parent_id=planned.trace.parent_span_id,
                    trace_id=planned.trace.trace_id,
                    dataset=key.dataset,
                    a=key.a,
                    b=key.b,
                    focused=key.focus is not None,
                )
            else:
                span = self._tracer.span(
                    "serve.query",
                    dataset=key.dataset,
                    a=key.a,
                    b=key.b,
                    focused=key.focus is not None,
                )
            with span:
                response = self._solver.solve(
                    key, entry, shards, budget=planned.budget, rung=rung
                )
        except BRSError as exc:
            response = error_response(key, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # pragma: no cover - defensive catch-all
            response = error_response(key, f"{type(exc).__name__}: {exc}")
        response = response.with_envelope(
            seconds=time.perf_counter() - start, batch_size=batch_size
        )
        if response.status == "degraded":
            self.registry.counter(
                "brs_serve_degraded_total",
                help="queries answered with a degraded (anytime) result",
            ).inc()
        current = self.store.resolve(key.dataset)
        if (
            response.status == "ok"
            and current.version == key.version
            and current.mutation_seq == entry.mutation_seq
        ):
            self.cache.put(key, response)
        if not planned.future.done():
            planned.future.set_result(response)
        self._planner.finish(planned)
        self._publish_inflight()
        if planned.admitted:
            self._admission.release(tenant)

    def _fail(self, tenant: str, planned: PlannedQuery, message: str) -> None:
        if not planned.future.done():
            planned.future.set_result(error_response(planned.key, message))
        self._planner.finish(planned)
        self._publish_inflight()
        if planned.admitted:
            self._admission.release(tenant)

    # -- bookkeeping -----------------------------------------------------

    def _observe_latency(self, start: float) -> None:
        self.registry.histogram(
            "brs_serve_request_seconds",
            help="request latency, admission to response (cache hits included)",
            buckets=_LATENCY_BUCKETS,
        ).observe(time.perf_counter() - start)

    def _finish_request(self, start: float, future: "Future[QueryResponse]") -> None:
        """Done-callback bookkeeping: latency histogram + SLO outcome."""
        self._observe_latency(start)
        try:
            status = future.result().status
        except Exception:  # pragma: no cover - futures resolve to responses
            status = "error"
        self._slo.record(status, time.perf_counter() - start)

    def _publish_inflight(self) -> None:
        self.registry.gauge(
            "brs_serve_inflight",
            help="distinct queries between submission and resolution",
        ).set(float(self._planner.inflight_count()))

    def _publish_queue_depth(self) -> None:
        self.registry.gauge(
            "brs_tenant_queue_depth",
            help="queries waiting in the weighted-fair queue",
        ).set(float(len(self._queue)))
