"""Admission control: a bounded count of open queries with explicit rejection.

The serving layer is cooperative and in-process, so backpressure has to be
explicit: once ``capacity`` queries are *open* (admitted but not yet
answered — queued or executing), further arrivals are refused immediately
with :class:`~repro.runtime.errors.AdmissionRejectedError` rather than
queued without bound.  Clients see a ``"rejected"`` response (HTTP 429)
and can retry with backoff; latency for admitted queries stays bounded by
``capacity / throughput`` instead of growing with the arrival rate.

Cache hits and deduplicated joins to an in-flight query never consume
admission slots — they create no new solver work.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import active_registry
from repro.runtime.errors import AdmissionRejectedError


class AdmissionController:
    """Counting semaphore with rejection instead of blocking.

    Args:
        capacity: maximum number of open (admitted, unanswered) queries.

    Raises:
        ValueError: on a non-positive capacity.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._open = 0
        self._lock = threading.Lock()

    def admit(self) -> None:
        """Take one slot.

        Raises:
            AdmissionRejectedError: when all ``capacity`` slots are taken.
        """
        with self._lock:
            if self._open >= self.capacity:
                depth = self._open
                rejected = True
            else:
                self._open += 1
                depth = self._open
                rejected = False
        registry = active_registry()
        if registry.enabled:
            registry.gauge(
                "brs_serve_queue_depth", help="open (admitted, unanswered) queries"
            ).set(depth)
            if rejected:
                registry.counter(
                    "brs_serve_rejected_total",
                    help="queries refused by admission control",
                ).inc()
        if rejected:
            raise AdmissionRejectedError(
                f"admission queue full ({depth}/{self.capacity} open queries)",
                queue_depth=depth,
                capacity=self.capacity,
            )

    def release(self) -> None:
        """Return one slot (called exactly once per admitted query)."""
        with self._lock:
            self._open = max(0, self._open - 1)
            depth = self._open
        registry = active_registry()
        if registry.enabled:
            registry.gauge(
                "brs_serve_queue_depth", help="open (admitted, unanswered) queries"
            ).set(depth)

    @property
    def open_count(self) -> int:
        """Open queries right now."""
        with self._lock:
            return self._open
