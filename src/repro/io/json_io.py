"""JSON round-tripping for diversity and influence datasets.

The format is deliberately plain: coordinates as parallel lists, tags as
lists of strings/ints, check-ins as ``[user, poi]`` pairs, edges as
``[u, v, p]`` triples.  Everything a solver needs, nothing
implementation-specific (quadtrees and RR sets are rebuilt on load — they
are caches, not data).
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Union

from repro.datasets.registry import DiversityDataset, InfluenceDataset
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.influence.checkins import CheckinTable
from repro.influence.graph import SocialGraph
from repro.runtime.errors import InvalidQueryError

Dataset = Union[DiversityDataset, InfluenceDataset]

#: Format version written into every file; bump on breaking changes.
FORMAT_VERSION = 1


def _space_to_json(space: Rect) -> list:
    return [space.x_min, space.x_max, space.y_min, space.y_max]


def _points_to_json(points) -> dict:
    return {"x": [p.x for p in points], "y": [p.y for p in points]}


def _points_from_json(data: dict):
    points = [Point(x, y) for x, y in zip(data["x"], data["y"])]
    if not points:
        raise InvalidQueryError("dataset contains no objects")
    for obj_id, p in enumerate(points):
        if not (
            isinstance(p.x, (int, float))
            and isinstance(p.y, (int, float))
            and math.isfinite(p.x)
            and math.isfinite(p.y)
        ):
            raise InvalidQueryError(
                f"object {obj_id} has non-finite coordinates "
                f"({p.x!r}, {p.y!r})"
            )
    return points


def save_dataset(dataset: Dataset, path: Union[str, pathlib.Path]) -> None:
    """Write a dataset to ``path`` as a single JSON document.

    Raises:
        TypeError: for objects that are not one of the two dataset kinds.
    """
    if not isinstance(dataset, (DiversityDataset, InfluenceDataset)):
        raise TypeError(f"cannot serialize {type(dataset).__name__}")
    doc = {
        "format_version": FORMAT_VERSION,
        "name": dataset.name,
        "space": _space_to_json(dataset.space),
        "points": _points_to_json(dataset.points),
    }
    if isinstance(dataset, DiversityDataset):
        doc["kind"] = "diversity"
        doc["tags"] = [sorted(tags) for tags in dataset.tag_sets]
    elif isinstance(dataset, InfluenceDataset):
        doc["kind"] = "influence"
        doc["n_users"] = dataset.graph.n_users
        doc["checkins"] = [
            [user, poi, count]
            for (user, poi), count in sorted(dataset.checkins.visit_counts().items())
        ]
        doc["edges"] = [
            [u, v, p]
            for u in range(dataset.graph.n_users)
            for (v, p) in dataset.graph.out_neighbors(u)
        ]
    pathlib.Path(path).write_text(json.dumps(doc))


def load_dataset(path: Union[str, pathlib.Path]) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Raises:
        ValueError: on an unknown kind or unsupported format version.
        InvalidQueryError: on an empty dataset or non-finite coordinates
            (``NaN``/``inf`` survive a JSON round-trip as literals, so a
            corrupted file is caught here rather than mid-search).
    """
    doc = json.loads(pathlib.Path(path).read_text())
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    space = Rect(*doc["space"])
    points = _points_from_json(doc["points"])
    kind = doc.get("kind")
    if kind == "diversity":
        tags = [frozenset(t) for t in doc["tags"]]
        return DiversityDataset(doc["name"], points, tags, space)
    if kind == "influence":
        visits = [
            (user, poi)
            for user, poi, count in doc["checkins"]
            for _ in range(count)
        ]
        checkins = CheckinTable(doc["n_users"], len(points), visits)
        graph = SocialGraph(doc["n_users"], [tuple(e) for e in doc["edges"]])
        return InfluenceDataset(doc["name"], points, checkins, graph, space)
    raise ValueError(f"unknown dataset kind {kind!r}")
