"""Dataset (de)serialization.

Synthetic analogs are deterministic, but a downstream user plugging in real
POI/check-in data needs a stable on-disk format: one JSON document per
dataset, with a ``kind`` discriminator (``diversity`` or ``influence``),
round-tripped by :func:`save_dataset` / :func:`load_dataset`.
"""

from repro.io.json_io import load_dataset, save_dataset

__all__ = ["load_dataset", "save_dataset"]
