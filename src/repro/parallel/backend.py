"""Multiprocessing shard-solve backend for partitioned best-region search.

:func:`solve_partitioned` fans the overlapping x-windows of
:func:`repro.core.partitioned.plan_shards` out across worker *processes*
(a :class:`~concurrent.futures.ProcessPoolExecutor`), which is what the
window decomposition was built for: each window solve is CPU-bound pure
Python, so thread pools gain nothing under the GIL while process pools
scale with cores.

Execution model:

* **Bootstrap once per pool.**  Workers receive the object set and a
  picklable function spec through the pool initializer
  (:class:`~repro.parallel.worker.WorkerPayload`); tasks then only carry
  shard ids and scalars, so dispatch cost is O(shard), not O(dataset).
* **Incumbent sharing.**  A cheap global CoverBRS pass seeds the pruning
  bound; shards are dispatched widest-first, at most ``workers`` at a
  time, and every completed shard's score tightens the incumbent handed
  to the *next* dispatch — later windows prune against the best answer
  found anywhere so far, which the all-at-once serial path cannot do.
* **Budget propagation.**  Each task carries the remaining-deadline and
  a remaining-evals slice of the caller's :class:`~repro.runtime.budget.
  Budget`; workers rebuild a local budget from them, so anytime semantics
  and sound optimality gaps survive the process boundary.  Worker eval
  counts are charged back to the caller's budget on merge.
* **Failure handling.**  A worker raising (or an injected fault) requeues
  its shard on the surviving pool; a crashed worker breaks the pool,
  which is rebuilt with the same bootstrap.  Both paths are capped by
  ``max_retries`` per shard (and pool rebuilds overall); exhausted shards
  degrade to the in-process serial path, so the answer stays exact
  whenever any budget remains, and stays *sound* (score ≤ reported
  upper bound) when it does not.
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import multiprocessing

from repro.core.coverbrs import CoverBRS
from repro.core.partitioned import Shard, plan_shards
from repro.core.result import BRSResult
from repro.core.siri import objects_in_region
from repro.core.slicebrs import SliceBRS
from repro.core.stats import SearchStats
from repro.functions.base import SetFunction
from repro.functions.reduced import reduce_over_cover
from repro.geometry.point import Point
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.parallel.spec import function_spec
from repro.parallel.worker import ShardOutcome, ShardTask, WorkerPayload
from repro.parallel import worker as worker_mod
from repro.runtime.budget import Budget, effective_budget
from repro.runtime.errors import (
    BudgetExceededError,
    InvalidQueryError,
    WorkerFailureError,
)

#: Environment override for the pool start method (CI runs ``spawn``).
START_METHOD_ENV = "REPRO_BRS_START_METHOD"


def default_start_method() -> str:
    """The pool start method: env override, else ``fork`` where available.

    ``fork`` bootstraps in milliseconds on Linux; ``spawn`` (the only
    option on Windows, the default on macOS) re-imports the package per
    worker and is what the CI parallel job forces via
    :data:`START_METHOD_ENV` to keep both paths honest.
    """
    env = os.environ.get(START_METHOD_ENV)
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class _SolveState:
    """Mutable merge state shared by the dispatch loop and the fallbacks."""

    def __init__(self, n_objects: int) -> None:
        self.best_score = 0.0
        self.best_point: Optional[Point] = None
        self.timed_out = False
        #: Sound caps for shards not searched to completion.
        self.bounds: List[float] = []
        self.stats = SearchStats(n_objects=n_objects)

    def improve(self, score: float, point: Optional[Point]) -> None:
        """Adopt a better achievable answer."""
        if point is not None and score > self.best_score:
            self.best_score = score
            self.best_point = point


def solve_partitioned(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    n_parts: int = 4,
    theta: float = 1.0,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    start_method: Optional[str] = None,
    max_retries: int = 2,
    seed: int = 0,
    inject_faults: Optional[Mapping[int, Sequence[str]]] = None,
) -> BRSResult:
    """Solve BRS exactly by overlapping x-windows, optionally multi-core.

    The decomposition (and therefore the answer) is identical to the
    serial :func:`repro.core.partitioned.partitioned_best_region`; with
    ``workers`` the windows are solved by a process pool as described in
    the module docstring.

    Args:
        points: object locations (ids are positions in this sequence).
        f: submodular monotone score function over those ids.
        a: query-rectangle height.
        b: query-rectangle width.
        n_parts: requested window count.
        theta: slice-width multiple for the window solvers.
        workers: process-pool size; ``None``/``0``/``1`` solves serially
            in-process.
        budget: optional cooperative budget (falls back to the ambient
            scope).  On expiry the best-so-far answer is returned with
            ``status="timeout"`` and a sound ``upper_bound``.
        start_method: multiprocessing start method (``"fork"`` /
            ``"spawn"`` / ``"forkserver"``); defaults to
            :func:`default_start_method`.
        max_retries: per-shard requeues after a worker failure, and pool
            rebuilds after a crash, before degrading that work to the
            serial path.
        seed: base for the per-worker RNG seeding (reproducibility).
        inject_faults: test-only fault schedule ``{shard_index: [mode,
            ...]}``; each dispatch of that shard consumes the next mode
            (``"raise"``, ``"crash"``, or ``"stall"``).

    Raises:
        InvalidQueryError: on an empty instance, bad parameters, or a
            function that cannot cross the process boundary.
    """
    if max_retries < 0:
        raise InvalidQueryError(f"max_retries must be >= 0, got {max_retries}")
    budget = effective_budget(budget)
    registry = active_registry()
    tracer = active_tracer()
    started = time.perf_counter()

    shards = plan_shards(points, b, n_parts)
    n_workers = int(workers or 0)
    use_pool = n_workers > 1 and len(shards) > 1
    if use_pool:
        # Fail fast (and serially) on functions that cannot be shipped.
        spec = function_spec(f)

    state = _SolveState(n_objects=len(points))
    with tracer.span(
        "parallel.solve",
        n_objects=len(points),
        n_shards=len(shards),
        workers=n_workers if use_pool else 0,
    ):
        # Global incumbent from a cheap approximate pass: every window
        # prunes against it immediately, and it is itself feasible.
        try:
            incumbent = CoverBRS(c=1.0 / 3.0, theta=theta).solve(
                points, f, a, b,
                budget=budget.sub(time_fraction=0.2, eval_fraction=0.2)
                if budget is not None else None,
            )
            state.improve(incumbent.score, incumbent.point)
            if incumbent.status != "ok":
                state.timed_out = True
        except BudgetExceededError:
            state.timed_out = True

        if use_pool:
            leftovers = _run_pool(
                points, spec, f, a, b, theta, shards, state,
                workers=n_workers,
                budget=budget,
                start_method=start_method or default_start_method(),
                max_retries=max_retries,
                seed=seed,
                inject_faults=inject_faults,
            )
        else:
            leftovers = list(shards)
        if leftovers:
            _solve_shards_serial(
                points, f, a, b, theta, leftovers, state, budget
            )

    if state.best_point is None:
        state.best_point = points[0]
    object_ids = objects_in_region(points, state.best_point, a, b)
    score = f.value(object_ids)
    if registry.enabled:
        registry.counter(
            "brs_parallel_solves_total",
            help="partitioned solves driven by repro.parallel",
        ).inc()
        registry.histogram(
            "brs_parallel_solve_seconds",
            help="end-to-end partitioned solve wall time",
        ).observe(time.perf_counter() - started)
        registry.gauge(
            "brs_parallel_workers", help="pool size of the last parallel solve"
        ).set(float(n_workers if use_pool else 0))
    return BRSResult(
        point=state.best_point,
        score=score,
        object_ids=object_ids,
        a=a,
        b=b,
        stats=state.stats,
        status="ok" if not state.timed_out else "timeout",
        upper_bound=(
            None
            if not state.timed_out
            else max([score, state.best_score] + state.bounds)
        ),
    )


def _solve_shards_serial(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    theta: float,
    shards: Sequence[Shard],
    state: _SolveState,
    budget: Optional[Budget],
) -> None:
    """In-process shard loop: the serial path and the degradation target.

    Shares the incumbent across windows sequentially (each solve starts
    from the best score any earlier window found) and collects monotone
    upper bounds for windows the budget cannot afford.
    """
    solver = SliceBRS(theta=theta)
    for shard in shards:
        if budget is not None and budget.expired():
            state.timed_out = True
            state.bounds.append(f.value(shard.object_ids))
            continue
        sub_points = [points[i] for i in shard.object_ids]
        sub_f = reduce_over_cover(f, [[i] for i in shard.object_ids])
        try:
            result = solver.solve(
                sub_points, sub_f, a, b,
                initial_best=state.best_score, budget=budget,
            )
        except BudgetExceededError:
            state.timed_out = True
            state.bounds.append(f.value(shard.object_ids))
            continue
        state.stats.merge(result.stats)
        if result.status != "ok":
            state.timed_out = True
            state.bounds.append(
                result.upper_bound
                if result.upper_bound is not None
                else f.value(shard.object_ids)
            )
        if result.score > state.best_score and not math.isnan(result.point.x):
            state.improve(result.score, Point(result.point.x, result.point.y))


def _build_payload(
    points: Sequence[Point],
    spec: object,
    a: float,
    b: float,
    theta: float,
    seed: int,
) -> WorkerPayload:
    """Bootstrap payload, shipping coordinate arrays when possible.

    Two contiguous float64 buffers pickle (and fork-share) far cheaper
    than a tuple of Point objects, and workers rebuild only the Points
    their shards touch.  Anything the columnar layer rejects (non-finite
    coordinates, an unimportable NumPy) falls back to shipping the
    objects themselves.
    """
    try:
        from repro.columnar.dataset import as_columnar

        cds = as_columnar(points)
    except Exception:
        return WorkerPayload(
            points=tuple(points), spec=spec, a=a, b=b, theta=theta,
            seed_base=seed,
        )
    return WorkerPayload(
        points=None, spec=spec, a=a, b=b, theta=theta, seed_base=seed,
        coords=(cds.xs, cds.ys),
    )


def _run_pool(
    points: Sequence[Point],
    spec: object,
    f: SetFunction,
    a: float,
    b: float,
    theta: float,
    shards: Sequence[Shard],
    state: _SolveState,
    workers: int,
    budget: Optional[Budget],
    start_method: str,
    max_retries: int,
    seed: int,
    inject_faults: Optional[Mapping[int, Sequence[str]]],
) -> List[Shard]:
    """Dispatch shards over a (rebuildable) process pool.

    Returns the shards that must still be solved serially (retry budget
    exhausted); merge state for everything else lands in ``state``.
    """
    registry = active_registry()
    tracer = active_tracer()
    payload = _build_payload(points, spec, a, b, theta, seed)
    ctx = multiprocessing.get_context(start_method)
    faults: Dict[int, Deque[str]] = {
        idx: deque(modes) for idx, modes in (inject_faults or {}).items()
    }
    retries: Dict[int, int] = {}
    # Widest windows first: they take longest (best makespan) and their
    # scores tighten the incumbent for everything dispatched after them.
    pending: Deque[Shard] = deque(
        sorted(shards, key=lambda s: -len(s.object_ids))
    )
    serial_leftovers: List[Shard] = []
    pool_rebuilds = 0

    def _next_task(shard: Shard) -> ShardTask:
        deadline: Optional[float] = None
        max_evals: Optional[int] = None
        if budget is not None:
            remaining = budget.remaining_time()
            if math.isfinite(remaining):
                deadline = max(1e-9, remaining)
            remaining_evals = budget.remaining_evals()
            if math.isfinite(remaining_evals):
                outstanding = max(1, len(pending) + 1)
                boost = 1 + retries.get(shard.index, 0)
                max_evals = max(1, int(remaining_evals // outstanding) * boost)
        fault_queue = faults.get(shard.index)
        fault = fault_queue.popleft() if fault_queue else None
        return ShardTask(
            shard_index=shard.index,
            object_ids=shard.object_ids,
            incumbent=state.best_score,
            deadline=deadline,
            max_evals=max_evals,
            fault=fault,
            trace=tracer.enabled,
        )

    def _requeue(shard: Shard, reason: str) -> None:
        """Requeue a failed/expired shard, or hand it to the serial path."""
        retries[shard.index] = retries.get(shard.index, 0) + 1
        if retries[shard.index] <= max_retries:
            tracer.event("parallel.retry", shard=shard.index, reason=reason)
            if registry.enabled:
                registry.counter(
                    "brs_parallel_retries_total",
                    help="shard dispatches retried after a worker failure",
                ).inc()
            pending.append(shard)
        else:
            tracer.event(
                "parallel.serial_fallback", shard=shard.index, reason=reason
            )
            if registry.enabled:
                registry.counter(
                    "brs_parallel_serial_fallbacks_total",
                    help="shards degraded to the in-process serial path",
                ).inc()
            serial_leftovers.append(shard)

    def _merge(shard: Shard, outcome: ShardOutcome) -> None:
        state.stats.merge(outcome.stats)
        if registry.enabled:
            registry.counter(
                "brs_parallel_shards_total",
                help="shard solves completed by pool workers",
            ).inc()
            registry.histogram(
                "brs_parallel_shard_seconds",
                help="worker-side wall time per shard solve",
            ).observe(outcome.seconds)
            for name, value in outcome.metrics.items():
                registry.counter(name).inc(value)
        # Stitch the worker-side spans into this trace under one
        # parallel.shard wrapper; an outcome without events (tracing off,
        # or an old worker) still gets the wrapper so the shard is
        # visible in the tree.
        tracer.graft(
            outcome.trace_events or [],
            "parallel.shard",
            shard=shard.index,
            worker=outcome.worker_id,
            ordinal=outcome.worker_ordinal,
            status=outcome.status,
            seconds=outcome.seconds,
        )
        if outcome.score > state.best_score and not math.isnan(outcome.x):
            state.improve(outcome.score, Point(outcome.x, outcome.y))
        if budget is not None and outcome.evals:
            try:
                budget.charge(outcome.evals)
            except BudgetExceededError:
                state.timed_out = True
        if outcome.status != "ok":
            # Deadline- or eval-blown worker: requeue while the caller's
            # budget still has room (a bigger slice may finish the job),
            # otherwise keep its sound anytime bound.
            if budget is not None and not budget.expired():
                _requeue(shard, f"shard status {outcome.status}")
            else:
                state.timed_out = True
                state.bounds.append(
                    outcome.upper_bound
                    if outcome.upper_bound is not None
                    else f.value(shard.object_ids)
                )

    while pending and pool_rebuilds <= max_retries:
        if budget is not None and budget.expired():
            break
        inflight: Dict["Future[ShardOutcome]", Shard] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, max(1, len(pending))),
                mp_context=ctx,
                initializer=worker_mod.init_worker,
                initargs=(payload,),
            ) as pool:
                while pending or inflight:
                    if budget is not None and budget.expired():
                        state.timed_out = True
                        break
                    while pending and len(inflight) < workers:
                        shard = pending.popleft()
                        inflight[
                            pool.submit(worker_mod.solve_shard, _next_task(shard))
                        ] = shard
                    done, _ = wait(
                        set(inflight), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        shard = inflight.pop(future)
                        try:
                            outcome = future.result()
                        except BrokenProcessPool:
                            # Already popped: requeue before the outer
                            # handler sweeps the rest of the in-flight set.
                            _requeue(shard, "pool broken")
                            raise
                        except WorkerFailureError as exc:
                            if registry.enabled:
                                registry.counter(
                                    "brs_parallel_worker_failures_total",
                                    help="worker failures observed "
                                         "(raises and crashes)",
                                ).inc()
                            _requeue(shard, str(exc))
                            continue
                        _merge(shard, outcome)
                # Anything still inflight when the budget broke the loop
                # is abandoned; the executor exit cancels/collects it.
                for shard in inflight.values():
                    state.timed_out = True
                    state.bounds.append(f.value(shard.object_ids))
                inflight.clear()
        except BrokenProcessPool:
            # A worker died hard (crash fault, OOM kill): the whole pool
            # is unusable.  Requeue the in-flight shards and rebuild.
            pool_rebuilds += 1
            tracer.event("parallel.pool_broken", rebuilds=pool_rebuilds)
            if registry.enabled:
                registry.counter(
                    "brs_parallel_worker_failures_total",
                    help="worker failures observed (raises and crashes)",
                ).inc()
                registry.counter(
                    "brs_parallel_pool_rebuilds_total",
                    help="process pools rebuilt after a hard worker crash",
                ).inc()
            for shard in inflight.values():
                _requeue(shard, "pool broken")
            inflight.clear()

    # Retry/rebuild budget exhausted (or caller budget expired): whatever
    # is left degrades to the serial path, which also handles expiry.
    serial_leftovers.extend(pending)
    return serial_leftovers
