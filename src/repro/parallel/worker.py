"""Worker-process side of the multiprocessing shard-solve backend.

Everything here runs inside pool workers and must be importable at module
top level so both the ``fork`` and ``spawn`` start methods can find it.
A pool is bootstrapped once per solve: :func:`init_worker` receives one
:class:`WorkerPayload` (the object set, a picklable function spec, the
rectangle, and a seed base) through the executor's initializer, rebuilds
the score function locally, and parks everything in module globals.
Tasks then only carry the per-shard bits — object ids, the current
incumbent, the remaining-budget slice, and an optional injected fault —
so the per-task pickle cost stays O(shard), not O(dataset).

Each worker seeds its own :class:`random.Random` from the payload's seed
base mixed with the pool-assigned worker ordinal, so any stochastic
component stays reproducible per worker without touching the hidden
module-global RNG state.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.slicebrs import SliceBRS
from repro.core.stats import SearchStats
from repro.functions.base import SetFunction
from repro.functions.reduced import reduce_over_cover
from repro.geometry.point import Point
from repro.obs.metrics import MetricsRegistry, counter_delta, metrics_scope
from repro.obs.trace import Tracer, trace_scope
from repro.parallel.spec import FunctionSpec
from repro.runtime.budget import Budget
from repro.runtime.errors import WorkerFailureError


@dataclass(frozen=True)
class WorkerPayload:
    """Everything a pool worker needs exactly once, via the initializer.

    Attributes:
        points: the full object set (shards index into it), or ``None``
            when :attr:`coords` carries the locations instead.
        spec: picklable descriptor the worker rebuilds the function from.
        a: query-rectangle height.
        b: query-rectangle width.
        theta: slice-width multiple for the shard solver.
        seed_base: mixed with the worker ordinal to seed the per-worker RNG.
        coords: optional ``(xs, ys)`` float64 array pair replacing
            :attr:`points` — two contiguous buffers pickle far cheaper
            than a tuple of Point objects under ``spawn``, and workers
            materialize only the Points each shard actually touches.
    """

    points: Optional[Tuple[Point, ...]]
    spec: FunctionSpec
    a: float
    b: float
    theta: float
    seed_base: int = 0
    coords: Optional[Tuple[Any, Any]] = None


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: solve a shard against the current incumbent.

    Attributes:
        shard_index: position of the shard in the plan (stable across
            retries; used for bookkeeping and fault targeting).
        object_ids: dataset-global ids of the shard's members.
        incumbent: best globally-known achievable score at dispatch time;
            the shard solver prunes against it from the first slab.
        deadline: remaining wall-clock seconds of the caller's budget at
            dispatch time (``None`` = unlimited).
        max_evals: score-evaluation slice granted to this task
            (``None`` = unlimited).
        fault: injected fault mode for this attempt (``None``, ``"raise"``,
            ``"crash"``, or ``"stall"``) — test machinery, threaded through
            the real dispatch path so the failure handling is exercised
            end to end.
        trace: when True the worker records its solve spans into a local
            buffer and ships them back on the outcome, so the parent can
            graft them under its ``parallel.shard`` span (set from the
            dispatching tracer's ``enabled`` flag).
    """

    shard_index: int
    object_ids: Tuple[int, ...]
    incumbent: float
    deadline: Optional[float] = None
    max_evals: Optional[int] = None
    fault: Optional[str] = None
    trace: bool = False


@dataclass
class ShardOutcome:
    """What a worker ships back after solving (or abandoning) a shard.

    Attributes:
        shard_index: which shard this answers.
        worker_id: OS pid of the worker process (span annotation).
        worker_ordinal: pool-assigned worker number (1-based).
        score: best score found on the shard's sub-instance (already
            compared against the dispatched incumbent; ``-inf`` means the
            shard found nothing better).
        x, y: center of the shard's best region (NaN when not improving).
        status: ``"ok"`` or ``"timeout"`` (anytime answer).
        upper_bound: sound cap on the shard's true optimum when the solve
            did not run to completion, else ``None``.
        evals: score evaluations the task charged to its budget slice.
        seconds: worker-side wall time of the solve.
        stats: the shard solve's :class:`SearchStats`.
        metrics: counter deltas from the worker-local registry, merged
            into the caller's ambient registry by the parent.
        trace_events: the worker-local trace buffer (raw event dicts,
            meta header included) when the task asked for tracing, else
            ``None``; the parent stitches it into its own trace with
            :meth:`repro.obs.trace.Tracer.graft`.
    """

    shard_index: int
    worker_id: int
    worker_ordinal: int
    score: float
    x: float
    y: float
    status: str
    upper_bound: Optional[float]
    evals: int
    seconds: float
    stats: SearchStats = field(default_factory=SearchStats)
    metrics: Dict[str, float] = field(default_factory=dict)
    trace_events: Optional[List[Dict[str, Any]]] = None


#: Per-process worker state installed by :func:`init_worker`.
_STATE: Dict[str, object] = {}


def _worker_ordinal() -> int:
    """The pool-assigned worker number (1-based; 0 when not in a pool)."""
    identity: Tuple[int, ...] = getattr(
        multiprocessing.current_process(), "_identity", ()
    )
    return identity[0] if identity else 0


def init_worker(payload: WorkerPayload) -> None:
    """Pool initializer: rebuild the instance once per worker process."""
    _STATE["points"] = payload.points
    _STATE["coords"] = payload.coords
    _STATE["fn"] = payload.spec.build()
    _STATE["a"] = payload.a
    _STATE["b"] = payload.b
    _STATE["theta"] = payload.theta
    _STATE["rng"] = Random(payload.seed_base * 100003 + _worker_ordinal())
    _STATE["ordinal"] = _worker_ordinal()


def worker_rng() -> Random:
    """The per-worker seeded RNG (for stochastic shard strategies)."""
    rng = _STATE.get("rng")
    if rng is None:
        raise WorkerFailureError("worker not initialized; no RNG available")
    return rng  # type: ignore[return-value]


def _inject(fault: Optional[str], deadline: Optional[float]) -> None:
    """Apply an injected fault before the solve starts.

    ``"raise"`` surfaces as a :class:`WorkerFailureError` through the
    future (the pool survives); ``"crash"`` hard-exits the process (the
    pool breaks, exercising the rebuild path); ``"stall"`` sleeps past
    the task deadline so the solve returns a timeout outcome.
    """
    if fault is None:
        return
    if fault == "raise":
        raise WorkerFailureError(
            f"injected worker failure in pid {os.getpid()}"
        )
    if fault == "crash":
        os._exit(17)
    if fault == "stall":
        time.sleep((deadline or 0.01) * 1.5)
        return
    raise WorkerFailureError(f"unknown injected fault mode {fault!r}")


def solve_shard(task: ShardTask) -> ShardOutcome:
    """Solve one shard in a bootstrapped worker; always returns an outcome.

    The solve runs under a worker-local metrics registry so solver
    counters can be shipped back as deltas, and under a :class:`Budget`
    rebuilt from the remaining-deadline slice the parent measured at
    dispatch time — anytime semantics survive the process boundary
    because an expiring slice yields a ``"timeout"`` outcome with a
    sound ``upper_bound`` instead of an exception.

    Raises:
        WorkerFailureError: when the worker was never initialized or an
            injected ``"raise"`` fault fires (the parent requeues the
            shard with capped retries).
    """
    if _STATE.get("points") is None and _STATE.get("coords") is None:
        raise WorkerFailureError(
            f"worker pid {os.getpid()} has no bootstrapped instance"
        )
    started = time.perf_counter()
    _inject(task.fault, task.deadline)

    fn: SetFunction = _STATE["fn"]  # type: ignore[assignment]
    a: float = _STATE["a"]  # type: ignore[assignment]
    b: float = _STATE["b"]  # type: ignore[assignment]
    theta: float = _STATE["theta"]  # type: ignore[assignment]

    coords = _STATE.get("coords")
    if coords is not None:
        # Columnar bootstrap: materialize only the shard's Points.
        xs, ys = coords
        sub_points = [
            Point(float(xs[i]), float(ys[i])) for i in task.object_ids
        ]
    else:
        points: Sequence[Point] = _STATE["points"]  # type: ignore[assignment]
        sub_points = [points[i] for i in task.object_ids]
    sub_f = reduce_over_cover(fn, [[i] for i in task.object_ids])
    budget = (
        Budget(deadline=task.deadline, max_evals=task.max_evals)
        if task.deadline is not None or task.max_evals is not None
        else None
    )

    registry = MetricsRegistry()
    trace_buffer: Optional[List[Dict[str, Any]]] = (
        [] if task.trace else None
    )
    tracer = Tracer(trace_buffer) if trace_buffer is not None else None
    with metrics_scope(registry), trace_scope(tracer):
        result = SliceBRS(theta=theta).solve(
            sub_points, sub_f, a, b,
            initial_best=task.incumbent, budget=budget,
        )

    if result.score <= task.incumbent:
        score, x, y = -math.inf, math.nan, math.nan
    else:
        score, x, y = result.score, result.point.x, result.point.y
    return ShardOutcome(
        shard_index=task.shard_index,
        worker_id=os.getpid(),
        worker_ordinal=int(_STATE.get("ordinal", 0)),  # type: ignore[arg-type]
        score=score,
        x=x,
        y=y,
        status=result.status,
        upper_bound=result.upper_bound,
        evals=budget.evals if budget is not None else 0,
        seconds=time.perf_counter() - started,
        stats=result.stats,
        metrics=counter_delta({}, registry.snapshot()),
        trace_events=trace_buffer,
    )
