"""Picklable descriptors for score functions crossing a process boundary.

Worker processes cannot share the caller's :class:`~repro.functions.base.
SetFunction` object directly under the ``spawn`` start method, and even
under ``fork`` we want one compact, explicit payload shipped exactly once
per worker (through the pool initializer) rather than re-pickled per
task.  A :class:`FunctionSpec` is that payload: a frozen, picklable
description from which each worker rebuilds an equivalent function
locally.

The two shipped function families get dedicated specs that reconstruct
the *fast* incremental evaluators (:class:`~repro.functions.weighted_sum.
SumFunction` and :class:`~repro.functions.coverage.CoverageFunction`);
any other function falls back to :class:`PickledFunctionSpec`, which
carries the pickled object verbatim and therefore requires the function
itself to be picklable.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Hashable, Tuple, Union

from repro.functions.base import SetFunction
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.runtime.errors import InvalidQueryError


@dataclass(frozen=True)
class SumFunctionSpec:
    """Rebuilds a :class:`SumFunction` from its weight vector."""

    weights: Tuple[float, ...]

    def build(self) -> SumFunction:
        """Materialize the function in the current process."""
        return SumFunction(len(self.weights), list(self.weights))


@dataclass(frozen=True)
class CoverageFunctionSpec:
    """Rebuilds a :class:`CoverageFunction` from labels, weights, scale."""

    label_sets: Tuple[Tuple[Hashable, ...], ...]
    label_weights: Tuple[Tuple[Hashable, float], ...]
    scale: float

    def build(self) -> CoverageFunction:
        """Materialize the function in the current process."""
        return CoverageFunction(
            [frozenset(labels) for labels in self.label_sets],
            dict(self.label_weights),
            scale=self.scale,
        )


@dataclass(frozen=True)
class PickledFunctionSpec:
    """Carries an arbitrary picklable :class:`SetFunction` verbatim."""

    payload: bytes

    def build(self) -> SetFunction:
        """Materialize the function in the current process."""
        return pickle.loads(self.payload)


FunctionSpec = Union[SumFunctionSpec, CoverageFunctionSpec, PickledFunctionSpec]


def function_spec(fn: SetFunction) -> FunctionSpec:
    """Describe ``fn`` as a picklable spec for worker bootstrap.

    Raises:
        InvalidQueryError: when ``fn`` is neither a known function family
            nor picklable — the parallel backend cannot ship it to worker
            processes (use the serial path instead).
    """
    if isinstance(fn, SumFunction):
        return SumFunctionSpec(tuple(fn.weights))
    if isinstance(fn, CoverageFunction):
        return CoverageFunctionSpec(
            tuple(tuple(sorted(fn.labels_of(i), key=repr))
                  for i in range(fn.n_objects)),
            tuple(sorted(fn.label_weights.items(), key=lambda kv: repr(kv[0]))),
            fn.scale,
        )
    try:
        payload = pickle.dumps(fn)
    except Exception as exc:
        raise InvalidQueryError(
            f"score function {type(fn).__name__} is not picklable and has no "
            f"parallel spec; solve serially or make it picklable ({exc})"
        ) from exc
    return PickledFunctionSpec(payload)
