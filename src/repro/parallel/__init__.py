"""Multiprocessing shard-solve backend for partitioned best-region search.

Public surface:

* :func:`~repro.parallel.backend.solve_partitioned` — the exact
  partitioned solver, serial or across a process pool.
* :func:`~repro.parallel.spec.function_spec` and the spec classes — the
  picklable function descriptors workers bootstrap from.
* The worker-side message types, exposed for tests and instrumentation.
"""

from repro.parallel.backend import (
    START_METHOD_ENV,
    default_start_method,
    solve_partitioned,
)
from repro.parallel.spec import (
    CoverageFunctionSpec,
    FunctionSpec,
    PickledFunctionSpec,
    SumFunctionSpec,
    function_spec,
)
from repro.parallel.worker import (
    ShardOutcome,
    ShardTask,
    WorkerPayload,
    worker_rng,
)

__all__ = [
    "START_METHOD_ENV",
    "default_start_method",
    "solve_partitioned",
    "function_spec",
    "FunctionSpec",
    "SumFunctionSpec",
    "CoverageFunctionSpec",
    "PickledFunctionSpec",
    "WorkerPayload",
    "ShardTask",
    "ShardOutcome",
    "worker_rng",
]
