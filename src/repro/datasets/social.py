"""Synthetic social graphs and check-in behaviour.

The Brightkite/Gowalla analogs need three correlated artifacts: a friendship
graph with a heavy-tailed degree distribution, user "home" locations, and
check-ins concentrated around those homes.  Influence then travels through
friends, and a region's seed users are geographically coherent — the
structure the most-influential-region application exploits.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.index.grid import GridIndex


def preferential_attachment_edges(
    n_users: int, edges_per_user: int = 3, seed: int = 0
) -> List[Tuple[int, int]]:
    """Generate an undirected friendship list with power-law degrees.

    Barabási–Albert attachment: each arriving user links to
    ``edges_per_user`` existing users chosen proportionally to degree.
    Returned pairs are unordered friendships; callers wanting a directed IC
    graph emit both directions.

    Raises:
        ValueError: on non-positive sizes.
    """
    if n_users <= 0 or edges_per_user <= 0:
        raise ValueError("n_users and edges_per_user must be positive")
    rng = np.random.default_rng(seed)
    m = min(edges_per_user, max(1, n_users - 1))

    edges: List[Tuple[int, int]] = []
    # Repeated-nodes list: sampling uniformly from it is degree-proportional.
    attachment: List[int] = list(range(min(m + 1, n_users)))
    for new in range(m + 1, n_users):
        targets: set = set()
        while len(targets) < m:
            targets.add(attachment[rng.integers(len(attachment))])
        for t in targets:
            edges.append((new, int(t)))
            attachment.append(int(t))
            attachment.append(new)
    # Fully connect the tiny seed clique so small graphs are not edgeless.
    for i in range(min(m + 1, n_users)):
        for j in range(i + 1, min(m + 1, n_users)):
            edges.append((i, j))
    return edges


def directed_friendships(
    undirected: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Expand unordered friendships into both directed arcs."""
    directed: List[Tuple[int, int]] = []
    for u, v in undirected:
        directed.append((u, v))
        directed.append((v, u))
    return directed


def local_checkins(
    pois: Sequence[Point],
    n_users: int,
    mean_checkins: float = 8.0,
    home_radius_frac: float = 0.05,
    homes: "Sequence[Point] | None" = None,
    seed: int = 0,
) -> List[Tuple[int, int]]:
    """Generate geographically local, heavy-tailed check-ins.

    Each user has a home and checks in at POIs within a radius of it;
    per-user check-in counts are approximately log-normal (few hyperactive
    users, many casual ones), mirroring LBSN activity.

    Args:
        pois: POI locations.
        n_users: number of users.
        mean_checkins: mean check-ins per user.
        home_radius_frac: check-in radius as a fraction of the space's
            larger side.
        homes: per-user home locations.  Defaults to a random POI per user
            (home density then follows POI density).  The influence analogs
            pass explicit homes so that where users live — in particular,
            where the well-connected users live — is decoupled from where
            POIs crowd together.
        seed: RNG seed.

    Returns:
        ``(user, poi)`` visit pairs (with repeats).

    Raises:
        ValueError: on empty POIs, a home-count mismatch, or non-positive
            parameters.
    """
    if not pois:
        raise ValueError("need at least one POI")
    if n_users <= 0 or mean_checkins <= 0 or home_radius_frac <= 0:
        raise ValueError("parameters must be positive")
    if homes is not None and len(homes) != n_users:
        raise ValueError(f"expected {n_users} homes, got {len(homes)}")
    rng = np.random.default_rng(seed)

    xs = [p.x for p in pois]
    ys = [p.y for p in pois]
    extent = max(max(xs) - min(xs), max(ys) - min(ys)) or 1.0
    radius = home_radius_frac * extent
    grid = GridIndex(pois, cell_size=radius)

    # Log-normal with the requested mean: mean = exp(mu + sigma^2/2).
    sigma = 1.0
    mu = np.log(mean_checkins) - sigma * sigma / 2.0
    counts = np.maximum(1, rng.lognormal(mu, sigma, size=n_users).astype(int))

    visits: List[Tuple[int, int]] = []
    for user in range(n_users):
        if homes is None:
            home = pois[int(rng.integers(len(pois)))]
        else:
            home = homes[user]
        nearby = grid.query_center(home, width=2 * radius, height=2 * radius)
        if not nearby:
            nearby = [int(rng.integers(len(pois)))]
        for _ in range(int(counts[user])):
            visits.append((user, int(nearby[rng.integers(len(nearby))])))
    return visits
