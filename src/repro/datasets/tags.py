"""Synthetic tag (category) assignment for the diversity application.

Two regimes matter to the paper's evaluation:

* **Yelp-like**: a large Zipf-skewed vocabulary with few tags per POI —
  diversity grows steadily as a region widens, and slab upper bounds are
  informative.
* **Meetup-like**: venues share many common tags ("two venues in Meetup
  share many common tags", Section 6.3) — slab upper bounds go loose and
  SliceBRS must process many more slabs, which Table 5 demonstrates.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def zipf_tag_sets(
    n_objects: int,
    n_categories: int,
    mean_tags: float,
    exponent: float = 1.0,
    seed: int = 0,
) -> List[FrozenSet[int]]:
    """Assign each object a Zipf-distributed set of category ids.

    Args:
        n_objects: number of objects.
        n_categories: vocabulary size (e.g. 388, the Foursquare category
            count the paper's scalability study uses).
        mean_tags: mean number of distinct tags per object (Poisson, with a
            minimum of one so no object is tagless).
        exponent: Zipf exponent; larger = more skew toward popular tags.
        seed: RNG seed.

    Raises:
        ValueError: on non-positive sizes or mean.
    """
    if n_objects <= 0 or n_categories <= 0 or mean_tags <= 0:
        raise ValueError("sizes and mean_tags must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_categories + 1, dtype=float)
    probs = ranks ** (-exponent)
    probs /= probs.sum()

    sizes = np.maximum(1, rng.poisson(mean_tags, size=n_objects))
    tag_sets: List[FrozenSet[int]] = []
    for size in sizes:
        draw = rng.choice(n_categories, size=min(int(size), n_categories),
                          replace=False, p=probs)
        tag_sets.append(frozenset(int(t) for t in draw))
    return tag_sets


def shared_tag_sets(
    n_objects: int,
    n_common: int = 12,
    n_rare: int = 4000,
    common_per_object: float = 10.0,
    rare_per_object: float = 4.0,
    seed: int = 0,
) -> List[FrozenSet[int]]:
    """Assign heavily-overlapping tag sets (the Meetup regime).

    Every object draws most of its tags from a tiny *common* pool — so any
    two objects share many tags and coverage saturates quickly — plus a few
    from a larger *rare* pool that still rewards genuinely diverse regions.

    Args:
        n_objects: number of objects.
        n_common: size of the common pool (ids ``0..n_common-1``).
        n_rare: size of the rare pool (ids ``n_common..``).
        common_per_object: mean common tags per object.
        rare_per_object: mean rare tags per object.
        seed: RNG seed.

    Raises:
        ValueError: on non-positive pool sizes or means.
    """
    if n_objects <= 0 or n_common <= 0 or n_rare <= 0:
        raise ValueError("sizes must be positive")
    if common_per_object <= 0 or rare_per_object < 0:
        raise ValueError("per-object means must be positive")
    rng = np.random.default_rng(seed)
    tag_sets: List[FrozenSet[int]] = []
    for _ in range(n_objects):
        n_c = min(n_common, max(1, int(rng.poisson(common_per_object))))
        n_r = min(n_rare, int(rng.poisson(rare_per_object)))
        common = rng.choice(n_common, size=n_c, replace=False)
        tags = {int(t) for t in common}
        if n_r:
            rare = rng.choice(n_rare, size=n_r, replace=False)
            tags |= {n_common + int(t) for t in rare}
        tag_sets.append(frozenset(tags))
    return tag_sets


def localized_tag_sets(
    points: Sequence[Point],
    space: Rect,
    n_categories: int = 300,
    mean_tags: float = 4.0,
    pool_size: int = 10,
    cell_frac: float = 0.08,
    monoculture: float = 0.8,
    seed: int = 0,
) -> List[FrozenSet[int]]:
    """Assign spatially-correlated tags (the Yelp regime, Figure 1's point).

    Real POI tags are spatially autocorrelated — a food street is a tag
    monoculture.  Each coarse grid cell gets its own small *pool* of
    categories, and an object draws each tag from its cell's pool with
    probability ``monoculture`` (otherwise from the global vocabulary).
    Dense areas therefore repeat the same few tags, so the region with the
    most objects is generally *not* the most diverse one — the separation
    between MaxRS and BRS that motivates the paper.

    Args:
        points: object locations (tags correlate with them).
        space: the dataset space the grid is laid over.
        n_categories: global vocabulary size.
        mean_tags: mean tags per object (Poisson, minimum one).
        pool_size: categories per cell pool.
        cell_frac: cell edge as a fraction of the space's smaller side.
        monoculture: probability a tag comes from the local pool.
        seed: RNG seed.

    Raises:
        ValueError: on empty points or parameters out of range.
    """
    if not points:
        raise ValueError("need at least one point")
    if not 0.0 <= monoculture <= 1.0:
        raise ValueError("monoculture must be in [0, 1]")
    if n_categories <= 0 or pool_size <= 0 or mean_tags <= 0 or cell_frac <= 0:
        raise ValueError("sizes, mean_tags and cell_frac must be positive")
    rng = np.random.default_rng(seed)
    cell = cell_frac * min(space.width, space.height)

    pools: dict = {}

    def pool_of(p: Point) -> np.ndarray:
        key = (math.floor(p.x / cell), math.floor(p.y / cell))
        if key not in pools:
            pool_rng = np.random.default_rng(
                (seed, key[0] & 0xFFFF, key[1] & 0xFFFF)
            )
            pools[key] = pool_rng.choice(
                n_categories, size=min(pool_size, n_categories), replace=False
            )
        return pools[key]

    tag_sets: List[FrozenSet[int]] = []
    for p in points:
        pool = pool_of(p)
        size = max(1, int(rng.poisson(mean_tags)))
        tags = set()
        for _ in range(size):
            if rng.random() < monoculture:
                tags.add(int(pool[rng.integers(len(pool))]))
            else:
                tags.add(int(rng.integers(n_categories)))
        tag_sets.append(frozenset(tags))
    return tag_sets
