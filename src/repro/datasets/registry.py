"""Named dataset analogs of the paper's four evaluation datasets.

The paper evaluates on Brightkite, Gowalla (Application 1: influence) and
Yelp, Meetup (Application 2: diversity).  Those crawls are not
redistributable, so this registry builds deterministic synthetic analogs
that preserve the properties the evaluation depends on — clustered
geography, heavy-tailed user activity, tag-skew regimes — at laptop-scale
cardinalities.  See DESIGN.md ("Substitutions") for the full rationale.

Query-rectangle sizing follows Section 6.1: the unit query ``q`` has area
``Width * Height / |O|`` (one object per unit query on average), and a
``k*q`` query scales that area by ``k``, keeping the space's aspect ratio
unless overridden.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.columnar.dataset import ColumnarDataset
from repro.datasets.social import (
    directed_friendships,
    local_checkins,
    preferential_attachment_edges,
)
from repro.datasets.synthetic import (
    gaussian_mixture_dataset,
    gaussian_mixture_points,
    uniform_dataset,
)
from repro.datasets.tags import shared_tag_sets, zipf_tag_sets
from repro.functions.coverage import CoverageFunction
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.quadtree import Quadtree
from repro.influence.checkins import CheckinTable
from repro.influence.graph import SocialGraph
from repro.influence.ris import InfluenceFunction, RISEstimator, generate_rr_sets


def query_size(
    space: Rect, n_objects: int, k: float, aspect: Optional[float] = None
) -> Tuple[float, float]:
    """Return the ``(a, b)`` of a ``k*q`` query rectangle (Section 6.1).

    Args:
        space: the dataset's space.
        n_objects: |O|, used to size the unit query.
        k: query scale factor (the paper sweeps 1, 5, 10, 15, 20).
        aspect: height/width ratio ``a/b``; defaults to the space's own
            ratio.  Figure 19 sweeps this.

    Raises:
        ValueError: on non-positive inputs.
    """
    if n_objects <= 0 or k <= 0:
        raise ValueError("n_objects and k must be positive")
    if aspect is None:
        aspect = space.height / space.width
    if aspect <= 0:
        raise ValueError("aspect must be positive")
    area = k * space.area / n_objects
    b = math.sqrt(area / aspect)
    return aspect * b, b


@dataclass
class DiversityDataset:
    """A diversity-application dataset: POIs with tag sets."""

    name: str
    points: List[Point]
    tag_sets: List[FrozenSet[int]]
    space: Rect
    _quadtree: Optional["Quadtree"] = field(default=None, repr=False)
    _columns: Optional[ColumnarDataset] = field(default=None, repr=False)

    def score_function(self) -> CoverageFunction:
        """The distinct-tag diversity function over these POIs."""
        return CoverageFunction(self.tag_sets)

    def quadtree(self) -> "Quadtree":
        """The dataset's quadtree index (built once, reused across queries,
        as in the paper's exploratory-search setting)."""
        if self._quadtree is None:
            self._quadtree = Quadtree(self.points, space=self.space)
        return self._quadtree

    def columns(self) -> ColumnarDataset:
        """The coordinate columns (built lazily, cached; see the facade
        contract in ``docs/columnar.md``).  Builders seeded from the
        array-native generators pre-populate this, sharing the arrays."""
        if self._columns is None:
            self._columns = ColumnarDataset.from_points(self.points)
        return self._columns

    def query(self, k: float, aspect: Optional[float] = None) -> Tuple[float, float]:
        """``(a, b)`` for a ``k*q`` query on this dataset."""
        return query_size(self.space, len(self.points), k, aspect)


@dataclass
class InfluenceDataset:
    """An influence-application dataset: POIs, check-ins, social graph."""

    name: str
    points: List[Point]
    checkins: CheckinTable
    graph: SocialGraph
    space: Rect
    _fn_cache: Dict[Tuple[int, int], InfluenceFunction] = field(
        default_factory=dict, repr=False
    )
    _quadtree: Optional["Quadtree"] = field(default=None, repr=False)
    _columns: Optional[ColumnarDataset] = field(default=None, repr=False)

    def quadtree(self) -> "Quadtree":
        """The dataset's quadtree index (built once, reused across queries)."""
        if self._quadtree is None:
            self._quadtree = Quadtree(self.points, space=self.space)
        return self._quadtree

    def columns(self) -> ColumnarDataset:
        """The coordinate columns (built lazily, cached)."""
        if self._columns is None:
            self._columns = ColumnarDataset.from_points(self.points)
        return self._columns

    def score_function(self, n_rr_sets: int = 2000, seed: int = 0) -> InfluenceFunction:
        """The RIS-backed influence function (cached per sample size/seed)."""
        key = (n_rr_sets, seed)
        if key not in self._fn_cache:
            import random

            rr = generate_rr_sets(self.graph, n_rr_sets, random.Random(seed))
            estimator = RISEstimator(self.graph.n_users, rr)
            self._fn_cache[key] = InfluenceFunction(self.checkins, estimator)
        return self._fn_cache[key]

    def query(self, k: float, aspect: Optional[float] = None) -> Tuple[float, float]:
        """``(a, b)`` for a ``k*q`` query on this dataset."""
        return query_size(self.space, len(self.points), k, aspect)


#: Common synthetic space; absolute units are arbitrary.
_SPACE = Rect(0.0, 10_000.0, 0.0, 10_000.0)


def yelp_like(n_objects: int = 3000, seed: int = 11) -> DiversityDataset:
    """Yelp analog: density and diversity anti-correlate.

    POIs form one super-dense, tag-poor "downtown" (restaurant rows repeat
    the same handful of categories), several medium-density districts with
    rich local vocabularies, and a uniform rural remainder with Zipf tags.
    The most crowded region is therefore *not* the most diverse one — the
    Figure 1 phenomenon that separates BRS from MaxRS — while the clearly
    dominant best score keeps slab upper bounds effective (Table 5 shows
    Yelp prunes well).
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    n_dense = int(0.4 * n_objects)
    n_district = int(0.12 * n_objects)
    n_districts = 3
    n_rural = n_objects - n_dense - n_districts * n_district

    centers = rng.uniform(1500, 8500, size=(1 + n_districts, 2))
    pts: List[Point] = []
    tag_sets: List[FrozenSet[int]] = []

    def _emit(n: int, cx: float, cy: float, std: float, vocab: Sequence[int],
              mean_tags: float) -> None:
        xs = np.clip(rng.normal(cx, std, n), 1.0, 9999.0)
        ys = np.clip(rng.normal(cy, std, n), 1.0, 9999.0)
        for x, y in zip(xs, ys):
            pts.append(Point(float(x), float(y)))
            n_tags = max(1, int(rng.poisson(mean_tags)))
            draw = rng.choice(len(vocab), size=min(n_tags, len(vocab)), replace=False)
            tag_sets.append(frozenset(int(vocab[i]) for i in draw))

    # Downtown: 15 categories only, tiny footprint, huge object count.
    _emit(n_dense, centers[0][0], centers[0][1], 120.0, list(range(15)), 4.0)
    # Districts: 90 categories each, disjoint vocabularies.
    for d in range(n_districts):
        vocab = list(range(15 + 90 * d, 15 + 90 * (d + 1)))
        _emit(n_district, centers[1 + d][0], centers[1 + d][1], 260.0, vocab, 4.0)
    # Rural remainder: global Zipf vocabulary.
    rural_pts = gaussian_mixture_points(
        n_rural, _SPACE, n_clusters=1, uniform_frac=1.0, seed=seed + 2
    )
    rural_tags = zipf_tag_sets(
        n_rural, n_categories=15 + 90 * n_districts, mean_tags=3.0, seed=seed + 3
    )
    pts.extend(rural_pts)
    tag_sets.extend(rural_tags)

    order = rng.permutation(len(pts))
    points = [pts[i] for i in order]
    tags = [tag_sets[i] for i in order]
    return DiversityDataset("yelp_like", points, tags, _SPACE)


def meetup_like(n_objects: int = 6000, seed: int = 13) -> DiversityDataset:
    """Meetup analog: venues sharing many common tags (loose slab bounds).

    Venue locations are near-uniform and every venue draws most tags from a
    tiny common pool, so region scores sit on a plateau: many slab upper
    bounds stay at or above the best score and SliceBRS must process far
    more slabs than on the other datasets — the Section 6.3 observation
    about Meetup.
    """
    cds = uniform_dataset(n_objects, _SPACE, seed=seed)
    tags = shared_tag_sets(n_objects, seed=seed + 1)
    return DiversityDataset("meetup_like", cds.points(), tags, _SPACE, _columns=cds)


def _influence_analog(
    name: str, n_objects: int, n_users: int, mean_checkins: float, seed: int
) -> InfluenceDataset:
    """Build an LBSN analog where crowded is not the same as influential.

    POIs include a dense downtown; friendships are preferential-attachment
    (heavy-tailed degrees).  The well-connected *hub* users live around
    several comparable mid-density neighbourhoods away from downtown, so
    (a) the region seeding the widest cascade is generally not the region
    with the most POIs — the gap that makes OE a poor heuristic for
    influence (Figure 10) — and (b) the near-tied neighbourhoods keep many
    slab upper bounds close to the optimum, so the exact algorithm does
    real pruning work (the regime Figures 11 and 16 measure).
    """
    import numpy as np

    cds = gaussian_mixture_dataset(
        n_objects, _SPACE, n_clusters=8, cluster_std_frac=0.03, seed=seed
    )
    points = cds.points()
    friendships = preferential_attachment_edges(n_users, edges_per_user=3, seed=seed + 2)
    degree = [0] * n_users
    for u, v in friendships:
        degree[u] += 1
        degree[v] += 1

    rng = np.random.default_rng(seed + 3)
    n_hub_centers = 6
    hub_centers = [
        Point(float(rng.uniform(1500, 8500)), float(rng.uniform(1500, 8500)))
        for _ in range(n_hub_centers)
    ]
    by_degree = sorted(range(n_users), key=lambda u: degree[u], reverse=True)
    hubs = {u: i % n_hub_centers for i, u in enumerate(by_degree[: max(1, n_users // 5)])}
    homes: List[Point] = []
    for user in range(n_users):
        if user in hubs:
            center = hub_centers[hubs[user]]
            homes.append(
                Point(
                    float(np.clip(rng.normal(center.x, 350.0), 1.0, 9999.0)),
                    float(np.clip(rng.normal(center.y, 350.0), 1.0, 9999.0)),
                )
            )
        else:
            homes.append(
                Point(float(rng.uniform(1.0, 9999.0)), float(rng.uniform(1.0, 9999.0)))
            )

    visits = local_checkins(
        points, n_users, mean_checkins=mean_checkins, homes=homes, seed=seed + 1
    )
    checkins = CheckinTable(n_users, n_objects, visits)
    graph = checkins.build_graph(directed_friendships(friendships))
    return InfluenceDataset(name, points, checkins, graph, _SPACE, _columns=cds)


def brightkite_like(
    n_objects: int = 6000, n_users: int = 1200, seed: int = 17
) -> InfluenceDataset:
    """Brightkite analog (the smaller LBSN of Table 2)."""
    return _influence_analog("brightkite_like", n_objects, n_users, 7.0, seed)


def gowalla_like(
    n_objects: int = 10000, n_users: int = 2200, seed: int = 19
) -> InfluenceDataset:
    """Gowalla analog (the larger LBSN of Table 2)."""
    return _influence_analog("gowalla_like", n_objects, n_users, 6.0, seed)


def meetup_flat_like(n_objects: int = 4000, seed: int = 29) -> DiversityDataset:
    """The paper's Meetup space oddity: 355,839 x 180 — nearly 1-D data.

    Table 3 reports a crawl whose bounding box is ~2000x wider than tall,
    so query rectangles degenerate into ribbons and almost every SIRI
    rectangle overlaps its x-neighbours.  This variant reproduces that
    regime (scaled) to exercise the solvers far from the square-world
    assumptions the other analogs live in.
    """
    space = Rect(0.0, 100_000.0, 0.0, 60.0)
    cds = uniform_dataset(n_objects, space, seed=seed)
    tags = shared_tag_sets(n_objects, seed=seed + 1)
    return DiversityDataset("meetup_flat_like", cds.points(), tags, space, _columns=cds)


def scalability_dataset(n_objects: int, seed: int = 23) -> DiversityDataset:
    """The Section 6.5 construction: Gaussian points, 3 of 388 categories."""
    cds = gaussian_mixture_dataset(n_objects, _SPACE, n_clusters=8, seed=seed)
    tags = zipf_tag_sets(
        n_objects, n_categories=388, mean_tags=3.0, exponent=0.8, seed=seed + 1
    )
    return DiversityDataset(
        f"gaussian_{n_objects}", cds.points(), tags, _SPACE, _columns=cds
    )


#: name -> zero-argument builder with the default scaled-down size.
DATASET_BUILDERS: Dict[str, Callable[[], object]] = {
    "yelp_like": yelp_like,
    "meetup_like": meetup_like,
    "meetup_flat_like": meetup_flat_like,
    "brightkite_like": brightkite_like,
    "gowalla_like": gowalla_like,
}


def load(name: str):
    """Build a registered dataset analog by name.

    Raises:
        KeyError: on an unknown name; the message lists the options.
    """
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_BUILDERS)}"
        ) from None
    return builder()
