"""Synthetic spatial point generators.

Real geo-tagged datasets are heavily clustered (cities, downtown cores), and
that clustering is what the paper's pruning machinery feeds on — uniform
data would make every slice look alike.  The generators here produce both
regimes deterministically from a seed:

* :func:`gaussian_mixture_points` — the default analog for the four paper
  datasets, and the construction the paper itself uses for its scalability
  study ("synthetic datasets under Gaussian distribution", Section 6.5).
* :func:`uniform_points` — the best case of Lemma 10's analysis.

Both generators are array-native: the draws stay NumPy arrays end to end
and land in a :class:`~repro.columnar.dataset.ColumnarDataset` directly
(``*_dataset`` variants); the ``*_points`` variants are thin facades that
materialize the Point objects from the same columns, so object-path and
columnar consumers see byte-identical coordinates for a given seed.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.columnar.dataset import ColumnarDataset
from repro.geometry.point import Point
from repro.geometry.rect import Rect


def uniform_dataset(n: int, space: Rect, seed: int = 0) -> ColumnarDataset:
    """Sample ``n`` uniform points inside ``space``, as columns.

    Raises:
        ValueError: if ``n`` is not positive.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(space.x_min, space.x_max, size=n)
    ys = rng.uniform(space.y_min, space.y_max, size=n)
    return ColumnarDataset(xs, ys)


def uniform_points(n: int, space: Rect, seed: int = 0) -> List[Point]:
    """Sample ``n`` points uniformly at random inside ``space``.

    Raises:
        ValueError: if ``n`` is not positive.
    """
    return uniform_dataset(n, space, seed).points()


def gaussian_mixture_dataset(
    n: int,
    space: Rect,
    n_clusters: int = 8,
    cluster_std_frac: float = 0.04,
    uniform_frac: float = 0.1,
    seed: int = 0,
) -> ColumnarDataset:
    """Sample ``n`` Gaussian-mixture points clipped to ``space``, as columns.

    Args:
        n: number of points.
        space: the target space; samples falling outside are re-drawn by
            clipping to the interior (real check-ins are likewise bounded by
            the crawl region).
        n_clusters: number of mixture components ("cities"); component
            weights are themselves random, so cluster sizes are uneven.
        cluster_std_frac: per-component standard deviation as a fraction of
            the space's smaller side.
        uniform_frac: fraction of points drawn uniformly ("rural" noise).
        seed: RNG seed; identical arguments reproduce identical datasets.

    Raises:
        ValueError: on non-positive ``n`` or ``n_clusters``, or fractions
            outside [0, 1].
    """
    if n <= 0 or n_clusters <= 0:
        raise ValueError("n and n_clusters must be positive")
    if not 0.0 <= uniform_frac <= 1.0:
        raise ValueError("uniform_frac must be in [0, 1]")
    rng = np.random.default_rng(seed)

    centers_x = rng.uniform(space.x_min, space.x_max, size=n_clusters)
    centers_y = rng.uniform(space.y_min, space.y_max, size=n_clusters)
    weights = rng.dirichlet(np.ones(n_clusters))
    std = cluster_std_frac * min(space.width, space.height)

    n_uniform = int(round(uniform_frac * n))
    n_clustered = n - n_uniform

    component = rng.choice(n_clusters, size=n_clustered, p=weights)
    xs = rng.normal(centers_x[component], std)
    ys = rng.normal(centers_y[component], std)
    if n_uniform:
        xs = np.concatenate([xs, rng.uniform(space.x_min, space.x_max, size=n_uniform)])
        ys = np.concatenate([ys, rng.uniform(space.y_min, space.y_max, size=n_uniform)])

    # Clip into the open interior; an epsilon keeps points off the boundary
    # so open-rectangle semantics never exclude a clipped point spuriously.
    eps_x = space.width * 1e-9
    eps_y = space.height * 1e-9
    xs = np.clip(xs, space.x_min + eps_x, space.x_max - eps_x)
    ys = np.clip(ys, space.y_min + eps_y, space.y_max - eps_y)

    order = rng.permutation(n)
    return ColumnarDataset(xs[order], ys[order])


def gaussian_mixture_points(
    n: int,
    space: Rect,
    n_clusters: int = 8,
    cluster_std_frac: float = 0.04,
    uniform_frac: float = 0.1,
    seed: int = 0,
) -> List[Point]:
    """Sample ``n`` points from a Gaussian mixture clipped to ``space``.

    Object-path facade over :func:`gaussian_mixture_dataset` — identical
    draws and argument semantics; see there for details.

    Raises:
        ValueError: on non-positive ``n`` or ``n_clusters``, or fractions
            outside [0, 1].
    """
    return gaussian_mixture_dataset(
        n, space, n_clusters, cluster_std_frac, uniform_frac, seed
    ).points()
