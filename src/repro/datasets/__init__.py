"""Synthetic dataset substrate.

Deterministic generators for spatial points, tags, social graphs and
check-ins, plus a registry of scaled-down analogs of the paper's four
evaluation datasets (see DESIGN.md for the substitution rationale).
"""

from repro.datasets.registry import (
    DATASET_BUILDERS,
    DiversityDataset,
    InfluenceDataset,
    brightkite_like,
    gowalla_like,
    load,
    meetup_flat_like,
    meetup_like,
    query_size,
    scalability_dataset,
    yelp_like,
)
from repro.datasets.social import (
    directed_friendships,
    local_checkins,
    preferential_attachment_edges,
)
from repro.datasets.synthetic import gaussian_mixture_points, uniform_points
from repro.datasets.tags import shared_tag_sets, zipf_tag_sets

__all__ = [
    "DATASET_BUILDERS",
    "DiversityDataset",
    "InfluenceDataset",
    "brightkite_like",
    "directed_friendships",
    "gaussian_mixture_points",
    "gowalla_like",
    "load",
    "local_checkins",
    "meetup_flat_like",
    "meetup_like",
    "preferential_attachment_edges",
    "query_size",
    "scalability_dataset",
    "shared_tag_sets",
    "uniform_points",
    "yelp_like",
    "zipf_tag_sets",
]
