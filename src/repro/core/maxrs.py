"""MaxRS solvers: the OE baseline and the SliceBRS adaptation.

MaxRS — maximize the SUM of weights inside an ``a x b`` rectangle — is the
special case of BRS with a modular score (Section 2).  Two solvers live
here:

* :func:`oe_maxrs` — the *Optimal Enclosure* algorithm of Nandy &
  Bhattacharya [21], the paper's baseline: a bottom-up sweep over SIRI
  rectangle edges driving a lazy range-add/range-max segment tree over
  compressed x-intervals.  O(n log n).
* :func:`slicebrs_maxrs` — the Appendix C.2 adaptation of SliceBRS to SUM:
  slices and maximal slabs are enumerated and pruned exactly as in the
  general algorithm; in each surviving slice, the maximal slabs whose
  upper bound beats the incumbent are *marked*, rectangles not
  intersecting a marked slab are dropped, and a single OE sweep over the
  remainder finds the slice's best point.  The modular structure that
  makes this specialization possible is exactly what does *not* generalize
  to other submodular functions.

Both return identical optima; Table 7 compares their runtimes.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.result import BRSResult
from repro.core.siri import RectRow, build_siri_rows, objects_in_region
from repro.core.stats import SearchStats
from repro.core.sweep import Slab, scan_slabs
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point
from repro.index.segment_tree import MaxAddSegmentTree
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.errors import InvalidQueryError


def _oe_sweep(
    rows: Sequence[RectRow],
    weight_of,
    best_value: float,
) -> Tuple[float, Optional[Point]]:
    """Run the Optimal Enclosure sweep over ``rows``.

    Returns the best stabbing weight strictly above ``best_value`` together
    with a point achieving it, or ``(best_value, None)``.  This is the
    shared kernel of :func:`oe_maxrs` (whole space) and the per-slice step
    of :func:`slicebrs_maxrs`.
    """
    if not rows:
        return best_value, None
    xs = sorted({r[0] for r in rows} | {r[1] for r in rows})
    if len(xs) < 2:
        return best_value, None
    leaf_index = {x: i for i, x in enumerate(xs)}
    tree = MaxAddSegmentTree(len(xs) - 1)

    events: List[Tuple[float, int, int]] = []
    for idx, row in enumerate(rows):
        events.append((row[2], 1, idx))  # bottom edge: insert
        events.append((row[3], 0, idx))  # top edge: remove
    events.sort()

    best_point: Optional[Point] = None
    i = 0
    n = len(events)
    while i < n:
        y = events[i][0]
        had_insert = False
        while i < n and events[i][0] == y:
            _, kind, idx = events[i]
            row = rows[idx]
            w = weight_of(row[4])
            lo = leaf_index[row[0]]
            hi = leaf_index[row[1]] - 1
            tree.add(lo, hi, w if kind == 1 else -w)
            if kind == 1:
                had_insert = True
            i += 1
        # The tree max can only set a new record right after insertions; a
        # record's y is any point strictly between this event and the next.
        if had_insert and i < n:
            value, leaf = tree.max_with_index()
            if value > best_value:
                best_value = value
                best_point = Point(
                    (xs[leaf] + xs[leaf + 1]) / 2.0, (y + events[i][0]) / 2.0
                )
    registry = active_registry()
    if registry.enabled:
        registry.counter(
            "brs_segtree_adds_total", help="segment-tree range additions"
        ).inc(tree.n_adds)
        registry.counter(
            "brs_segtree_max_queries_total", help="segment-tree max queries"
        ).inc(tree.n_max_queries)
    return best_value, best_point


def oe_maxrs(
    points: Sequence[Point],
    a: float,
    b: float,
    weights: Optional[Sequence[float]] = None,
) -> BRSResult:
    """Solve MaxRS exactly with the Optimal Enclosure sweep.

    Args:
        points: object locations.
        a: query-rectangle height.
        b: query-rectangle width.
        weights: non-negative per-object weights; all ones when omitted.

    Raises:
        ValueError: on an empty instance, non-positive rectangle, or
            negative weight.
    """
    fn = SumFunction(len(points), weights)
    rows = build_siri_rows(points, a, b)
    with active_tracer().span("maxrs.oe_sweep", n_objects=len(points)):
        best_value, best_point = _oe_sweep(rows, fn.weight_of, 0.0)
    if best_point is None:
        # Degenerate (single x coordinate) or all-zero weights: any object
        # location is optimal.
        best_point = points[0]
        best_value = fn.value(objects_in_region(points, best_point, a, b))
    ids = objects_in_region(points, best_point, a, b)
    return BRSResult(best_point, best_value, ids, a, b, SearchStats(len(points)))


def slicebrs_maxrs(
    points: Sequence[Point],
    a: float,
    b: float,
    weights: Optional[Sequence[float]] = None,
    theta: float = 1.0,
) -> BRSResult:
    """Solve MaxRS with the SUM-specialized SliceBRS (Appendix C.2).

    Slices carry sum upper bounds and are processed best-first.  Inside a
    processed slice, maximal slabs with bounds above the incumbent are
    marked, rectangles intersecting no marked slab are dropped, and one OE
    sweep over the survivors finds the slice's best point.  Whole slices —
    and within them whole rectangle populations — are thereby skipped,
    which is where the speedup over plain OE comes from.

    Raises:
        ValueError: on an empty instance, non-positive rectangle, negative
            weight, or non-positive ``theta``.
    """
    if theta <= 0:
        raise InvalidQueryError("theta must be positive")
    fn = SumFunction(len(points), weights)
    rows = build_siri_rows(points, a, b)
    evaluator = fn.evaluator()
    stats = SearchStats(n_objects=len(points))

    # The same slicing rule as SliceBRS: width theta * b, rows clipped in x.
    x_lo = min(r[0] for r in rows)
    x_hi = max(r[1] for r in rows)
    width = theta * b
    n_slices = max(1, math.ceil((x_hi - x_lo) / width))
    buckets: Dict[int, List[RectRow]] = {}
    for row in rows:
        first = max(0, min(int((row[0] - x_lo) // width), n_slices - 1))
        last = max(0, min(int((row[1] - x_lo) // width), n_slices - 1))
        for idx in range(first, last + 1):
            s_lo = x_lo + idx * width
            clipped = (
                max(row[0], s_lo),
                min(row[1], s_lo + width),
                row[2],
                row[3],
                row[4],
            )
            if clipped[0] < clipped[1]:
                buckets.setdefault(idx, []).append(clipped)
    slices = [buckets[k] for k in sorted(buckets)]
    stats.n_slices = len(slices)

    heap: List[Tuple[float, int, List[RectRow]]] = []
    for seq, slice_rows in enumerate(slices):
        upper = sum(fn.weight_of(obj) for obj in {r[4] for r in slice_rows})
        heap.append((-upper, seq, slice_rows))
    heapq.heapify(heap)

    best_value = 0.0
    best_point: Optional[Point] = None
    while heap:
        neg_upper, _, slice_rows = heapq.heappop(heap)
        if -neg_upper <= best_value:
            break
        stats.n_slices_scanned += 1
        slabs = scan_slabs(slice_rows, evaluator, stats)
        marked: List[Slab] = [s for s in slabs if s[2] > best_value]
        stats.n_slabs_searched += len(marked)
        if not marked:
            continue
        surviving = [
            row
            for row in slice_rows
            if any(row[2] < s_hi and s_lo < row[3] for (s_lo, s_hi, _) in marked)
        ]
        stats.n_candidates += 1
        value, candidate = _oe_sweep(surviving, fn.weight_of, best_value)
        if candidate is not None:
            best_value = value
            best_point = candidate

    if best_point is None:
        best_point = points[0]
        best_value = fn.value(objects_in_region(points, best_point, a, b))
    ids = objects_in_region(points, best_point, a, b)
    return BRSResult(best_point, best_value, ids, a, b, stats)


def sampled_maxrs(
    points: Sequence[Point],
    a: float,
    b: float,
    epsilon: float = 0.2,
    delta: float = 0.05,
    weights: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> BRSResult:
    """Approximate MaxRS by exact search over a uniform sample.

    The sampling route of Tao et al. [22]: draw a uniform sample, solve
    MaxRS exactly on it, and return that location.  A sample of size
    O(epsilon^-2 (log n + log 1/delta)) is an epsilon-sample for axis-
    aligned rectangles (their VC dimension is constant), so with
    probability 1 - delta every rectangle's sampled fraction is within
    epsilon of its true fraction and the returned location's true weight
    is within an epsilon fraction of the optimum.  The reported score is
    re-evaluated on the *full* object set.

    Unweighted only in spirit — per-object weights are supported by
    sampling objects uniformly and re-weighting, which preserves the
    expectation but weakens the tail bound when weights are wildly skewed.

    Args:
        points: object locations.
        a: query-rectangle height.
        b: query-rectangle width.
        epsilon: additive sampling error as a fraction of n (smaller =
            bigger sample = closer to exact).
        delta: failure probability of the epsilon-sample guarantee.
        weights: optional non-negative weights.
        seed: sampling seed (deterministic).

    Raises:
        ValueError: on an empty instance, non-positive rectangle, or
            parameters outside (0, 1).
    """
    if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
        raise InvalidQueryError("epsilon and delta must lie in (0, 1)")
    fn = SumFunction(len(points), weights)
    n = len(points)
    if n == 0:
        raise InvalidQueryError("BRS requires at least one spatial object")

    sample_size = min(
        n, max(1, math.ceil((2.0 / epsilon**2) * (math.log(max(n, 2)) + math.log(1.0 / delta))))
    )
    if sample_size >= n:
        result = oe_maxrs(points, a, b, weights)
        return result

    import random as _random

    rng = _random.Random(seed)
    sample_ids = rng.sample(range(n), sample_size)
    sample_points = [points[i] for i in sample_ids]
    sample_weights = [fn.weight_of(i) for i in sample_ids]
    sampled = oe_maxrs(sample_points, a, b, sample_weights)

    ids = objects_in_region(points, sampled.point, a, b)
    return BRSResult(
        point=sampled.point,
        score=fn.value(ids),
        object_ids=ids,
        a=a,
        b=b,
        stats=SearchStats(n_objects=sample_size),
    )
