"""Coarse grid scan — the last rung of the graceful-degradation ladder.

When neither SliceBRS nor CoverBRS can finish inside the budget, this
solver guarantees *some* useful answer in near-linear time: snap objects to
a ``b x a`` grid, order the occupied cells by population (a free density
proxy), and score the region centered on each cell until the budget runs
out.  Every answer it returns is a real region with its true score — only
optimality is surrendered, and the reported ``upper_bound`` (``f`` of all
objects, sound by monotonicity) says by at most how much.

The population ordering matters: under a tight budget only a handful of
cells get scored, and dense cells are where high-scoring regions live for
every monotone f.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.result import BRSResult
from repro.core.siri import build_siri_rows, objects_in_region
from repro.core.stats import SearchStats
from repro.functions.base import SetFunction
from repro.geometry.point import Point
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget, effective_budget
from repro.runtime.errors import BudgetExceededError


def coarse_grid_scan(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    budget: Optional[Budget] = None,
    initial_best: float = 0.0,
) -> BRSResult:
    """Best region among grid-cell centers; anytime and near-linear.

    Args:
        points: object locations.
        f: monotone aggregate score over object ids (submodularity is not
            needed here — no bounds are derived from it).
        a: query-rectangle height.
        b: query-rectangle width.
        budget: optional execution budget (falls back to the ambient
            scope); one evaluation is charged per cell scored.
        initial_best: known-achievable score to beat (the ladder passes the
            best answer of earlier stages).

    Returns:
        A ``BRSResult`` with ``status="degraded"`` when every occupied cell
        was scored, ``"timeout"`` when the budget cut the scan short; in
        both cases ``upper_bound`` is ``f`` of all objects.

    Raises:
        InvalidQueryError: on an empty instance or a bad rectangle.
    """
    build_siri_rows(points, a, b)  # input validation only
    budget = effective_budget(budget)
    tracer = active_tracer()
    registry = active_registry()
    start_time = time.perf_counter()

    x0 = min(p.x for p in points)
    y0 = min(p.y for p in points)
    cells: Counter = Counter()
    members: Dict[Tuple[int, int], List[int]] = {}
    for obj_id, p in enumerate(points):
        key = (int((p.x - x0) // b), int((p.y - y0) // a))
        cells[key] += 1
        members.setdefault(key, []).append(obj_id)

    # Occupied cells play the role slices play for SliceBRS: binning every
    # object is the "push" work, scoring a cell is one candidate.
    stats = SearchStats(
        n_objects=len(points), n_slices=len(cells), n_pushes=len(points)
    )
    best_value = max(0.0, initial_best)
    best_point: Optional[Point] = None
    status = "degraded"
    with tracer.span("gridscan.solve", n_objects=len(points), n_cells=len(cells)):
        try:
            for (cx, cy), _count in cells.most_common():
                if budget is not None:
                    budget.charge()
                center = Point(x0 + (cx + 0.5) * b, y0 + (cy + 0.5) * a)
                stats.n_candidates += 1
                stats.n_slices_scanned += 1
                value = f.value(members[(cx, cy)])
                if value > best_value:
                    best_value = value
                    best_point = center
        except BudgetExceededError:
            status = "timeout"

    if best_point is None:
        best_point = points[0]
        best_value = f.value(objects_in_region(points, best_point, a, b))

    stats.publish(registry, "gridscan")
    if registry.enabled:
        registry.histogram(
            "brs_gridscan_solve_seconds", help="grid-scan solve wall time"
        ).observe(time.perf_counter() - start_time)

    object_ids = objects_in_region(points, best_point, a, b)
    return BRSResult(
        point=best_point,
        score=f.value(object_ids),
        object_ids=object_ids,
        a=a,
        b=b,
        stats=stats,
        status=status,
        upper_bound=max(best_value, f.value(range(len(points)))),
    )
