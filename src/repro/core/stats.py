"""Search-effort counters for the BRS algorithms.

The paper's Section 6.3 quantifies how much work each pruning idea saves via
four counters: the number of maximal slabs found (#MS), maximal slabs
actually searched by SearchMR (#MSP), candidate disjoint regions actually
evaluated (#DRP), and maximal regions (#MR).  The solvers fill a
:class:`SearchStats` as they run so the benchmarks can report the same
columns as Tables 4–6.

:class:`SearchStats` is the *per-run compatibility view*; the canonical
process-wide accounting lives in the :mod:`repro.obs` metrics registry.
Each solver publishes its finished per-run stats into the ambient registry
via :meth:`SearchStats.publish` (a no-op when observability is disabled),
so one set of counter definitions serves result objects, Prometheus
exposition, and benchmark JSON alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Counters accumulated during one solver run.

    Attributes:
        n_objects: number of spatial objects in the instance the search ran
            on (for CoverBRS this is the c-cover size |T|).
        n_slices: slices the space was cut into (non-empty ones).
        n_slices_scanned: slices whose maximal slabs were actually computed
            (the rest were pruned by their upper bound).
        n_slabs: maximal slabs discovered across scanned slices (#MS).
        n_slabs_searched: maximal slabs processed by SearchMR (#MSP).
        n_candidates: candidate regions whose score was evaluated (#DRP).
        n_pushes: rectangle insertions performed by the sweeps (a proxy for
            total sweep work, used by the ablation benchmarks).
    """

    n_objects: int = 0
    n_slices: int = 0
    n_slices_scanned: int = 0
    n_slabs: int = 0
    n_slabs_searched: int = 0
    n_candidates: int = 0
    n_pushes: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another run's counters into this one."""
        self.n_objects = max(self.n_objects, other.n_objects)
        self.n_slices += other.n_slices
        self.n_slices_scanned += other.n_slices_scanned
        self.n_slabs += other.n_slabs
        self.n_slabs_searched += other.n_slabs_searched
        self.n_candidates += other.n_candidates
        self.n_pushes += other.n_pushes

    def publish(self, registry, solver: str) -> None:
        """Fold this run's counters into a metrics registry.

        One batched call at the end of a solve, so the disabled path costs
        a single ``enabled`` check.  Counter names are the canonical ones
        documented in ``docs/observability.md``; ``solver`` additionally
        bumps a per-solver solve counter (``<solver>_solves_total``).
        """
        if not registry.enabled:
            return
        registry.counter(
            f"brs_{solver}_solves_total", help=f"completed {solver} solves"
        ).inc()
        registry.counter("brs_slices_total", help="slices cut (non-empty)").inc(
            self.n_slices
        )
        registry.counter(
            "brs_slices_scanned_total", help="slices whose slabs were computed"
        ).inc(self.n_slices_scanned)
        registry.counter(
            "brs_slabs_total", help="maximal slabs discovered (#MS)"
        ).inc(self.n_slabs)
        registry.counter(
            "brs_slabs_searched_total", help="maximal slabs searched (#MSP)"
        ).inc(self.n_slabs_searched)
        registry.counter(
            "brs_candidates_total", help="candidate regions evaluated (#DRP)"
        ).inc(self.n_candidates)
        registry.counter(
            "brs_sweep_pushes_total", help="rectangle insertions by the sweeps"
        ).inc(self.n_pushes)


@dataclass
class CoverStats:
    """Extra counters reported by CoverBRS (Table 6).

    Attributes:
        n_original: |O|, objects in the original instance.
        n_cover: |T|, representatives in the c-cover.
        level: quadtree truncation depth used by the selection.
        inner: the :class:`SearchStats` of the SliceBRS run on the reduced
            instance.
    """

    n_original: int = 0
    n_cover: int = 0
    level: int = 0
    inner: SearchStats = field(default_factory=SearchStats)
