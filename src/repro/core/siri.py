"""The SIRI reduction (Section 4.1).

The BRS problem over objects is reduced to the *submodular weighted rectangle
intersection* problem over rectangles: each object ``o`` becomes the ``a x b``
rectangle centered at ``o``, and by Lemma 1 / Theorem 1 a point maximizing
``h`` over affected rectangles is a BRS answer.

The sweep-line code keeps rectangles as flat tuples
``(x_min, x_max, y_min, y_max, obj_id)`` rather than :class:`Rect` objects —
they are created in bulk (one per object per intersected slice) and only ever
read field-wise, so plain tuples are both faster and lighter.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.geometry.point import Point
from repro.runtime.errors import InvalidQueryError

#: (x_min, x_max, y_min, y_max, obj_id)
RectRow = Tuple[float, float, float, float, int]


def build_siri_rows(points: Sequence[Point], a: float, b: float) -> List[RectRow]:
    """Return one SIRI rectangle row per object.

    Args:
        points: object locations; ids are positions in this sequence.
        a: query-rectangle height.
        b: query-rectangle width.

    Raises:
        InvalidQueryError: if the rectangle size is not positive or there
            are no objects (the BRS optimum would be undefined).
    """
    if not (a > 0 and b > 0 and math.isfinite(a) and math.isfinite(b)):
        raise InvalidQueryError(
            f"query rectangle must have positive finite size, got {a} x {b}"
        )
    if not points:
        raise InvalidQueryError("BRS requires at least one spatial object")
    for obj_id, p in enumerate(points):
        if not (math.isfinite(p.x) and math.isfinite(p.y)):
            # NaN coordinates would silently corrupt the event sort order;
            # fail loudly instead.
            raise InvalidQueryError(
                f"object {obj_id} has non-finite coordinates {p}"
            )
    half_a = a / 2.0
    half_b = b / 2.0
    return [
        (p.x - half_b, p.x + half_b, p.y - half_a, p.y + half_a, obj_id)
        for obj_id, p in enumerate(points)
    ]


def rows_x_extent(rows: Sequence[RectRow]) -> Tuple[float, float]:
    """Return the min/max x over all rectangle rows."""
    return min(r[0] for r in rows), max(r[1] for r in rows)


def objects_in_region(
    points: Sequence[Point], center: Point, a: float, b: float
) -> List[int]:
    """Return ids of objects strictly inside the ``a x b`` region at ``center``.

    A direct linear scan; callers that issue many such queries should use
    :class:`repro.index.grid.GridIndex` instead.
    """
    half_a = a / 2.0
    half_b = b / 2.0
    cx, cy = center.x, center.y
    return [
        obj_id
        for obj_id, p in enumerate(points)
        if abs(p.x - cx) < half_b and abs(p.y - cy) < half_a
    ]
