"""CoverBRS — the constant-factor approximate BRS algorithm (Section 5).

CoverBRS trades a bounded amount of quality for speed on large or dense
instances:

1. select a c-cover ``T`` of the objects with the O(n) quadtree heuristic;
2. build the reduced instance: function ``f_T`` over the representatives
   (Definition 8) and query rectangle ``(1-c)a x (1-c)b``;
3. solve the reduced instance exactly with SliceBRS;
4. report the found center's score *on the original instance*.

The returned score is within a constant factor of the optimum: 1/4 for
``c = 1/3`` (Theorem 4) and 1/9 for ``c = 1/2`` (Theorem 6); both bounds are
tight (Theorems 5 and 7).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.result import BRSResult
from repro.core.siri import objects_in_region
from repro.core.slicebrs import SliceBRS
from repro.core.stats import CoverStats
from repro.cover.quadtree_cover import select_cover
from repro.functions.base import SetFunction
from repro.functions.reduced import reduce_over_cover
from repro.geometry.point import Point
from repro.index.quadtree import Quadtree
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget, effective_budget
from repro.runtime.errors import InternalInvariantError, InvalidQueryError


#: Known (c -> approximation ratio) pairs proved in the paper.
APPROXIMATION_RATIOS = {1.0 / 3.0: 0.25, 0.5: 1.0 / 9.0}


class CoverBRS:
    """Approximate best-region search over a c-cover.

    Args:
        c: cover parameter in (0, 1).  The paper's *CoverBRS4* is
            ``c = 1/3`` (1/4-approximate) and *CoverBRS9* is ``c = 1/2``
            (1/9-approximate).
        theta: slice-width multiple handed to the inner SliceBRS.
        validate: verify the selected cover's Definition-7 property and the
            inner function contract (slow; for debugging).

    Raises:
        InvalidQueryError: if ``c`` is outside (0, 1).
    """

    def __init__(self, c: float = 1.0 / 3.0, theta: float = 1.0, validate: bool = False) -> None:
        if not 0.0 < c < 1.0:
            raise InvalidQueryError(f"c must be in (0, 1), got {c}")
        self.c = c
        self.theta = theta
        self.validate = validate

    def solve(
        self,
        points: Sequence[Point],
        f: SetFunction,
        a: float,
        b: float,
        quadtree: Optional[Quadtree] = None,
        budget: Optional[Budget] = None,
    ) -> BRSResult:
        """Return an approximately-best ``a x b`` region.

        Args:
            points: object locations.
            f: submodular monotone aggregate score over object ids.
            a: query-rectangle height.
            b: query-rectangle width.
            quadtree: optional pre-built index over ``points`` (reused
                across queries in exploratory search).
            budget: optional execution budget, inherited by the inner
                SliceBRS run over the reduced instance.  On expiry the
                result carries ``status="timeout"`` and a sound
                ``upper_bound`` (``f`` of all objects — the reduced
                instance's own bound does not cap the original optimum).

        Raises:
            InvalidQueryError: on an empty instance or non-positive
                rectangle.
        """
        budget = effective_budget(budget)
        tracer = active_tracer()
        registry = active_registry()
        start_time = time.perf_counter()
        with tracer.span(
            "coverbrs.solve", n_objects=len(points), c=self.c, theta=self.theta
        ):
            with tracer.span("coverbrs.select_cover"):
                cover = select_cover(points, self.c, a, b, quadtree=quadtree)
            if self.validate and not cover.covers(points, a, b):
                raise InternalInvariantError(
                    "quadtree selection violated the c-cover property"
                )
            tracer.event(
                "coverbrs.cover_selected", size=cover.size, level=cover.level
            )

            reduced_f = reduce_over_cover(f, cover.groups)
            inner = SliceBRS(theta=self.theta, validate=self.validate)
            reduced = inner.solve(
                cover.points, reduced_f, (1.0 - self.c) * a, (1.0 - self.c) * b,
                budget=budget,
            )

            # Quality is always measured on the original instance (Section
            # 6.1): the chosen center, scored with the original f over the
            # full a x b rectangle.  By Lemma 11 this can only improve on
            # the reduced score.
            object_ids = objects_in_region(points, reduced.point, a, b)
            score = f.value(object_ids)
        if registry.enabled:
            # The inner SliceBRS run already published the shared search
            # counters; only the cover-specific accounting is added here.
            registry.counter(
                "brs_coverbrs_solves_total", help="completed CoverBRS solves"
            ).inc()
            registry.counter(
                "brs_cover_representatives_total",
                help="c-cover representatives selected (|T|)",
            ).inc(cover.size)
            registry.gauge(
                "brs_cover_last_size", help="|T| of the most recent c-cover"
            ).set(cover.size)
            registry.gauge(
                "brs_cover_last_level",
                help="quadtree truncation depth of the most recent c-cover",
            ).set(cover.level)
            registry.histogram(
                "brs_coverbrs_solve_seconds", help="CoverBRS solve wall time"
            ).observe(time.perf_counter() - start_time)
        upper_bound: Optional[float] = None
        if reduced.status != "ok":
            upper_bound = max(score, f.value(range(len(points))))
        elif self.guarantee is not None:
            # score >= guarantee * OPT (Theorems 4/6), so OPT <= score/ratio.
            upper_bound = score / self.guarantee if score > 0 else None
        return BRSResult(
            point=reduced.point,
            score=score,
            object_ids=object_ids,
            a=a,
            b=b,
            stats=reduced.stats,
            cover_stats=CoverStats(
                n_original=len(points),
                n_cover=cover.size,
                level=cover.level,
                inner=reduced.stats,
            ),
            status=reduced.status,
            upper_bound=upper_bound,
        )

    @property
    def guarantee(self) -> Optional[float]:
        """The proved approximation ratio for this ``c``, if known."""
        for c_known, ratio in APPROXIMATION_RATIOS.items():
            if abs(self.c - c_known) < 1e-12:
                return ratio
        return None
