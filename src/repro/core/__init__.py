"""Core BRS algorithms: the paper's primary contribution.

* :func:`~repro.core.brs.best_region` — one-call solver façade.
* :class:`~repro.core.slicebrs.SliceBRS` — exact algorithm (Section 4).
* :class:`~repro.core.coverbrs.CoverBRS` — constant-factor approximation
  (Section 5).
* :class:`~repro.core.naive.NaiveBRS` — brute-force oracle for testing.
* :func:`~repro.core.maxrs.oe_maxrs` / :func:`~repro.core.maxrs.slicebrs_maxrs`
  — MaxRS baselines (Section 6.1 / Appendix C.2).
* :func:`~repro.core.topk.topk_regions` — top-k extension (future work of
  Section 7).
* :func:`~repro.core.gridscan.coarse_grid_scan` — anytime fallback solver,
  the last rung of the graceful-degradation ladder.
"""

from repro.core.brs import best_region
from repro.core.coverbrs import CoverBRS, APPROXIMATION_RATIOS
from repro.core.gridscan import coarse_grid_scan
from repro.core.maxrs import oe_maxrs, sampled_maxrs, slicebrs_maxrs
from repro.core.naive import NaiveBRS
from repro.core.partitioned import Shard, partitioned_best_region, plan_shards
from repro.core.session import ExplorationSession, QueryRecord
from repro.core.result import BRSResult, RESULT_STATUSES, merge_anytime
from repro.core.slicebrs import SliceBRS
from repro.core.stats import CoverStats, SearchStats
from repro.core.topk import topk_regions

__all__ = [
    "APPROXIMATION_RATIOS",
    "BRSResult",
    "CoverBRS",
    "CoverStats",
    "NaiveBRS",
    "RESULT_STATUSES",
    "SearchStats",
    "Shard",
    "SliceBRS",
    "ExplorationSession",
    "QueryRecord",
    "best_region",
    "coarse_grid_scan",
    "merge_anytime",
    "partitioned_best_region",
    "plan_shards",
    "oe_maxrs",
    "sampled_maxrs",
    "slicebrs_maxrs",
    "topk_regions",
]
