"""Top-k region search (the paper's stated future work, Section 7).

The paper leaves "top-k regions in the context of the BRS problem" as future
work.  We implement the natural greedy semantics: repeatedly solve BRS, then
remove the objects inside the chosen region before the next round.  Each
returned region is optimal for the objects not already claimed by a better
region, the regions never share objects, and for modular ``f`` this is the
classic greedy MaxRS top-k.  (Regions may still geometrically overlap on
empty space; claimed objects, not area, are what scores are made of.)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.result import BRSResult
from repro.core.slicebrs import SliceBRS
from repro.functions.base import SetFunction
from repro.functions.reduced import reduce_over_cover
from repro.geometry.point import Point
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget, effective_budget
from repro.runtime.errors import InvalidQueryError


def topk_regions(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    k: int,
    theta: float = 1.0,
    budget: Optional[Budget] = None,
) -> List[BRSResult]:
    """Return up to ``k`` object-disjoint regions, best first.

    Args:
        points: object locations.
        f: submodular monotone aggregate score over object ids.
        a: query-rectangle height.
        b: query-rectangle width.
        k: number of regions requested; fewer are returned when the objects
            run out.
        theta: slice-width multiple for the inner SliceBRS.
        budget: optional execution budget shared by all ``k`` rounds (falls
            back to the ambient scope).  On expiry the rounds completed so
            far are returned; a round interrupted mid-search contributes
            its anytime result (``status="timeout"``) and ends the list.

    Raises:
        InvalidQueryError: if ``k`` is not positive, or on an invalid
            instance.
    """
    if k <= 0:
        raise InvalidQueryError(f"k must be positive, got {k}")
    budget = effective_budget(budget)
    tracer = active_tracer()
    registry = active_registry()

    solver = SliceBRS(theta=theta)
    remaining = list(range(len(points)))
    results: List[BRSResult] = []
    with tracer.span("topk.solve", n_objects=len(points), k=k):
        for round_no in range(k):
            if not remaining:
                break
            sub_points = [points[i] for i in remaining]
            # Present f with original ids: representative j stands for
            # exactly the original object remaining[j].  reduce_over_cover
            # picks the incremental fast path for coverage/modular f.
            sub_f = reduce_over_cover(f, [[i] for i in remaining])
            with tracer.span(
                "topk.round", round=round_no, n_remaining=len(remaining)
            ) as round_span:
                sub_result = solver.solve(sub_points, sub_f, a, b, budget=budget)
                round_span.annotate(
                    score=sub_result.score, status=sub_result.status
                )

            original_ids = [remaining[j] for j in sub_result.object_ids]
            results.append(
                BRSResult(
                    point=sub_result.point,
                    score=sub_result.score,
                    object_ids=original_ids,
                    a=a,
                    b=b,
                    stats=sub_result.stats,
                    status=sub_result.status,
                    upper_bound=sub_result.upper_bound,
                )
            )
            if sub_result.status != "ok":
                break  # budget expired mid-round; later rounds get nothing
            claimed = set(original_ids)
            remaining = [i for i in remaining if i not in claimed]
            if not claimed:
                break  # only empty regions remain; further rounds repeat
    if registry.enabled:
        registry.counter(
            "brs_topk_rounds_total", help="completed top-k greedy rounds"
        ).inc(len(results))
    return results
