"""Result type shared by all BRS solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.stats import CoverStats, SearchStats
from repro.geometry.point import Point
from repro.geometry.rect import Rect


#: Valid values of :attr:`BRSResult.status`.
RESULT_STATUSES = ("ok", "degraded", "timeout", "error")


@dataclass
class BRSResult:
    """The answer to one best-region-search query.

    Attributes:
        point: center of the best region found.
        score: aggregate score ``f`` of the objects inside the region.  For
            exact solvers this is the optimum; for CoverBRS it is the score
            of the returned region *on the original instance*, which is the
            paper's quality measure.
        object_ids: the objects strictly inside the returned region.
        a: query-rectangle height the query was asked with.
        b: query-rectangle width the query was asked with.
        stats: search-effort counters of the run.
        cover_stats: present only for CoverBRS runs (c-cover bookkeeping).
        status: ``"ok"`` when the requested contract was honored in full;
            ``"degraded"`` when a budget forced a fallback method that still
            ran to completion; ``"timeout"`` when the budget expired and
            this is the best-so-far answer; ``"error"`` is reserved for
            harness rows describing failed runs.
        upper_bound: a sound upper bound on the true optimum, when one is
            known (anytime runs always report one; approximate runs report
            one when a proved ratio exists).  ``None`` from an exact solver
            means the score *is* the optimum; ``None`` elsewhere means no
            bound was computed.
    """

    point: Point
    score: float
    object_ids: List[int]
    a: float
    b: float
    stats: SearchStats = field(default_factory=SearchStats)
    cover_stats: Optional[CoverStats] = None
    status: str = "ok"
    upper_bound: Optional[float] = None

    @property
    def region(self) -> Rect:
        """The returned ``a x b`` region as a rectangle."""
        return Rect.from_center(self.point, width=self.b, height=self.a)

    @property
    def gap(self) -> float:
        """Optimality gap: how far the optimum may exceed this score.

        Zero when the result is proven optimal; otherwise
        ``upper_bound - score`` (floored at zero).  Sound whenever
        :attr:`upper_bound` is — the true optimum is within ``gap`` of
        :attr:`score`.
        """
        if self.upper_bound is None:
            return 0.0
        return max(0.0, self.upper_bound - self.score)


def merge_anytime(
    best: Optional[BRSResult], candidate: BRSResult, status: Optional[str] = None
) -> BRSResult:
    """Fold a later degradation-ladder rung into the running best answer.

    Keeps the higher-scoring region and the *tighter* of the sound upper
    bounds — each rung's bound caps the same global optimum, so their
    minimum does too.

    Args:
        best: the answer accumulated from earlier rungs (None on the first).
        candidate: the latest rung's answer.
        status: override for the merged result's status (e.g. ``"degraded"``
            when a fallback rung completed); defaults to the winner's.
    """
    if best is None:
        winner = candidate
        upper = candidate.upper_bound
    else:
        winner = candidate if candidate.score > best.score else best
        bounds = [
            r.upper_bound for r in (best, candidate) if r.upper_bound is not None
        ]
        upper = min(bounds) if bounds else None
        if upper is not None:
            upper = max(upper, winner.score)
    return BRSResult(
        point=winner.point,
        score=winner.score,
        object_ids=winner.object_ids,
        a=winner.a,
        b=winner.b,
        stats=winner.stats,
        cover_stats=winner.cover_stats,
        status=status if status is not None else winner.status,
        upper_bound=upper,
    )
