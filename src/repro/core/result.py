"""Result type shared by all BRS solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.stats import CoverStats, SearchStats
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass
class BRSResult:
    """The answer to one best-region-search query.

    Attributes:
        point: center of the best region found.
        score: aggregate score ``f`` of the objects inside the region.  For
            exact solvers this is the optimum; for CoverBRS it is the score
            of the returned region *on the original instance*, which is the
            paper's quality measure.
        object_ids: the objects strictly inside the returned region.
        a: query-rectangle height the query was asked with.
        b: query-rectangle width the query was asked with.
        stats: search-effort counters of the run.
        cover_stats: present only for CoverBRS runs (c-cover bookkeeping).
    """

    point: Point
    score: float
    object_ids: List[int]
    a: float
    b: float
    stats: SearchStats = field(default_factory=SearchStats)
    cover_stats: Optional[CoverStats] = None

    @property
    def region(self) -> Rect:
        """The returned ``a x b`` region as a rectangle."""
        return Rect.from_center(self.point, width=self.b, height=self.a)
