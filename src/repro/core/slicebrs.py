"""SliceBRS — the exact BRS algorithm (Section 4).

The solver composes the paper's three ideas:

1. **SIRI reduction** (Section 4.1): objects become ``a x b`` rectangles and
   the search moves from infinitely many points to O(n^2) disjoint regions.
2. **Maximal slabs** (Section 4.4): a bottom-up sweep (*ScanSlab*) finds
   O(n) horizontal slabs, each with a submodularity-derived upper bound
   (Lemma 7); only slabs whose bound beats the best known score are searched
   (*SearchMR*).
3. **Slicing** (Section 4.5): the space is first cut into vertical slices of
   width ``theta * b``; each rectangle lands in at most ``ceil(1/theta) + 1``
   slices (Lemma 8), slices carry their own upper bound, and whole slices
   are pruned without ever scanning them.

Slice and slab processing share one best-first priority queue: an entry is
expanded only when its upper bound still exceeds the best score found, which
realizes both pruning rules of the paper with a single stopping test.

Observability: a solve emits a ``slicebrs.solve`` span enclosing one
``slicebrs.slice`` span per slice scanned and one ``slicebrs.slab`` span
per slab searched (which in turn encloses the ``sweep.search_mr`` span),
plus a ``slicebrs.prune_stop`` event when the best-first loop terminates
on a bound.  Work counters go to the per-run :class:`SearchStats` as ever
and are published into the ambient metrics registry at the end.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.result import BRSResult
from repro.core.siri import RectRow, build_siri_rows, objects_in_region, rows_x_extent
from repro.core.stats import SearchStats
from repro.core.sweep import rows_spanning_slab, scan_slabs, search_slab
from repro.functions.base import SetFunction
from repro.functions.validate import check_submodular_monotone
from repro.geometry.point import Point
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget, effective_budget
from repro.runtime.errors import BudgetExceededError, InvalidQueryError

#: Priority-queue entry kinds.
_SLICE = 0
_SLAB = 1


class SliceBRS:
    """Exact best-region search.

    Args:
        theta: slice width as a multiple of the query width ``b``
            (Section 4.5; the paper's experiments use ``theta = 1``).
        slicing: disable to reproduce the *SliceBRS-NSlice* ablation of
            Figure 14 — the whole space is one slice.
        prune_slices: disable to scan every slice (slabs are still pruned);
            used when the full maximal-slab census (#MS) must be exact, as in
            Table 5.
        strict_pruning: the paper stops "once the upper bound of any
            remaining maximal slab is *smaller* than the best known result",
            so entries whose bound merely ties the best are still processed
            — ties are pervasive on plateau-scoring data (Meetup) and this
            is what its Table 5 numbers reflect.  Set True to also skip
            tied entries; the answer is identical either way (a tied bound
            cannot improve the result), only the work counters change.
        validate: spot-check that ``f`` is submodular monotone before
            solving; costs a few dozen evaluations of ``f``.

    Raises:
        InvalidQueryError: if ``theta`` is not positive or non-finite.
    """

    def __init__(
        self,
        theta: float = 1.0,
        slicing: bool = True,
        prune_slices: bool = True,
        strict_pruning: bool = False,
        validate: bool = False,
    ) -> None:
        if not (theta > 0 and math.isfinite(theta)):
            raise InvalidQueryError(f"theta must be positive and finite, got {theta}")
        self.theta = theta
        self.slicing = slicing
        self.prune_slices = prune_slices
        self.strict_pruning = strict_pruning
        self.validate = validate

    def solve(
        self,
        points: Sequence[Point],
        f: SetFunction,
        a: float,
        b: float,
        initial_best: float = 0.0,
        budget: Optional[Budget] = None,
    ) -> BRSResult:
        """Return the best ``a x b`` region for score function ``f``.

        Args:
            points: object locations; object ids are positions here.
            f: submodular monotone aggregate score function over those ids.
            a: query-rectangle height.
            b: query-rectangle width.
            initial_best: a known-achievable lower bound on the optimum
                (e.g. from a prior CoverBRS pass or another partition);
                pruning starts from it immediately.  When no candidate
                beats it, the fallback answer is returned with its true
                score — callers comparing against the bound should keep
                their incumbent in that case.
            budget: optional cooperative execution budget (falls back to
                the ambient :func:`~repro.runtime.budget.budget_scope`).
                On expiry the search stops and the best-so-far answer is
                returned with ``status="timeout"`` and a sound
                ``upper_bound`` — the largest upper bound of any slice or
                slab not fully searched — instead of raising.

        Raises:
            InvalidQueryError: on an empty instance, a non-positive
                rectangle, or non-finite coordinates.
            ValueError: with ``validate=True``, when ``f`` fails the
                submodular monotone spot-check.
            EvaluationError: when ``f`` raises or produces NaN (after any
                retry wrapper has given up).
        """
        budget = effective_budget(budget)
        tracer = active_tracer()
        registry = active_registry()
        start_time = time.perf_counter()
        evals_before = budget.evals if budget is not None else 0
        with tracer.span(
            "slicebrs.solve",
            n_objects=len(points),
            theta=self.theta,
            slicing=self.slicing,
        ):
            result = self._solve(points, f, a, b, initial_best, budget, tracer)
        result.stats.publish(registry, "slicebrs")
        if registry.enabled:
            registry.histogram(
                "brs_slicebrs_solve_seconds", help="SliceBRS solve wall time"
            ).observe(time.perf_counter() - start_time)
            if budget is not None:
                registry.counter(
                    "brs_budget_evals_total",
                    help="score evaluations charged to budgets",
                ).inc(budget.evals - evals_before)
            if result.status != "ok":
                registry.counter(
                    "brs_timeout_results_total",
                    help="solves that returned a non-ok anytime answer",
                ).inc()
        return result

    def _solve(
        self,
        points: Sequence[Point],
        f: SetFunction,
        a: float,
        b: float,
        initial_best: float,
        budget: Optional[Budget],
        tracer,
    ) -> BRSResult:
        """The search itself, inside the ``slicebrs.solve`` span."""
        rows = build_siri_rows(points, a, b)
        if self.validate:
            sample = list(range(0, len(points), max(1, len(points) // 16)))
            check_submodular_monotone(f, sample)

        stats = SearchStats(n_objects=len(points))
        slices = self._cut_into_slices(rows, b)
        stats.n_slices = len(slices)

        status = "ok"
        #: Sound upper bound on every piece of work not fully searched;
        #: only meaningful when the budget expired.
        remaining_upper = 0.0

        # Upper bound of a slice: f of everything intersecting it (the same
        # submodularity argument as Lemma 7, applied to the whole slice).
        heap: List[Tuple[float, int, int, object]] = []
        seq = 0
        try:
            for slice_rows in slices:
                if budget is not None:
                    budget.charge()
                upper = f.value({row[4] for row in slice_rows})
                heap.append((-upper, seq, _SLICE, slice_rows))
                seq += 1
        except BudgetExceededError:
            # Slices without a computed bound get one collective bound:
            # f of their union (monotonicity makes it sound); bounded
            # slices are still on the heap and are folded in below.
            status = "timeout"
            pending_ids = {
                row[4] for slice_rows in slices[len(heap):] for row in slice_rows
            }
            remaining_upper = f.value(pending_ids) if pending_ids else 0.0
            if heap:
                remaining_upper = max(remaining_upper, max(-h[0] for h in heap))
        heapq.heapify(heap)

        evaluator = f.evaluator()
        best_value = max(0.0, initial_best)
        best_point: Optional[Point] = None

        if status == "ok" and not self.prune_slices:
            # Exhaustive slab census: scan every slice up front, then fall
            # through to best-first slab processing only.
            pending = heap
            heap = []
            try:
                for i, (neg_upper, _, _, slice_rows) in enumerate(pending):
                    stats.n_slices_scanned += 1
                    with tracer.span("slicebrs.slice", upper=-neg_upper):
                        for slab in scan_slabs(
                            slice_rows, evaluator, stats, budget=budget
                        ):
                            heap.append((-slab[2], seq, _SLAB, (slab, slice_rows)))
                            seq += 1
            except BudgetExceededError:
                # Unscanned slices (including the interrupted one) are
                # covered by their slice bounds; scanned slabs on the heap
                # are covered by their own bounds.
                status = "timeout"
                remaining_upper = max(
                    (-entry[0] for entry in pending[i:]), default=0.0
                )
                if heap:
                    remaining_upper = max(
                        remaining_upper, max(-h[0] for h in heap)
                    )
            heapq.heapify(heap)

        neg_upper = 0.0
        try:
            while status == "ok" and heap:
                neg_upper, _, kind, payload = heapq.heappop(heap)
                if budget is not None:
                    budget.check()
                if -neg_upper <= 0.0:
                    # A zero bound can never beat the implicit empty-region
                    # score; skipping it regardless of the tie rule avoids
                    # degenerate full scans when f is identically zero.
                    tracer.event(
                        "slicebrs.prune_stop", reason="zero_bound",
                        best=best_value,
                    )
                    break
                pruned = (
                    -neg_upper <= best_value
                    if self.strict_pruning
                    else -neg_upper < best_value
                )
                if pruned:
                    # Every remaining bound is at least as small.
                    tracer.event(
                        "slicebrs.prune_stop", reason="bound",
                        bound=-neg_upper, best=best_value,
                    )
                    break
                if kind == _SLICE:
                    stats.n_slices_scanned += 1
                    with tracer.span("slicebrs.slice", upper=-neg_upper):
                        for slab in scan_slabs(payload, evaluator, stats, budget=budget):  # type: ignore[arg-type]
                            keep = (
                                slab[2] > best_value
                                if self.strict_pruning
                                else slab[2] >= best_value
                            )
                            if keep:
                                heapq.heappush(
                                    heap, (-slab[2], seq, _SLAB, (slab, payload))
                                )
                                seq += 1
                else:
                    slab, slice_rows = payload  # type: ignore[misc]
                    stats.n_slabs_searched += 1
                    with tracer.span("slicebrs.slab", upper=-neg_upper):
                        spanning = rows_spanning_slab(slice_rows, slab)
                        best_value, candidate = search_slab(
                            spanning, slab, evaluator, best_value, stats,
                            budget=budget,
                        )
                    if candidate is not None:
                        best_point = candidate
        except BudgetExceededError:
            # The heap is popped best-bound-first, so the entry being
            # processed dominates everything still queued — its bound is
            # a sound cap on all unexplored work.
            status = "timeout"
            remaining_upper = -neg_upper

        if best_point is None:
            # Every candidate scored f(emptyset); any object's own location
            # is then an optimal center (its region contains the object).
            best_point = points[0]
            best_value = f.value(objects_in_region(points, best_point, a, b))

        object_ids = objects_in_region(points, best_point, a, b)
        return BRSResult(
            point=best_point,
            score=best_value,
            object_ids=object_ids,
            a=a,
            b=b,
            stats=stats,
            status=status,
            upper_bound=(
                None if status == "ok" else max(best_value, remaining_upper)
            ),
        )

    def _cut_into_slices(
        self, rows: Sequence[RectRow], b: float
    ) -> List[List[RectRow]]:
        """Assign each rectangle to the slices it intersects, clipped in x.

        With slicing disabled the whole space is a single slice and rows are
        passed through unclipped.
        """
        if not self.slicing:
            return [list(rows)]
        x_lo, x_hi = rows_x_extent(rows)
        width = self.theta * b
        n_slices = max(1, math.ceil((x_hi - x_lo) / width))
        buckets: Dict[int, List[RectRow]] = {}
        for row in rows:
            first = int((row[0] - x_lo) // width)
            last = int((row[1] - x_lo) // width)
            first = max(0, min(first, n_slices - 1))
            last = max(0, min(last, n_slices - 1))
            for idx in range(first, last + 1):
                s_lo = x_lo + idx * width
                s_hi = s_lo + width
                clipped_lo = max(row[0], s_lo)
                clipped_hi = min(row[1], s_hi)
                if clipped_lo < clipped_hi:  # skip zero-width clippings
                    buckets.setdefault(idx, []).append(
                        (clipped_lo, clipped_hi, row[2], row[3], row[4])
                    )
        return [buckets[idx] for idx in sorted(buckets)]
