"""Exploratory search sessions (the paper's motivating workflow).

Section 1 frames BRS as interactive: a user "initiates a search with a
specific query rectangle, views the results, iteratively refines the query
rectangle (by increasing or decreasing a or b) and executes the refined
search until she is satisfied".  :class:`ExplorationSession` is that loop
as an object: it owns the dataset-lifetime state (the quadtree for c-cover
selection, an R-tree for result inspection, the function's evaluators) and
answers a stream of differently-sized queries, keeping a history the user
can scroll back through.

The session also implements the natural speed/quality escalation: answer
interactively with CoverBRS first, and only pay for SliceBRS when the user
asks to ``confirm()`` a shortlisted query.  An interactive loop must also
*stay* interactive, so the session is deadline-aware: give it (or a single
call) a time budget and every answer degrades gracefully down the ladder —
exact → approximate → coarse grid scan — rather than stalling; transient
score-function failures can be absorbed with a built-in retry policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.coverbrs import CoverBRS
from repro.core.gridscan import coarse_grid_scan
from repro.core.result import BRSResult, merge_anytime
from repro.core.slicebrs import SliceBRS
from repro.functions.base import SetFunction
from repro.geometry.point import Point
from repro.index.quadtree import Quadtree
from repro.index.rtree import RTree
from repro.obs.metrics import active_registry, counter_delta
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget
from repro.runtime.errors import InvalidQueryError
from repro.runtime.faults import RetryingFunction


@dataclass(frozen=True)
class QueryRecord:
    """One step of an exploration: what was asked and what came back.

    ``method`` names the solver that actually produced the answer —
    ``"cover"``, ``"slice"``, or ``"grid"`` — which under deadline pressure
    may be a weaker one than the call asked for.  ``seconds`` is the query's
    wall time; ``metrics`` holds this query's share of the registry counters
    (a :func:`~repro.obs.metrics.counter_delta`) when a metrics scope is
    active, else ``None``.  ``cache_hit`` says whether the answer came from
    the session's result cache: ``True``/``False`` when a cache is
    configured, ``None`` when the session runs uncached.
    """

    a: float
    b: float
    method: str
    result: BRSResult
    seconds: float = 0.0
    metrics: Optional[Dict[str, float]] = field(default=None, compare=False)
    cache_hit: Optional[bool] = field(default=None, compare=False)


class ExplorationSession:
    """A stateful refine-and-rerun loop over one dataset and one score.

    Args:
        points: object locations (fixed for the session).
        f: submodular monotone score over object ids.
        c: cover parameter for the interactive (approximate) answers.
        theta: slice-width multiple for both solvers.
        deadline: optional per-query wall-clock budget in seconds, applied
            to every ``explore``/``confirm`` call that does not pass its
            own ``timeout``.  Answers degrade down the ladder instead of
            overrunning it.
        max_evals: optional per-query cap on score evaluations (same
            scoping rules as ``deadline``).
        retries: absorb this many transient
            :class:`~repro.runtime.errors.EvaluationError` failures per
            evaluation, with exponential backoff, before giving up.
        cache: optional :class:`~repro.serve.cache.ResultCache`; repeated
            queries at the same (quantized) rectangle are answered from it
            without re-solving, and each :class:`QueryRecord` notes the
            hit/miss.  Only ``status == "ok"`` answers are cached, so a
            degraded answer is always re-attempted.
        dataset_id: cache namespace for this session's dataset (relevant
            when several sessions share one cache).

    Raises:
        InvalidQueryError: on an empty dataset or invalid parameters.
    """

    def __init__(
        self,
        points: Sequence[Point],
        f: SetFunction,
        c: float = 1.0 / 3.0,
        theta: float = 1.0,
        deadline: Optional[float] = None,
        max_evals: Optional[int] = None,
        retries: int = 0,
        cache: Optional[object] = None,
        dataset_id: str = "session",
    ) -> None:
        if not points:
            raise InvalidQueryError("a session needs at least one object")
        self._points = list(points)
        self._f: SetFunction = (
            RetryingFunction(f, max_retries=retries) if retries > 0 else f
        )
        self._quadtree = Quadtree(self._points)
        self._rtree = RTree(self._points)
        self._approx = CoverBRS(c=c, theta=theta)
        self._exact = SliceBRS(theta=theta)
        self._c = c
        self._theta = theta
        self._deadline = deadline
        self._max_evals = max_evals
        self._history: List[QueryRecord] = []
        self._cache = cache
        self._dataset_id = dataset_id
        self._version = 1

    @property
    def history(self) -> Sequence[QueryRecord]:
        """All queries issued so far, oldest first."""
        return tuple(self._history)

    @property
    def last(self) -> Optional[QueryRecord]:
        """The most recent query, if any."""
        return self._history[-1] if self._history else None

    def _budget(self, timeout: Optional[float]) -> Optional[Budget]:
        """Per-call budget: explicit timeout wins over the session default."""
        if timeout is not None:
            return Budget(deadline=timeout)
        return Budget.of(timeout=self._deadline, max_evals=self._max_evals)

    def _record(
        self,
        a: float,
        b: float,
        method: str,
        result: BRSResult,
        start_time: float,
        before: Optional[Dict[str, float]],
        cache_hit: Optional[bool] = None,
    ) -> None:
        """Append a history record with per-query timing and metric deltas."""
        seconds = time.perf_counter() - start_time
        registry = active_registry()
        metrics: Optional[Dict[str, float]] = None
        if registry.enabled and before is not None:
            metrics = counter_delta(before, registry.snapshot())
        if registry.enabled:
            registry.histogram(
                "brs_session_query_seconds",
                help="exploration-session query wall time",
            ).observe(seconds)
        self._history.append(
            QueryRecord(a, b, method, result, seconds, metrics, cache_hit)
        )

    def _cache_key(self, mode: str, a: float, b: float):
        """Normalized cache key for one query, or ``None`` when uncached.

        The function key folds in the query mode and solver parameters, so
        ``explore`` and ``confirm`` answers (different contracts) can never
        shadow each other, nor can sessions with different ``c``/``theta``.
        """
        if self._cache is None:
            return None
        # Imported lazily: repro.serve depends on repro.core, so this
        # module cannot import it back at import time.
        from repro.serve.model import normalize_query

        fn_key = f"session.{mode}:c={self._c}:theta={self._theta}"
        return normalize_query(self._dataset_id, self._version, fn_key, a, b)

    def invalidate_cache(self) -> int:
        """Drop this session's cached answers; returns the new version.

        Call when the score function's external inputs changed.  The bump
        makes every previously written key unreachable even if another
        session re-fills the shared cache concurrently.
        """
        self._version += 1
        if self._cache is not None:
            self._cache.purge_dataset(self._dataset_id)
        return self._version

    def explore(
        self, a: float, b: float, timeout: Optional[float] = None
    ) -> BRSResult:
        """Answer interactively (CoverBRS; constant-factor approximate).

        Under a budget the answer degrades to a coarse grid scan if even
        the approximate solver cannot finish in time.

        Args:
            a: query-rectangle height.
            b: query-rectangle width.
            timeout: wall-clock budget for this call only (overrides the
                session deadline).

        Raises:
            InvalidQueryError: on a non-positive rectangle.
        """
        budget = self._budget(timeout)
        registry = active_registry()
        before = registry.snapshot() if registry.enabled else None
        start_time = time.perf_counter()
        key = self._cache_key("explore", a, b)
        if key is not None:
            hit = self._cache.get(key)
            if hit is not None:
                method, result = hit
                self._record(a, b, method, result, start_time, before,
                             cache_hit=True)
                return result
        method = "cover"
        with active_tracer().span("session.explore", a=a, b=b):
            if budget is None:
                result = self._approx.solve(
                    self._points, self._f, a, b, quadtree=self._quadtree
                )
            else:
                result = self._approx.solve(
                    self._points, self._f, a, b, quadtree=self._quadtree,
                    budget=budget.sub(time_fraction=0.7, eval_fraction=0.7),
                )
                if result.status != "ok":
                    grid = coarse_grid_scan(
                        self._points, self._f, a, b, budget=budget.sub(),
                        initial_best=result.score,
                    )
                    if grid.score > result.score:
                        method = "grid"
                    result = merge_anytime(
                        result, grid,
                        status="degraded" if grid.status == "degraded" else "timeout",
                    )
        if key is not None and result.status == "ok":
            self._cache.put(key, (method, result))
        self._record(a, b, method, result, start_time, before,
                     cache_hit=False if key is not None else None)
        return result

    def confirm(
        self,
        a: Optional[float] = None,
        b: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> BRSResult:
        """Answer exactly (SliceBRS); defaults to the last explored size.

        Under a budget this walks the full degradation ladder: exact →
        approximate → grid scan, each stage inheriting the remainder, so a
        confirmation request comes back by the deadline with the strongest
        answer a stage could complete (``result.status`` says which
        contract was met).

        Args:
            a: query-rectangle height (defaults to the last query's).
            b: query-rectangle width (defaults to the last query's).
            timeout: wall-clock budget for this call only (overrides the
                session deadline).

        Raises:
            InvalidQueryError: when no size is given and nothing was
                explored yet.
        """
        if a is None or b is None:
            if self.last is None:
                raise InvalidQueryError("no previous query to confirm; pass a and b")
            a = self.last.a if a is None else a
            b = self.last.b if b is None else b
        budget = self._budget(timeout)
        registry = active_registry()
        before = registry.snapshot() if registry.enabled else None
        start_time = time.perf_counter()
        key = self._cache_key("confirm", a, b)
        if key is not None:
            hit = self._cache.get(key)
            if hit is not None:
                method, result = hit
                self._record(a, b, method, result, start_time, before,
                             cache_hit=True)
                return result
        method = "slice"
        with active_tracer().span("session.confirm", a=a, b=b):
            if budget is None:
                result = self._exact.solve(self._points, self._f, a, b)
            else:
                result = self._exact.solve(
                    self._points, self._f, a, b,
                    budget=budget.sub(time_fraction=0.6, eval_fraction=0.6),
                )
                if result.status != "ok":
                    cover = self._approx.solve(
                        self._points, self._f, a, b, quadtree=self._quadtree,
                        budget=budget.sub(time_fraction=0.7, eval_fraction=0.7),
                    )
                    if cover.score > result.score:
                        method = "cover"
                    if cover.status == "ok":
                        result = merge_anytime(result, cover, status="degraded")
                    else:
                        result = merge_anytime(result, cover)
                        grid = coarse_grid_scan(
                            self._points, self._f, a, b, budget=budget.sub(),
                            initial_best=result.score,
                        )
                        if grid.score > result.score:
                            method = "grid"
                        result = merge_anytime(
                            result, grid,
                            status="degraded" if grid.status == "degraded" else "timeout",
                        )
        if key is not None and result.status == "ok":
            self._cache.put(key, (method, result))
        self._record(a, b, method, result, start_time, before,
                     cache_hit=False if key is not None else None)
        return result

    def refine(self, scale_a: float = 1.0, scale_b: float = 1.0) -> BRSResult:
        """Re-explore with the last rectangle scaled by the given factors.

        This is the paper's "increase or decrease a or b" step::

            session.explore(a=100, b=100)
            session.refine(scale_a=1.5)        # taller window
            session.refine(scale_b=0.5)        # then narrower

        Raises:
            InvalidQueryError: if nothing was explored yet or a factor is
                not positive.
        """
        if self.last is None:
            raise InvalidQueryError("nothing to refine; call explore() first")
        if scale_a <= 0 or scale_b <= 0:
            raise InvalidQueryError("scale factors must be positive")
        return self.explore(self.last.a * scale_a, self.last.b * scale_b)

    def inspect(self, result: BRSResult) -> List[Tuple[int, Point]]:
        """Return ``(object id, location)`` pairs inside a result's region.

        Uses the session R-tree, so inspection stays cheap even when the
        user clicks through many results.
        """
        ids = self._rtree.query_rect(result.region)
        registry = active_registry()
        if registry.enabled:
            registry.counter(
                "brs_rtree_queries_total", help="R-tree range queries served"
            ).inc()
        return [(obj_id, self._points[obj_id]) for obj_id in sorted(ids)]

    def best_so_far(self) -> Optional[QueryRecord]:
        """The highest-scoring query of the session (ties: earliest)."""
        if not self._history:
            return None
        return max(self._history, key=lambda record: record.result.score)
