"""Exploratory search sessions (the paper's motivating workflow).

Section 1 frames BRS as interactive: a user "initiates a search with a
specific query rectangle, views the results, iteratively refines the query
rectangle (by increasing or decreasing a or b) and executes the refined
search until she is satisfied".  :class:`ExplorationSession` is that loop
as an object: it owns the dataset-lifetime state (the quadtree for c-cover
selection, an R-tree for result inspection, the function's evaluators) and
answers a stream of differently-sized queries, keeping a history the user
can scroll back through.

The session also implements the natural speed/quality escalation: answer
interactively with CoverBRS first, and only pay for SliceBRS when the user
asks to ``confirm()`` a shortlisted query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.coverbrs import CoverBRS
from repro.core.result import BRSResult
from repro.core.slicebrs import SliceBRS
from repro.functions.base import SetFunction
from repro.geometry.point import Point
from repro.index.quadtree import Quadtree
from repro.index.rtree import RTree


@dataclass(frozen=True)
class QueryRecord:
    """One step of an exploration: what was asked and what came back."""

    a: float
    b: float
    method: str
    result: BRSResult


class ExplorationSession:
    """A stateful refine-and-rerun loop over one dataset and one score.

    Args:
        points: object locations (fixed for the session).
        f: submodular monotone score over object ids.
        c: cover parameter for the interactive (approximate) answers.
        theta: slice-width multiple for both solvers.

    Raises:
        ValueError: on an empty dataset or invalid parameters.
    """

    def __init__(
        self,
        points: Sequence[Point],
        f: SetFunction,
        c: float = 1.0 / 3.0,
        theta: float = 1.0,
    ) -> None:
        if not points:
            raise ValueError("a session needs at least one object")
        self._points = list(points)
        self._f = f
        self._quadtree = Quadtree(self._points)
        self._rtree = RTree(self._points)
        self._approx = CoverBRS(c=c, theta=theta)
        self._exact = SliceBRS(theta=theta)
        self._history: List[QueryRecord] = []

    @property
    def history(self) -> Sequence[QueryRecord]:
        """All queries issued so far, oldest first."""
        return tuple(self._history)

    @property
    def last(self) -> Optional[QueryRecord]:
        """The most recent query, if any."""
        return self._history[-1] if self._history else None

    def explore(self, a: float, b: float) -> BRSResult:
        """Answer interactively (CoverBRS; constant-factor approximate).

        Raises:
            ValueError: on a non-positive rectangle.
        """
        result = self._approx.solve(self._points, self._f, a, b, quadtree=self._quadtree)
        self._history.append(QueryRecord(a, b, "cover", result))
        return result

    def confirm(self, a: Optional[float] = None, b: Optional[float] = None) -> BRSResult:
        """Answer exactly (SliceBRS); defaults to the last explored size.

        Raises:
            ValueError: when no size is given and nothing was explored yet.
        """
        if a is None or b is None:
            if self.last is None:
                raise ValueError("no previous query to confirm; pass a and b")
            a = self.last.a if a is None else a
            b = self.last.b if b is None else b
        result = self._exact.solve(self._points, self._f, a, b)
        self._history.append(QueryRecord(a, b, "slice", result))
        return result

    def refine(self, scale_a: float = 1.0, scale_b: float = 1.0) -> BRSResult:
        """Re-explore with the last rectangle scaled by the given factors.

        This is the paper's "increase or decrease a or b" step::

            session.explore(a=100, b=100)
            session.refine(scale_a=1.5)        # taller window
            session.refine(scale_b=0.5)        # then narrower

        Raises:
            ValueError: if nothing was explored yet or a factor is not
                positive.
        """
        if self.last is None:
            raise ValueError("nothing to refine; call explore() first")
        if scale_a <= 0 or scale_b <= 0:
            raise ValueError("scale factors must be positive")
        return self.explore(self.last.a * scale_a, self.last.b * scale_b)

    def inspect(self, result: BRSResult) -> List[Tuple[int, Point]]:
        """Return ``(object id, location)`` pairs inside a result's region.

        Uses the session R-tree, so inspection stays cheap even when the
        user clicks through many results.
        """
        ids = self._rtree.query_rect(result.region)
        return [(obj_id, self._points[obj_id]) for obj_id in sorted(ids)]

    def best_so_far(self) -> Optional[QueryRecord]:
        """The highest-scoring query of the session (ties: earliest)."""
        if not self._history:
            return None
        return max(self._history, key=lambda record: record.result.score)
