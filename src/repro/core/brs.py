"""High-level entry point for best-region search.

Besides dispatching to a solver, :func:`best_region` owns the two
production-facing behaviours the individual solvers stay agnostic of:

* **Input validation** — malformed queries fail fast with
  :class:`~repro.runtime.errors.InvalidQueryError` before any search work.
* **Graceful degradation** — under an execution budget the exact method is
  only the first rung of a ladder (SliceBRS → CoverBRS → coarse grid scan);
  each fallback inherits what the previous rung left over, so a deadline
  yields the best answer *some* method could finish, never an exception.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.coverbrs import CoverBRS
from repro.core.gridscan import coarse_grid_scan
from repro.core.naive import NaiveBRS
from repro.core.result import BRSResult, merge_anytime
from repro.core.slicebrs import SliceBRS
from repro.functions.base import SetFunction
from repro.geometry.point import Point
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget, effective_budget
from repro.runtime.errors import InvalidQueryError

#: Method name -> factory; kwargs are forwarded to the solver constructor.
_METHODS = ("slice", "cover", "naive", "columnar")

#: Fraction of the remaining budget each non-final ladder rung may spend.
LADDER_FRACTION = 0.6


def _validate_query(points: Sequence[Point], a: float, b: float) -> None:
    """Reject malformed instances before any search work starts.

    Raises:
        InvalidQueryError: on an empty dataset, a non-positive or
            non-finite rectangle, or non-finite coordinates.
    """
    if not points:
        raise InvalidQueryError("BRS requires at least one spatial object")
    if not (a > 0 and b > 0 and math.isfinite(a) and math.isfinite(b)):
        raise InvalidQueryError(
            f"query rectangle must have positive finite size, got {a} x {b}"
        )
    for obj_id, p in enumerate(points):
        if not (math.isfinite(p.x) and math.isfinite(p.y)):
            raise InvalidQueryError(
                f"object {obj_id} has non-finite coordinates {p}"
            )


def _ladder(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    theta: float,
    c: float,
    validate: bool,
    budget: Budget,
) -> BRSResult:
    """Exact → approximate → grid scan, each rung on the remaining budget."""
    tracer = active_tracer()
    registry = active_registry()
    tracer.event("ladder.rung", rung="slice")
    exact = SliceBRS(theta=theta, validate=validate).solve(
        points, f, a, b, budget=budget.sub(time_fraction=LADDER_FRACTION,
                                           eval_fraction=LADDER_FRACTION)
    )
    if exact.status == "ok":
        return exact

    if registry.enabled:
        registry.counter(
            "brs_ladder_fallbacks_total",
            help="degradation-ladder fallbacks taken (rungs after the first)",
        ).inc()
    tracer.event("ladder.rung", rung="cover", best_so_far=exact.score)
    cover = CoverBRS(c=c, theta=theta).solve(
        points, f, a, b,
        budget=budget.sub(time_fraction=LADDER_FRACTION,
                          eval_fraction=LADDER_FRACTION),
    )
    if cover.status == "ok":
        # The fallback finished: a complete (approximate) answer under
        # deadline pressure is "degraded", not "timeout".
        result = merge_anytime(exact, cover, status="degraded")
    else:
        merged = merge_anytime(exact, cover)
        if registry.enabled:
            registry.counter(
                "brs_ladder_fallbacks_total",
                help="degradation-ladder fallbacks taken (rungs after the first)",
            ).inc()
        tracer.event("ladder.rung", rung="grid", best_so_far=merged.score)
        grid = coarse_grid_scan(
            points, f, a, b, budget=budget.sub(), initial_best=merged.score
        )
        result = merge_anytime(
            merged, grid,
            status="degraded" if grid.status == "degraded" else "timeout",
        )
    if registry.enabled and result.status != "ok":
        registry.counter(
            "brs_degraded_results_total",
            help="ladder answers returned with a non-ok status",
        ).inc()
    return result


def best_region(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    method: str = "slice",
    theta: float = 1.0,
    c: Optional[float] = None,
    validate: bool = False,
    budget: Optional[Budget] = None,
    degrade: bool = True,
) -> BRSResult:
    """Find the best ``a x b`` region for the score function ``f``.

    This is the one-call API for common use; power users instantiate
    :class:`~repro.core.slicebrs.SliceBRS` or
    :class:`~repro.core.coverbrs.CoverBRS` directly (e.g. to reuse a
    quadtree across exploratory queries).

    Args:
        points: object locations; object ids are positions in this sequence.
        f: submodular monotone aggregate score function.
        a: query-rectangle height.
        b: query-rectangle width.
        method: ``"slice"`` (exact SliceBRS), ``"cover"`` (approximate
            CoverBRS), ``"naive"`` (brute force; tiny instances only), or
            ``"columnar"`` (exact vectorized kernels from
            :mod:`repro.columnar`; weighted-sum functions run fully
            vectorized, anything else falls back to object-path SliceBRS).
        theta: slice width as a multiple of ``b`` (ignored by ``"naive"``).
        c: cover parameter for ``"cover"``; defaults to 1/3 (the paper's
            CoverBRS4, a 1/4-approximation).
        validate: spot-check the submodular monotone contract first.
        budget: optional execution budget (falls back to the ambient
            :func:`~repro.runtime.budget.budget_scope`).  With a budget the
            call *never runs unbounded*: on expiry an anytime result with
            ``status`` ``"degraded"``/``"timeout"`` and a sound optimality
            gap comes back instead of an exception.
        degrade: with a budget and ``method="slice"``, walk the fallback
            ladder (SliceBRS → CoverBRS → grid scan) instead of returning
            SliceBRS's raw anytime answer.  Has no effect without a budget.

    Raises:
        InvalidQueryError: on an unknown method or an invalid instance
            (empty dataset, non-finite coordinates, bad rectangle or
            parameters).
    """
    if method not in _METHODS:
        raise InvalidQueryError(
            f"unknown method {method!r}; expected one of {_METHODS}"
        )
    _validate_query(points, a, b)
    budget = effective_budget(budget)
    c_value = c if c is not None else 1.0 / 3.0

    if method == "slice":
        if budget is not None and degrade:
            return _ladder(points, f, a, b, theta, c_value, validate, budget)
        return SliceBRS(theta=theta, validate=validate).solve(
            points, f, a, b, budget=budget
        )
    if method == "columnar":
        from repro.columnar.solvers import columnar_best_region

        return columnar_best_region(
            points, f, a, b, theta=theta, budget=budget
        )
    if method == "cover":
        return CoverBRS(c=c_value, theta=theta, validate=validate).solve(
            points, f, a, b, budget=budget
        )
    return NaiveBRS().solve(points, f, a, b, budget=budget)
