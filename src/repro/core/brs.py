"""High-level entry point for best-region search."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.coverbrs import CoverBRS
from repro.core.naive import NaiveBRS
from repro.core.result import BRSResult
from repro.core.slicebrs import SliceBRS
from repro.functions.base import SetFunction
from repro.geometry.point import Point

#: Method name -> factory; kwargs are forwarded to the solver constructor.
_METHODS = ("slice", "cover", "naive")


def best_region(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    method: str = "slice",
    theta: float = 1.0,
    c: Optional[float] = None,
    validate: bool = False,
) -> BRSResult:
    """Find the best ``a x b`` region for the score function ``f``.

    This is the one-call API for common use; power users instantiate
    :class:`~repro.core.slicebrs.SliceBRS` or
    :class:`~repro.core.coverbrs.CoverBRS` directly (e.g. to reuse a
    quadtree across exploratory queries).

    Args:
        points: object locations; object ids are positions in this sequence.
        f: submodular monotone aggregate score function.
        a: query-rectangle height.
        b: query-rectangle width.
        method: ``"slice"`` (exact SliceBRS), ``"cover"`` (approximate
            CoverBRS), or ``"naive"`` (brute force; tiny instances only).
        theta: slice width as a multiple of ``b`` (ignored by ``"naive"``).
        c: cover parameter for ``"cover"``; defaults to 1/3 (the paper's
            CoverBRS4, a 1/4-approximation).
        validate: spot-check the submodular monotone contract first.

    Raises:
        ValueError: on an unknown method or invalid instance/parameters.
    """
    if method == "slice":
        return SliceBRS(theta=theta, validate=validate).solve(points, f, a, b)
    if method == "cover":
        return CoverBRS(c=c if c is not None else 1.0 / 3.0, theta=theta,
                        validate=validate).solve(points, f, a, b)
    if method == "naive":
        return NaiveBRS().solve(points, f, a, b)
    raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")
