"""Partitioned (and optionally parallel) best-region search.

The paper's lineage includes an external-memory MaxRS algorithm [7] for
datasets that do not fit in RAM.  The same decomposition works for general
BRS and doubles as a parallelization scheme:

Cut the x-axis into windows that overlap by at least the query width
``b``.  Any candidate center ``p`` has all of its relevant objects within
``b/2`` horizontally, so some window fully contains the optimum's object
neighbourhood; solving each window's object subset independently and
taking the best answer is therefore *exact*:

* soundness — a window solve optimizes over a subset of the objects, so
  its score never exceeds the global optimum (monotone ``f``);
* completeness — the window responsible for the optimal center contains
  every object of the optimal region, so its solve scores at least the
  optimum.

Each window solve touches only its own objects, bounding peak memory by
the window size (the external-memory use) and making windows embarrassingly
parallel (the multiprocessing use).  A cheap CoverBRS pass first computes a
global incumbent that every window inherits, so window solves prune
against the best known answer from the start.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.coverbrs import CoverBRS
from repro.core.result import BRSResult
from repro.core.siri import objects_in_region
from repro.core.slicebrs import SliceBRS
from repro.core.stats import SearchStats
from repro.functions.base import SetFunction
from repro.functions.reduced import reduce_over_cover
from repro.geometry.point import Point


def _window_bounds(
    x_lo: float, x_hi: float, n_parts: int, b: float
) -> List[Tuple[float, float]]:
    """Cut ``[x_lo, x_hi]`` into ``n_parts`` windows overlapping by ``b``.

    Windows are widened so that consecutive responsibility regions tile the
    space seamlessly; degenerate inputs collapse to a single window.
    """
    span = x_hi - x_lo
    if n_parts <= 1 or span <= b:
        return [(x_lo, x_hi)]
    stride = span / n_parts
    if stride <= b:  # windows would be all overlap; fall back to fewer
        n_parts = max(1, int(span / (2 * b)))
        if n_parts <= 1:
            return [(x_lo, x_hi)]
        stride = span / n_parts
    return [
        (x_lo + i * stride - (b if i else 0.0),
         x_lo + (i + 1) * stride + (0.0 if i == n_parts - 1 else b))
        for i in range(n_parts)
    ]


def _solve_window(args) -> Tuple[float, float, float, int]:
    """Worker: solve one window, return (score, x, y, n_objects).

    Module-level so it pickles for multiprocessing.
    """
    sub_points, sub_f, a, b, theta, incumbent = args
    solver = SliceBRS(theta=theta)
    result = solver.solve(sub_points, sub_f, a, b, initial_best=incumbent)
    if result.score <= incumbent:
        return (incumbent, math.nan, math.nan, len(sub_points))
    return (result.score, result.point.x, result.point.y, len(sub_points))


def partitioned_best_region(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    n_parts: int = 4,
    theta: float = 1.0,
    workers: Optional[int] = None,
) -> BRSResult:
    """Solve BRS exactly by overlapping x-windows.

    Args:
        points: object locations.
        f: submodular monotone score over object ids.
        a: query-rectangle height.
        b: query-rectangle width.
        n_parts: number of windows (peak memory shrinks with it).
        theta: slice-width multiple for the window solvers.
        workers: if given, solve windows in a ``multiprocessing`` pool of
            this size; otherwise sequentially in-process.

    Raises:
        ValueError: on an empty instance or invalid parameters.
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    if not points:
        raise ValueError("BRS requires at least one spatial object")

    xs = [p.x for p in points]
    windows = _window_bounds(min(xs) - b / 2, max(xs) + b / 2, n_parts, b)

    # Global incumbent from a cheap approximate pass: windows prune
    # against it immediately, and it is itself a feasible answer.
    incumbent = CoverBRS(c=1.0 / 3.0, theta=theta).solve(points, f, a, b)
    best_score = incumbent.score
    best_point = incumbent.point

    tasks = []
    for w_lo, w_hi in windows:
        ids = [i for i, p in enumerate(points) if w_lo <= p.x <= w_hi]
        if not ids:
            continue
        sub_points = [points[i] for i in ids]
        sub_f = reduce_over_cover(f, [[i] for i in ids])
        tasks.append((sub_points, sub_f, a, b, theta, best_score))

    if workers and workers > 1 and len(tasks) > 1:
        import multiprocessing

        with multiprocessing.get_context("fork").Pool(workers) as pool:
            outcomes = pool.map(_solve_window, tasks)
    else:
        outcomes = [_solve_window(task) for task in tasks]

    for score, x, y, _ in outcomes:
        if score > best_score and not math.isnan(x):
            best_score = score
            best_point = Point(x, y)

    object_ids = objects_in_region(points, best_point, a, b)
    stats = SearchStats(n_objects=len(points), n_slices=len(tasks))
    return BRSResult(
        point=best_point,
        score=f.value(object_ids),
        object_ids=object_ids,
        a=a,
        b=b,
        stats=stats,
    )
