"""Partitioned (and optionally parallel) best-region search.

The paper's lineage includes an external-memory MaxRS algorithm [7] for
datasets that do not fit in RAM.  The same decomposition works for general
BRS and doubles as a parallelization scheme:

Cut the x-axis into windows that overlap by at least the query width
``b``.  Any candidate center ``p`` has all of its relevant objects within
``b/2`` horizontally, so some window fully contains the optimum's object
neighbourhood; solving each window's object subset independently and
taking the best answer is therefore *exact*:

* soundness — a window solve optimizes over a subset of the objects, so
  its score never exceeds the global optimum (monotone ``f``);
* completeness — the window responsible for the optimal center contains
  every object of the optimal region, so its solve scores at least the
  optimum.

Each window solve touches only its own objects, bounding peak memory by
the window size (the external-memory use) and making windows embarrassingly
parallel (the multiprocessing use).  A cheap CoverBRS pass first computes a
global incumbent that every window inherits, so window solves prune
against the best known answer from the start.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.result import BRSResult
from repro.functions.base import SetFunction
from repro.geometry.point import Point
from repro.runtime.errors import InvalidQueryError


def _window_bounds(
    x_lo: float, x_hi: float, n_parts: int, b: float
) -> List[Tuple[float, float]]:
    """Cut ``[x_lo, x_hi]`` into ``n_parts`` windows overlapping by ``b``.

    Windows are widened so that consecutive responsibility regions tile the
    space seamlessly; degenerate inputs collapse to a single window.

    The returned windows satisfy three invariants the exactness argument in
    the module docstring rests on (regression-tested against adversarial
    ``span/b`` ratios):

    * the first window starts at ``x_lo`` and the last ends at ``x_hi``;
    * consecutive windows overlap by at least ``b``;
    * each window's *responsibility stride* is strictly wider than ``b``,
      so no window degenerates into pure overlap.
    """
    span = x_hi - x_lo
    if n_parts <= 1 or span <= b:
        return [(x_lo, x_hi)]
    stride = span / n_parts
    if stride <= b:
        # The requested count would make windows pure overlap.  Keep the
        # largest count whose stride stays strictly wider than ``b``:
        # n < span / b  <=>  stride = span / n > b.  (An earlier version
        # truncated ``span / (2 * b)`` here, which both halved the usable
        # window count and, for ratios just above an integer, collapsed
        # decompositions that were still sound.)
        n_parts = min(n_parts, math.ceil(span / b) - 1)
        if n_parts <= 1:
            return [(x_lo, x_hi)]
        stride = span / n_parts
    return [
        (x_lo + i * stride - (b if i else 0.0),
         x_lo + (i + 1) * stride + (0.0 if i == n_parts - 1 else b))
        for i in range(n_parts)
    ]


@dataclass(frozen=True)
class Shard:
    """One x-window of a partitioned instance: bounds plus member objects.

    Shards are what the window decomposition hands to downstream executors
    (the in-process pool here, or the serving subsystem's batch executor):
    ``object_ids`` index into the *original* point sequence, so a shard
    solve can be mapped back to dataset-global ids.
    """

    index: int
    x_lo: float
    x_hi: float
    object_ids: Tuple[int, ...]


def plan_shards(
    points: Sequence[Point], b: float, n_parts: int
) -> List[Shard]:
    """Plan the overlapping-x-window decomposition of an instance.

    Returns one :class:`Shard` per non-empty window.  The decomposition is
    exact for any monotone score (see the module docstring), so solving
    each shard's object subset independently and taking the best answer
    reproduces the global optimum.

    Args:
        points: object locations (ids are positions in this sequence).
        b: query-rectangle width the windows must overlap by.
        n_parts: requested window count (may be reduced to keep windows
            meaningful; see :func:`_window_bounds`).

    Raises:
        ValueError: on an empty instance or a non-positive ``n_parts``.
    """
    if n_parts <= 0:
        raise InvalidQueryError("n_parts must be positive")
    if not points:
        raise InvalidQueryError("BRS requires at least one spatial object")
    xs = [p.x for p in points]
    windows = _window_bounds(min(xs) - b / 2, max(xs) + b / 2, n_parts, b)
    shards: List[Shard] = []
    for w_lo, w_hi in windows:
        ids = tuple(i for i, p in enumerate(points) if w_lo <= p.x <= w_hi)
        if ids:
            shards.append(Shard(len(shards), w_lo, w_hi, ids))
    return shards


def partitioned_best_region(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    n_parts: int = 4,
    theta: float = 1.0,
    workers: Optional[int] = None,
) -> BRSResult:
    """Solve BRS exactly by overlapping x-windows.

    Thin facade over :func:`repro.parallel.solve_partitioned`, which owns
    both the in-process serial loop and the process-pool execution path
    (worker bootstrap, budget slicing, retries, serial degradation).

    Args:
        points: object locations.
        f: submodular monotone score over object ids.
        a: query-rectangle height.
        b: query-rectangle width.
        n_parts: number of windows (peak memory shrinks with it).
        theta: slice-width multiple for the window solvers.
        workers: if given (> 1), solve windows across a process pool of
            this size; otherwise sequentially in-process.

    Raises:
        ValueError: on an empty instance or invalid parameters.
    """
    # Imported lazily: repro.parallel builds on plan_shards from this
    # module, so a top-level import would be circular.
    from repro.parallel.backend import solve_partitioned

    return solve_partitioned(
        points, f, a, b, n_parts=n_parts, theta=theta, workers=workers
    )
