"""Partitioned (and optionally parallel) best-region search.

The paper's lineage includes an external-memory MaxRS algorithm [7] for
datasets that do not fit in RAM.  The same decomposition works for general
BRS and doubles as a parallelization scheme:

Cut the x-axis into windows that overlap by at least the query width
``b``.  Any candidate center ``p`` has all of its relevant objects within
``b/2`` horizontally, so some window fully contains the optimum's object
neighbourhood; solving each window's object subset independently and
taking the best answer is therefore *exact*:

* soundness — a window solve optimizes over a subset of the objects, so
  its score never exceeds the global optimum (monotone ``f``);
* completeness — the window responsible for the optimal center contains
  every object of the optimal region, so its solve scores at least the
  optimum.

Each window solve touches only its own objects, bounding peak memory by
the window size (the external-memory use) and making windows embarrassingly
parallel (the multiprocessing use).  A cheap CoverBRS pass first computes a
global incumbent that every window inherits, so window solves prune
against the best known answer from the start.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.coverbrs import CoverBRS
from repro.core.result import BRSResult
from repro.core.siri import objects_in_region
from repro.core.slicebrs import SliceBRS
from repro.core.stats import SearchStats
from repro.functions.base import SetFunction
from repro.functions.reduced import reduce_over_cover
from repro.geometry.point import Point
from repro.runtime.errors import InvalidQueryError


def _window_bounds(
    x_lo: float, x_hi: float, n_parts: int, b: float
) -> List[Tuple[float, float]]:
    """Cut ``[x_lo, x_hi]`` into ``n_parts`` windows overlapping by ``b``.

    Windows are widened so that consecutive responsibility regions tile the
    space seamlessly; degenerate inputs collapse to a single window.

    The returned windows satisfy three invariants the exactness argument in
    the module docstring rests on (regression-tested against adversarial
    ``span/b`` ratios):

    * the first window starts at ``x_lo`` and the last ends at ``x_hi``;
    * consecutive windows overlap by at least ``b``;
    * each window's *responsibility stride* is strictly wider than ``b``,
      so no window degenerates into pure overlap.
    """
    span = x_hi - x_lo
    if n_parts <= 1 or span <= b:
        return [(x_lo, x_hi)]
    stride = span / n_parts
    if stride <= b:
        # The requested count would make windows pure overlap.  Keep the
        # largest count whose stride stays strictly wider than ``b``:
        # n < span / b  <=>  stride = span / n > b.  (An earlier version
        # truncated ``span / (2 * b)`` here, which both halved the usable
        # window count and, for ratios just above an integer, collapsed
        # decompositions that were still sound.)
        n_parts = min(n_parts, math.ceil(span / b) - 1)
        if n_parts <= 1:
            return [(x_lo, x_hi)]
        stride = span / n_parts
    return [
        (x_lo + i * stride - (b if i else 0.0),
         x_lo + (i + 1) * stride + (0.0 if i == n_parts - 1 else b))
        for i in range(n_parts)
    ]


@dataclass(frozen=True)
class Shard:
    """One x-window of a partitioned instance: bounds plus member objects.

    Shards are what the window decomposition hands to downstream executors
    (the in-process pool here, or the serving subsystem's batch executor):
    ``object_ids`` index into the *original* point sequence, so a shard
    solve can be mapped back to dataset-global ids.
    """

    index: int
    x_lo: float
    x_hi: float
    object_ids: Tuple[int, ...]


def plan_shards(
    points: Sequence[Point], b: float, n_parts: int
) -> List[Shard]:
    """Plan the overlapping-x-window decomposition of an instance.

    Returns one :class:`Shard` per non-empty window.  The decomposition is
    exact for any monotone score (see the module docstring), so solving
    each shard's object subset independently and taking the best answer
    reproduces the global optimum.

    Args:
        points: object locations (ids are positions in this sequence).
        b: query-rectangle width the windows must overlap by.
        n_parts: requested window count (may be reduced to keep windows
            meaningful; see :func:`_window_bounds`).

    Raises:
        ValueError: on an empty instance or a non-positive ``n_parts``.
    """
    if n_parts <= 0:
        raise InvalidQueryError("n_parts must be positive")
    if not points:
        raise InvalidQueryError("BRS requires at least one spatial object")
    xs = [p.x for p in points]
    windows = _window_bounds(min(xs) - b / 2, max(xs) + b / 2, n_parts, b)
    shards: List[Shard] = []
    for w_lo, w_hi in windows:
        ids = tuple(i for i, p in enumerate(points) if w_lo <= p.x <= w_hi)
        if ids:
            shards.append(Shard(len(shards), w_lo, w_hi, ids))
    return shards


def _solve_window(args) -> Tuple[float, float, float, int]:
    """Worker: solve one window, return (score, x, y, n_objects).

    Module-level so it pickles for multiprocessing.
    """
    sub_points, sub_f, a, b, theta, incumbent = args
    solver = SliceBRS(theta=theta)
    result = solver.solve(sub_points, sub_f, a, b, initial_best=incumbent)
    if result.score <= incumbent:
        return (incumbent, math.nan, math.nan, len(sub_points))
    return (result.score, result.point.x, result.point.y, len(sub_points))


def partitioned_best_region(
    points: Sequence[Point],
    f: SetFunction,
    a: float,
    b: float,
    n_parts: int = 4,
    theta: float = 1.0,
    workers: Optional[int] = None,
) -> BRSResult:
    """Solve BRS exactly by overlapping x-windows.

    Args:
        points: object locations.
        f: submodular monotone score over object ids.
        a: query-rectangle height.
        b: query-rectangle width.
        n_parts: number of windows (peak memory shrinks with it).
        theta: slice-width multiple for the window solvers.
        workers: if given, solve windows in a ``multiprocessing`` pool of
            this size; otherwise sequentially in-process.

    Raises:
        ValueError: on an empty instance or invalid parameters.
    """
    shards = plan_shards(points, b, n_parts)

    # Global incumbent from a cheap approximate pass: windows prune
    # against it immediately, and it is itself a feasible answer.
    incumbent = CoverBRS(c=1.0 / 3.0, theta=theta).solve(points, f, a, b)
    best_score = incumbent.score
    best_point = incumbent.point

    tasks = []
    for shard in shards:
        sub_points = [points[i] for i in shard.object_ids]
        sub_f = reduce_over_cover(f, [[i] for i in shard.object_ids])
        tasks.append((sub_points, sub_f, a, b, theta, best_score))

    if workers and workers > 1 and len(tasks) > 1:
        import multiprocessing

        with multiprocessing.get_context("fork").Pool(workers) as pool:
            outcomes = pool.map(_solve_window, tasks)
    else:
        outcomes = [_solve_window(task) for task in tasks]

    for score, x, y, _ in outcomes:
        if score > best_score and not math.isnan(x):
            best_score = score
            best_point = Point(x, y)

    object_ids = objects_in_region(points, best_point, a, b)
    stats = SearchStats(n_objects=len(points), n_slices=len(tasks))
    return BRSResult(
        point=best_point,
        score=f.value(object_ids),
        object_ids=object_ids,
        a=a,
        b=b,
        stats=stats,
    )
