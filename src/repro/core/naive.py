"""Brute-force exact BRS solver (ground truth for tests).

Enumerates one interior point per cell of the SIRI-rectangle arrangement:
the candidate grid is the cross product of x-gap midpoints and y-gap
midpoints between consecutive distinct edge coordinates.  Every cell of the
arrangement contains at least one such grid point (the global edge
coordinates refine every cell boundary), so by Lemma 2 the enumeration is
exhaustive.  Cost is O(n^2) evaluations of ``f`` — usable only for small
instances, which is exactly its job: an independent oracle the fast solvers
are tested against.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.core.result import BRSResult
from repro.core.siri import build_siri_rows, objects_in_region
from repro.core.stats import SearchStats
from repro.functions.base import SetFunction
from repro.geometry.point import Point
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget, effective_budget
from repro.runtime.errors import BudgetExceededError


def _gap_midpoints(coords: List[float]) -> List[float]:
    """Midpoints of the open gaps between consecutive distinct coordinates."""
    distinct = sorted(set(coords))
    return [
        (lo + hi) / 2.0 for lo, hi in zip(distinct, distinct[1:])
    ]


class NaiveBRS:
    """Exhaustive-candidate exact solver.

    No tuning knobs; intended for testing and tiny exploratory instances.
    """

    def solve(
        self,
        points: Sequence[Point],
        f: SetFunction,
        a: float,
        b: float,
        budget: Optional[Budget] = None,
    ) -> BRSResult:
        """Return an optimal ``a x b`` region by exhaustive enumeration.

        Args:
            points: object locations.
            f: aggregate score over object ids.
            a: query-rectangle height.
            b: query-rectangle width.
            budget: optional execution budget; on expiry the best candidate
                scored so far is returned with ``status="timeout"`` and
                ``f`` of all objects as the (loose but sound) upper bound.

        Raises:
            InvalidQueryError: on an empty instance or non-positive
                rectangle.
        """
        budget = effective_budget(budget)
        tracer = active_tracer()
        registry = active_registry()
        start_time = time.perf_counter()
        rows = build_siri_rows(points, a, b)
        xs = _gap_midpoints([r[0] for r in rows] + [r[1] for r in rows])
        ys = _gap_midpoints([r[2] for r in rows] + [r[3] for r in rows])

        # Candidate rows play the role of slices; the alive-set rebuild per
        # row is the sweep work ("pushes") this solver performs.
        stats = SearchStats(n_objects=len(points), n_slices=len(ys))
        best_value = 0.0
        best_point = points[0]
        status = "ok"
        with tracer.span("naive.solve", n_objects=len(points)):
            try:
                for y in ys:
                    # Objects whose rectangle spans this y — only their
                    # x-intervals matter along the row of candidates.
                    alive = [r for r in rows if r[2] < y < r[3]]
                    stats.n_slices_scanned += 1
                    stats.n_pushes += len(alive)
                    for x in xs:
                        ids = [r[4] for r in alive if r[0] < x < r[1]]
                        stats.n_candidates += 1
                        if budget is not None:
                            budget.charge()
                        value = f.value(ids)
                        if value > best_value:
                            best_value = value
                            best_point = Point(x, y)
            except BudgetExceededError:
                status = "timeout"

        stats.publish(registry, "naive")
        if registry.enabled:
            registry.histogram(
                "brs_naive_solve_seconds", help="NaiveBRS solve wall time"
            ).observe(time.perf_counter() - start_time)

        object_ids = objects_in_region(points, best_point, a, b)
        return BRSResult(
            point=best_point,
            score=best_value,
            object_ids=object_ids,
            a=a,
            b=b,
            stats=stats,
            status=status,
            upper_bound=(
                None if status == "ok"
                else max(best_value, f.value(range(len(points))))
            ),
        )
