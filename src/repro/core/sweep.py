"""The two sweep lines of SliceBRS: *ScanSlab* and *SearchMR* (Section 4.4).

Both sweeps process events grouped by coordinate.  Grouping generalizes the
paper's ``flag`` mechanism (Appendix A): a candidate is emitted whenever a
batch containing removals follows a batch containing insertions, which
degenerates to "a bottom/left edge immediately followed by a top/right edge"
under the general-position assumption and stays correct when edges coincide
(as they do at slice boundaries after clipping).

Correctness sketch, mirroring Lemma 3: along a sweep the active set gains at
insertion batches and loses at removal batches; an elementary interval whose
following batch contains no removal is dominated by its right neighbour
(superset active set), and one whose preceding batch contains no insertion is
dominated by its left neighbour, so every undominated interval is caught by
the trigger.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.siri import RectRow
from repro.core.stats import SearchStats
from repro.functions.base import IncrementalEvaluator
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget
from repro.runtime.errors import EvaluationError

#: A maximal slab: (y_lo, y_hi, upper_bound).
Slab = Tuple[float, float, float]

#: Event kinds; removals sort before insertions inside a coordinate batch so
#: the "batch had insertions / has removals" bookkeeping can stream.
_REMOVE = 0
_INSERT = 1


def _checked(value: float) -> float:
    """Reject non-finite evaluator output before it poisons bounds.

    A NaN upper bound would compare false against everything and silently
    disable pruning (or hide the true best); surfacing it as a structured
    error keeps faulty score functions diagnosable.

    Raises:
        EvaluationError: when ``value`` is NaN.
    """
    if value != value:  # NaN is the only float that is not equal to itself
        raise EvaluationError("score function returned NaN during a sweep")
    return value


def scan_slabs(
    rows: Sequence[RectRow],
    evaluator: IncrementalEvaluator,
    stats: Optional[SearchStats] = None,
    budget: Optional[Budget] = None,
) -> List[Slab]:
    """Sweep bottom-up and return the maximal slabs with upper bounds.

    Implements Function *ScanSlab*: a maximal slab is the open y-interval
    between a batch containing bottom edges and the next batch containing top
    edges (Definition 6); its upper bound is ``h`` of the rectangles active
    inside it (Lemma 7), maintained incrementally.

    Args:
        rows: the SIRI rectangles of one slice (already clipped in x).
        evaluator: incremental evaluator for ``h``; reset on entry and exit.
        stats: optional counters (``n_slabs``, ``n_pushes``).
        budget: optional execution budget, charged one evaluation per slab
            bound read.

    Returns:
        Slabs as ``(y_lo, y_hi, upper)`` tuples, in sweep order.

    Raises:
        BudgetExceededError: when the budget expires mid-sweep (the caller
            owns the slice's upper bound, which soundly covers the
            unfinished work).
        EvaluationError: when the evaluator produces NaN.
    """
    events: List[Tuple[float, int, int]] = []
    for row in rows:
        events.append((row[2], _INSERT, row[4]))
        events.append((row[3], _REMOVE, row[4]))
    events.sort()

    evaluator.reset()
    slabs: List[Slab] = []
    with active_tracer().span("sweep.scan_slab", n_rows=len(rows)):
        prev_had_insert = False
        prev_y = 0.0
        i = 0
        n = len(events)
        while i < n:
            y = events[i][0]
            batch_start = i
            has_remove = False
            has_insert = False
            while i < n and events[i][0] == y:
                if events[i][1] == _REMOVE:
                    has_remove = True
                else:
                    has_insert = True
                i += 1
            if prev_had_insert and has_remove:
                # The open interval (prev_y, y) is a maximal slab; the
                # evaluator currently holds exactly the rectangles
                # spanning it.
                if budget is not None:
                    budget.charge()
                slabs.append((prev_y, y, _checked(evaluator.value)))
            for j in range(batch_start, i):
                _, kind, obj_id = events[j]
                if kind == _INSERT:
                    evaluator.push(obj_id)
                else:
                    evaluator.pop(obj_id)
            prev_had_insert = has_insert
            prev_y = y

    evaluator.reset()
    if stats is not None:
        stats.n_slabs += len(slabs)
        stats.n_pushes += len(rows)
    return slabs


def rows_spanning_slab(rows: Sequence[RectRow], slab: Slab) -> List[RectRow]:
    """Return the rows whose y-extent covers the (open) slab interior.

    A maximal slab contains no horizontal edge, so a rectangle intersecting
    its interior necessarily spans it end to end.
    """
    y_lo, y_hi, _ = slab
    return [row for row in rows if row[2] <= y_lo and row[3] >= y_hi]


def search_slab(
    rows: Sequence[RectRow],
    slab: Slab,
    evaluator: IncrementalEvaluator,
    best_value: float,
    stats: Optional[SearchStats] = None,
    budget: Optional[Budget] = None,
) -> Tuple[float, Optional[Point]]:
    """Sweep one maximal slab left-to-right and return the best point found.

    Implements Function *SearchMR*: because every rectangle in ``rows`` spans
    the slab vertically, the affected set of a point in the slab depends only
    on x, and candidate points are midpoints of the x-gaps at
    insertion->removal transitions.

    Args:
        rows: rectangles spanning the slab (see :func:`rows_spanning_slab`).
        slab: the slab being searched.
        evaluator: incremental evaluator for ``h``; reset on entry and exit.
        best_value: current best score; only strictly better candidates are
            returned (and all candidates are still counted in ``stats``).
        stats: optional counters (``n_candidates``, ``n_pushes``).
        budget: optional execution budget, charged one evaluation per
            candidate scored.

    Returns:
        ``(value, point)`` of the best candidate strictly better than
        ``best_value``, else ``(best_value, None)``.

    Raises:
        BudgetExceededError: when the budget expires mid-sweep (the slab's
            upper bound soundly covers the unscored candidates).
        EvaluationError: when the evaluator produces NaN.
    """
    y_lo, y_hi, _ = slab
    mid_y = (y_lo + y_hi) / 2.0

    events: List[Tuple[float, int, int]] = []
    for row in rows:
        events.append((row[0], _INSERT, row[4]))
        events.append((row[1], _REMOVE, row[4]))
    events.sort()

    evaluator.reset()
    best_point: Optional[Point] = None
    n_candidates = 0
    with active_tracer().span("sweep.search_mr", n_rows=len(rows)):
        prev_had_insert = False
        prev_x = 0.0
        i = 0
        n = len(events)
        while i < n:
            x = events[i][0]
            batch_start = i
            has_remove = False
            has_insert = False
            while i < n and events[i][0] == x:
                if events[i][1] == _REMOVE:
                    has_remove = True
                else:
                    has_insert = True
                i += 1
            if prev_had_insert and has_remove:
                n_candidates += 1
                if budget is not None:
                    budget.charge()
                value = _checked(evaluator.value)
                if value > best_value:
                    best_value = value
                    best_point = Point((prev_x + x) / 2.0, mid_y)
            for j in range(batch_start, i):
                _, kind, obj_id = events[j]
                if kind == _INSERT:
                    evaluator.push(obj_id)
                else:
                    evaluator.pop(obj_id)
            prev_had_insert = has_insert
            prev_x = x

    evaluator.reset()
    if stats is not None:
        stats.n_candidates += n_candidates
        stats.n_pushes += len(rows)
    return best_value, best_point


def count_maximal_regions(
    rows: Sequence[RectRow], slabs: Sequence[Slab]
) -> int:
    """Count the maximal regions (Definition 5) exactly.

    Used to reproduce the #MR column of Tables 4–6.  ``rows`` must be the
    *unclipped* SIRI rectangles of the whole instance (uniform size) and
    ``slabs`` its global maximal slabs.

    By Lemma 5 every maximal region intersects a maximal slab, and (because
    a maximal region's interior contains no edges) it shows up inside the
    slab as an elementary x-gap delimited by an insertion batch and a
    removal batch, with affected set equal to the gap's active set.  The
    region itself may extend *beyond* the slab vertically, so each
    candidate gap is grown to ``(max of active bottoms, min of active
    tops)`` and then checked against Definition 5: left/right boundaries
    must be left/right edges of active rectangles covering the full grown
    height, and no foreign rectangle may push an edge into the grown box.
    Regions intersecting several slabs are deduplicated by their box.
    """
    if not rows:
        return 0
    width = rows[0][1] - rows[0][0]
    height = rows[0][3] - rows[0][2]
    centers = [
        Point((row[0] + row[1]) / 2.0, (row[2] + row[3]) / 2.0) for row in rows
    ]
    grid = GridIndex(centers, cell_size=max(width, height))
    row_by_id: Dict[int, RectRow] = {row[4]: row for row in rows}

    regions: set = set()
    for slab in slabs:
        spanning = rows_spanning_slab(rows, slab)
        events: List[Tuple[float, int, int]] = []
        for idx, row in enumerate(spanning):
            events.append((row[0], _INSERT, idx))
            events.append((row[1], _REMOVE, idx))
        events.sort()

        active: set = set()
        prev_had_insert = False
        prev_x = 0.0
        i = 0
        n = len(events)
        while i < n:
            x = events[i][0]
            batch_start = i
            has_remove = False
            has_insert = False
            while i < n and events[i][0] == x:
                if events[i][1] == _REMOVE:
                    has_remove = True
                else:
                    has_insert = True
                i += 1
            if prev_had_insert and has_remove and active:
                box = _maximal_region_box(
                    prev_x, x, active, spanning, grid, row_by_id, width, height
                )
                if box is not None:
                    regions.add(box)
            for j in range(batch_start, i):
                _, kind, idx = events[j]
                if kind == _INSERT:
                    active.add(idx)
                else:
                    active.discard(idx)
            prev_had_insert = has_insert
            prev_x = x
    registry = active_registry()
    if registry.enabled:
        registry.counter(
            "brs_grid_queries_total", help="grid-index range queries served"
        ).inc(grid.n_queries)
    return len(regions)


def _maximal_region_box(
    x_lo: float,
    x_hi: float,
    active: set,
    spanning: Sequence[RectRow],
    grid: GridIndex,
    row_by_id: Dict[int, RectRow],
    width: float,
    height: float,
):
    """Validate one candidate gap against Definition 5.

    Returns the region's ``(x_lo, x_hi, y_lo, y_hi)`` box, or None if the
    grown box fails a boundary or interior condition.
    """
    y_hi = min(spanning[j][3] for j in active)
    y_lo = max(spanning[j][2] for j in active)
    if not y_lo < y_hi:
        return None
    # Left/right boundaries: a left (resp. right) edge of an active
    # rectangle covering the region's full height.
    left_ok = any(
        spanning[j][0] == x_lo and spanning[j][2] <= y_lo and spanning[j][3] >= y_hi
        for j in active
    )
    if not left_ok:
        return None
    right_ok = any(
        spanning[j][1] == x_hi and spanning[j][2] <= y_lo and spanning[j][3] >= y_hi
        for j in active
    )
    if not right_ok:
        return None
    # Interior: no rectangle (of the whole instance) may have an edge
    # strictly inside the box.  Candidates are found via the center grid:
    # a w x h rectangle overlaps the open box iff its center lies in the
    # box expanded by (w/2, h/2).
    probe = Rect(
        x_lo - width / 2.0, x_hi + width / 2.0,
        y_lo - height / 2.0, y_hi + height / 2.0,
    )
    for obj_id in grid.query_rect(probe):
        row = row_by_id[obj_id]
        vertical_edge_inside = (
            (x_lo < row[0] < x_hi or x_lo < row[1] < x_hi)
            and row[2] < y_hi
            and row[3] > y_lo
        )
        horizontal_edge_inside = (
            (y_lo < row[2] < y_hi or y_lo < row[3] < y_hi)
            and row[0] < x_hi
            and row[1] > x_lo
        )
        if vertical_edge_inside or horizontal_edge_inside:
            return None
    return (x_lo, x_hi, y_lo, y_hi)
