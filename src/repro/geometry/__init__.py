"""Geometric primitives for the BRS problem.

The BRS algorithms work over points and axis-aligned open rectangles in a
2-D plane.  This subpackage provides:

* :class:`~repro.geometry.point.Point` — an immutable 2-D point.
* :class:`~repro.geometry.rect.Rect` — an axis-aligned rectangle with *open*
  containment semantics (objects on a rectangle boundary are excluded, per
  Definition 2 of the paper).
* :func:`~repro.geometry.rect.siri_rect` — the SIRI reduction: the ``a x b``
  rectangle centered at an object (Section 4.1).
* :mod:`~repro.geometry.arrangement` — counting of arrangement cells, used to
  reproduce the #DR column of Table 4.
"""

from repro.geometry.point import Point
from repro.geometry.rect import BBox, Rect, bounding_rect, siri_rect
from repro.geometry.arrangement import count_arrangement_cells

__all__ = [
    "BBox",
    "Point",
    "Rect",
    "bounding_rect",
    "siri_rect",
    "count_arrangement_cells",
]
