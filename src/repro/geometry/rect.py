"""Axis-aligned rectangles with open containment semantics.

Definition 2 of the paper excludes objects lying exactly on the boundary of a
query rectangle, so :meth:`Rect.contains_point` is *strict* (open rectangle).
Intersection tests between rectangles, used by the sweep-line machinery, test
whether the open interiors overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``(x_min, x_max) x (y_min, y_max)``.

    The rectangle is treated as *open*: points on the boundary are outside.
    Construction validates that the rectangle is non-degenerate
    (``x_min < x_max`` and ``y_min < y_max``); a zero-area query rectangle is
    meaningless for BRS and is rejected early rather than silently returning
    empty answers.
    """

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self) -> None:
        if not (self.x_min < self.x_max and self.y_min < self.y_max):
            raise ValueError(
                "degenerate rectangle: require x_min < x_max and "
                f"y_min < y_max, got {self!r}"
            )

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Build the ``width x height`` rectangle centered at ``center``.

        This is the :math:`r_p^{a,b}` notation of the paper with
        ``height = a`` and ``width = b``.
        """
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(
            x_min=center.x - half_w,
            x_max=center.x + half_w,
            y_min=center.y - half_h,
            y_max=center.y + half_h,
        )

    @property
    def width(self) -> float:
        """Horizontal extent (the paper's ``b``)."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Vertical extent (the paper's ``a``)."""
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Center point of the rectangle."""
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains_point(self, p: Point) -> bool:
        """Return True iff ``p`` is strictly inside this rectangle."""
        return self.x_min < p.x < self.x_max and self.y_min < p.y < self.y_max

    def contains_rect(self, other: "Rect") -> bool:
        """Return True iff ``other`` lies inside this rectangle (closed)."""
        return (
            self.x_min <= other.x_min
            and other.x_max <= self.x_max
            and self.y_min <= other.y_min
            and other.y_max <= self.y_max
        )

    def intersects(self, other: "Rect") -> bool:
        """Return True iff the open interiors of the rectangles overlap."""
        return (
            self.x_min < other.x_max
            and other.x_min < self.x_max
            and self.y_min < other.y_max
            and other.y_min < self.y_max
        )

    def intersects_x_range(self, x_min: float, x_max: float) -> bool:
        """Return True iff the rectangle's open x-extent overlaps the range."""
        return self.x_min < x_max and x_min < self.x_max

    def clipped_x(self, x_min: float, x_max: float) -> "Rect":
        """Return this rectangle with its x-extent clipped to a slice.

        The slicing optimization of Section 4.5 restricts each SIRI rectangle
        to the vertical slice being processed; the y-extent is unchanged.
        """
        return Rect(
            x_min=max(self.x_min, x_min),
            x_max=min(self.x_max, x_max),
            y_min=self.y_min,
            y_max=self.y_max,
        )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """Return ``(x_min, x_max, y_min, y_max)``."""
        return (self.x_min, self.x_max, self.y_min, self.y_max)


@dataclass(frozen=True)
class BBox:
    """A *closed*, possibly degenerate, axis-aligned bounding box.

    :class:`Rect` models query rectangles and deliberately rejects
    degenerate extents; a *touched region* — the bounding box of the
    points a mutation batch inserted or deleted — can legitimately be a
    single point or a line segment, and a cached answer whose window
    merely *touches* it must still be considered stale.  Hence a second
    type with closed semantics: boundary contact counts as overlap.
    """

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self) -> None:
        if not (self.x_min <= self.x_max and self.y_min <= self.y_max):
            raise ValueError(f"inverted bounding box: {self!r}")

    @classmethod
    def of_points(cls, points: Iterable[Point]) -> "BBox":
        """Bounding box of a non-empty point collection.

        Raises:
            ValueError: if ``points`` is empty.
        """
        pts: Sequence[Point] = list(points)
        if not pts:
            raise ValueError("BBox.of_points requires at least one point")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), max(xs), min(ys), max(ys))

    def union(self, other: "BBox") -> "BBox":
        """The smallest box containing both."""
        return BBox(
            min(self.x_min, other.x_min),
            max(self.x_max, other.x_max),
            min(self.y_min, other.y_min),
            max(self.y_max, other.y_max),
        )

    def touches_rect(self, rect: Rect) -> bool:
        """Closed overlap test against a query rectangle.

        A degenerate box (single point, segment) on the rectangle's
        boundary still touches it — the conservative answer the cache
        invalidation needs.
        """
        return (
            self.x_min <= rect.x_max
            and rect.x_min <= self.x_max
            and self.y_min <= rect.y_max
            and rect.y_min <= self.y_max
        )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """Return ``(x_min, x_max, y_min, y_max)``."""
        return (self.x_min, self.x_max, self.y_min, self.y_max)


def siri_rect(obj_location: Point, a: float, b: float) -> Rect:
    """Return the SIRI rectangle of an object (Section 4.1).

    For the reduction from BRS to SIRI, each spatial object ``o`` is replaced
    by the ``a x b`` rectangle *centered at* ``o``.  By Lemma 1, a point ``p``
    lies inside this rectangle iff ``o`` lies inside the query rectangle
    centered at ``p``.

    Args:
        obj_location: location of the spatial object.
        a: query-rectangle height.
        b: query-rectangle width.
    """
    return Rect.from_center(obj_location, width=b, height=a)


def bounding_rect(points: Iterable[Point], pad: float = 0.0) -> Rect:
    """Return the minimal axis-aligned rectangle enclosing ``points``.

    Args:
        points: a non-empty iterable of points.
        pad: optional symmetric padding added to every side; use a small
            positive pad when the result must strictly contain the points
            (our rectangles are open).

    Raises:
        ValueError: if ``points`` is empty or the padded rectangle would be
            degenerate (all points on one vertical/horizontal line with
            ``pad == 0``).
    """
    pts: Sequence[Point] = list(points)
    if not pts:
        raise ValueError("bounding_rect requires at least one point")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Rect(
        x_min=min(xs) - pad,
        x_max=max(xs) + pad,
        y_min=min(ys) - pad,
        y_max=max(ys) + pad,
    )
