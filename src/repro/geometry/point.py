"""An immutable 2-D point."""

from __future__ import annotations

import math
from typing import NamedTuple


class Point(NamedTuple):
    """A point in the 2-D plane.

    ``Point`` is a :class:`~typing.NamedTuple`, so it is immutable, hashable,
    cheap to create, and unpacks like a plain ``(x, y)`` tuple::

        >>> p = Point(3.0, 4.0)
        >>> x, y = p
        >>> p.distance_to(Point(0.0, 0.0))
        5.0
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def chebyshev_to(self, other: "Point") -> float:
        """Return the Chebyshev (L-infinity) distance to ``other``.

        Useful for square-region containment checks: ``p`` lies strictly
        inside the ``s x s`` square centered at ``q`` iff
        ``p.chebyshev_to(q) < s / 2``.
        """
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)
