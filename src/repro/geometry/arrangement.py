"""Counting cells in an arrangement of axis-aligned rectangles.

Theorem 2 of the paper bounds the number of *disjoint regions* formed by the
edges of ``n`` rectangles by the number of cells in their arrangement, which
is O(n^2) in the worst case.  Table 4 reports this count (#DR) next to the
number of maximal regions (#MR) to show how much smaller the maximal-region
search space is.

The count is computed with a single left-to-right plane sweep: between two
consecutive distinct vertical edge coordinates, the strip is cut by the
horizontal edges of exactly the rectangles whose x-extent covers the strip,
producing ``2 * active + 1`` cells per strip (assuming distinct edge
coordinates, which holds almost surely for continuous coordinates and is the
paper's standing general-position assumption).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.geometry.rect import Rect


def count_arrangement_cells(rects: Iterable[Rect]) -> int:
    """Return the number of cells the rectangles cut the plane into.

    Cells outside every rectangle within a strip are included (they are
    regions of the arrangement too); the two unbounded half-plane strips to
    the left of the first and right of the last vertical edge are counted as
    one cell each, matching the convention that the empty exterior is a
    single region per strip.

    Runs in O(n log n) time for ``n`` rectangles.
    """
    events: List[Tuple[float, int]] = []
    for r in rects:
        events.append((r.x_min, +1))
        events.append((r.x_max, -1))
    if not events:
        return 1  # the whole plane
    events.sort()

    cells = 2  # the unbounded strips left of all and right of all edges
    active = 0
    i = 0
    n_events = len(events)
    while i < n_events:
        x = events[i][0]
        while i < n_events and events[i][0] == x:
            active += events[i][1]
            i += 1
        if i < n_events:  # strip between this x and the next distinct x
            cells += 2 * active + 1
    return cells
