"""Terminal visualization of datasets and result regions.

No plotting dependency is assumed offline, so this renders to ASCII: a
density map of the objects with the returned region overlaid.  Meant for
examples, debugging, and the CLI — one glance shows *where* the solver
placed the window and how that relates to the crowd.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.result import BRSResult
from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Density ramp from empty to crowded.
_RAMP = " .:-=+*#%@"


def ascii_map(
    points: Sequence[Point],
    region: Optional[Rect] = None,
    width: int = 72,
    height: int = 24,
    space: Optional[Rect] = None,
) -> str:
    """Render a density map of ``points`` with an optional region box.

    Args:
        points: object locations.
        region: a rectangle to overlay (e.g. ``result.region``).
        width: output columns.
        height: output rows.
        space: the area to render; defaults to the points' bounding box.

    Returns:
        A multi-line string; denser cells get darker ramp characters, and
        the region's outline is drawn with ``+``, ``-`` and ``|``.

    Raises:
        ValueError: on empty points or non-positive dimensions.
    """
    if not points:
        raise ValueError("nothing to draw")
    if width <= 2 or height <= 2:
        raise ValueError("width and height must exceed 2")
    if space is None:
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        pad_x = (max(xs) - min(xs)) * 0.02 or 1.0
        pad_y = (max(ys) - min(ys)) * 0.02 or 1.0
        space = Rect(min(xs) - pad_x, max(xs) + pad_x, min(ys) - pad_y, max(ys) + pad_y)

    cell_w = space.width / width
    cell_h = space.height / height
    counts = [[0] * width for _ in range(height)]
    for p in points:
        col = int((p.x - space.x_min) / cell_w)
        row = int((p.y - space.y_min) / cell_h)
        if 0 <= col < width and 0 <= row < height:
            counts[row][col] += 1

    peak = max(max(row) for row in counts) or 1
    canvas: List[List[str]] = []
    for row in counts:
        line = []
        for count in row:
            shade = _RAMP[min(len(_RAMP) - 1, round(count / peak * (len(_RAMP) - 1)))]
            line.append(shade)
        canvas.append(line)

    if region is not None:
        _draw_region(canvas, region, space, cell_w, cell_h)

    # Row 0 is the bottom of the space; print top-down.
    return "\n".join("".join(line) for line in reversed(canvas))


def _draw_region(canvas, region: Rect, space: Rect, cell_w: float, cell_h: float) -> None:
    """Overlay a rectangle outline onto the canvas, clamped to bounds."""
    height = len(canvas)
    width = len(canvas[0])

    def col_of(x: float) -> int:
        return max(0, min(width - 1, int((x - space.x_min) / cell_w)))

    def row_of(y: float) -> int:
        return max(0, min(height - 1, int((y - space.y_min) / cell_h)))

    c1, c2 = col_of(region.x_min), col_of(region.x_max)
    r1, r2 = row_of(region.y_min), row_of(region.y_max)
    for col in range(c1, c2 + 1):
        canvas[r1][col] = "-"
        canvas[r2][col] = "-"
    for row in range(r1, r2 + 1):
        canvas[row][c1] = "|"
        canvas[row][c2] = "|"
    for row, col in ((r1, c1), (r1, c2), (r2, c1), (r2, c2)):
        canvas[row][col] = "+"


def render_result(
    points: Sequence[Point],
    result: BRSResult,
    width: int = 72,
    height: int = 24,
    space: Optional[Rect] = None,
) -> str:
    """Render a solver result: density map, region box, and a caption."""
    art = ascii_map(points, region=result.region, width=width, height=height,
                    space=space)
    caption = (
        f"center=({result.point.x:.1f}, {result.point.y:.1f})  "
        f"score={result.score:.2f}  objects={len(result.object_ids)}"
    )
    return f"{art}\n{caption}"
