"""1-D maximum interval stabbing.

Inside a maximal slab every SIRI rectangle spans the slab's full height
(Definition 6 guarantees no horizontal edge crosses the slab interior), so
MaxRS restricted to a slab collapses to a one-dimensional problem: given
weighted open x-intervals, find the stabbing x maximizing the total weight of
intervals containing it.  This is the per-slab kernel of the SUM-specialized
SliceBRS adaptation of Appendix C.2.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

#: Sentinel returned when no interval exists.
_EMPTY: Tuple[float, Optional[float]] = (0.0, None)


def max_stabbing(
    intervals: Iterable[Tuple[float, float]],
    weights: Optional[Iterable[float]] = None,
) -> Tuple[float, Optional[float]]:
    """Return ``(best weight, stab x)`` for open weighted intervals.

    Args:
        intervals: ``(lo, hi)`` pairs with ``lo < hi``; intervals are open,
            so an x equal to an endpoint does not stab.
        weights: per-interval non-negative weights; all ones when omitted.

    Returns:
        The maximum total stabbed weight and an x achieving it (the midpoint
        of a maximizing gap between event coordinates), or ``(0.0, None)``
        when there are no intervals.

    Raises:
        ValueError: on a degenerate interval or negative weight.
    """
    pairs = list(intervals)
    if weights is None:
        weight_list: List[float] = [1.0] * len(pairs)
    else:
        weight_list = [float(w) for w in weights]
        if len(weight_list) != len(pairs):
            raise ValueError("weights/intervals length mismatch")
    if not pairs:
        return _EMPTY

    events: List[Tuple[float, float]] = []
    for (lo, hi), w in zip(pairs, weight_list):
        if not lo < hi:
            raise ValueError(f"degenerate interval ({lo}, {hi})")
        if w < 0:
            raise ValueError("negative weights are not supported")
        events.append((lo, +w))
        events.append((hi, -w))
    events.sort()

    best_weight = 0.0
    best_x: Optional[float] = None
    running = 0.0
    i = 0
    n = len(events)
    while i < n:
        x = events[i][0]
        while i < n and events[i][0] == x:
            running += events[i][1]
            i += 1
        if i < n and running > best_weight:
            best_weight = running
            best_x = (x + events[i][0]) / 2.0
    return best_weight, best_x
