"""A uniform grid index for rectangular range queries.

Range queries over a static point set are needed in several places: the
greedy c-cover baseline issues one per candidate (Section 5.3 discusses their
cost), result reporting evaluates ``f`` on the objects inside the returned
region, and the influence substrate maps a region to the users who check in
there.  A uniform grid gives expected O(k + cells touched) queries with no
balancing logic, which is the right tool for the mostly-uniform-scale query
rectangles of BRS workloads.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class GridIndex:
    """Uniform grid over a point set.

    Cells are half-open so every point belongs to exactly one cell.  Queries
    use the open-rectangle semantics of the paper: points on the query
    boundary are excluded.

    Built from a snapshot, the grid also supports the streaming-ingest
    mutation paths (:meth:`insert` / :meth:`delete`): object ids are stable
    (positions in insertion order, never reused), deleted objects simply
    leave their cell bucket, and — the grid having no structural
    invariant — no mutation ever forces a rebuild.
    """

    def __init__(self, points: Sequence[Point], cell_size: float) -> None:
        """Args:
        points: object locations; ids are positions in this sequence.
        cell_size: edge length of the square grid cells.  A natural choice
            is the query-rectangle scale, so a query touches O(1) cells.

        Raises:
            ValueError: if ``cell_size`` is not positive or no points given.
        """
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if not points:
            raise ValueError("cannot index zero points")
        self._points = list(points)
        self._cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for obj_id, p in enumerate(points):
            self._cells[self._cell_of(p.x, p.y)].append(obj_id)
        self._deleted: Set[int] = set()
        self._counter = None
        #: Range queries served; a plain int so the hot path stays cheap.
        #: Call sites publish it into the metrics registry in batches.
        self.n_queries = 0

    #: Below this many live objects the bucket walk beats the one-time
    #: sorted-column build, so counts stay on the object path.
    COUNT_FAST_PATH_MIN = 256

    @property
    def cell_size(self) -> float:
        """Edge length of the grid cells."""
        return self._cell_size

    @property
    def n_objects(self) -> int:
        """Live (non-deleted) objects in the index."""
        return len(self._points) - len(self._deleted)

    def insert(self, p: Point) -> int:
        """Add one object; returns its (stable, never-reused) id."""
        obj_id = len(self._points)
        self._points.append(p)
        self._cells[self._cell_of(p.x, p.y)].append(obj_id)
        self._counter = None
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Remove one object by id.

        Raises:
            ValueError: on an unknown or already-deleted id.
        """
        if not 0 <= obj_id < len(self._points) or obj_id in self._deleted:
            raise ValueError(f"unknown or deleted object id {obj_id}")
        p = self._points[obj_id]
        cell = self._cell_of(p.x, p.y)
        self._cells[cell].remove(obj_id)
        if not self._cells[cell]:
            del self._cells[cell]
        self._deleted.add(obj_id)
        self._counter = None

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (math.floor(x / self._cell_size), math.floor(y / self._cell_size))

    def query_rect(self, rect: Rect) -> List[int]:
        """Return ids of points strictly inside ``rect``."""
        self.n_queries += 1
        cx_min, cy_min = self._cell_of(rect.x_min, rect.y_min)
        cx_max, cy_max = self._cell_of(rect.x_max, rect.y_max)
        points = self._points
        result: List[int] = []
        for cx in range(cx_min, cx_max + 1):
            for cy in range(cy_min, cy_max + 1):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                for obj_id in bucket:
                    if rect.contains_point(points[obj_id]):
                        result.append(obj_id)
        return result

    def count_rect(self, rect: Rect) -> int:
        """Return the number of points strictly inside ``rect``.

        Large indexes serve counts from a lazily built
        :class:`~repro.columnar.rangecount.SortedRangeCounter` — two
        binary searches plus one vectorized mask instead of a cell-bucket
        walk.  Any mutation drops the counter, so streaming ingest never
        reads a stale count; below :attr:`COUNT_FAST_PATH_MIN` objects
        the build cost is not worth amortizing and counts stay on the
        bucket path.
        """
        if self.n_objects >= self.COUNT_FAST_PATH_MIN:
            counter = self._range_counter()
            if counter is not None:
                self.n_queries += 1
                return counter.count(rect.x_min, rect.x_max, rect.y_min, rect.y_max)
        return len(self.query_rect(rect))

    def _range_counter(self):
        """The live-object sorted-column counter, built on first use."""
        if self._counter is None:
            try:
                from repro.columnar.rangecount import SortedRangeCounter
            except ImportError:
                return None
            points = self._points
            if self._deleted:
                deleted = self._deleted
                points = [p for i, p in enumerate(points) if i not in deleted]
            self._counter = SortedRangeCounter(points)
        return self._counter

    def query_center(self, center: Point, width: float, height: float) -> List[int]:
        """Return ids inside the ``width x height`` rectangle at ``center``."""
        return self.query_rect(Rect.from_center(center, width, height))
