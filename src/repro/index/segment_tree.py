"""A lazy range-add / range-max segment tree.

This is the sweep-line workhorse of the OE algorithm [Nandy & Bhattacharya
1995] for MaxRS: rectangles are swept bottom-up, each rectangle's x-interval
is added (with its weight) when the sweep line crosses the bottom edge and
subtracted at the top edge, and the best stabbing position is the leaf
achieving the global maximum.

Leaves represent elementary x-intervals after coordinate compression; the
tree supports ``add`` on an inclusive leaf range and a global
``max_with_index`` query, both O(log n).
"""

from __future__ import annotations

from typing import Tuple


class MaxAddSegmentTree:
    """Segment tree over ``size`` leaves with lazy range addition.

    All leaf values start at zero.  ``add(lo, hi, delta)`` adds ``delta`` to
    every leaf in ``[lo, hi]``; ``max_with_index()`` returns the maximum leaf
    value and the smallest leaf index achieving it.
    """

    def __init__(self, size: int) -> None:
        """Args:
        size: number of leaves (elementary intervals); must be positive.

        Raises:
            ValueError: if ``size`` is not positive.
        """
        if size <= 0:
            raise ValueError("segment tree needs at least one leaf")
        self._size = size
        # Heap-layout recursive tree: node 1 is the root.
        self._max = [0.0] * (4 * size)
        self._lazy = [0.0] * (4 * size)
        #: Op counters; plain ints kept by the tree itself so the O(log n)
        #: hot paths never touch ambient state.  Call sites publish them
        #: into the metrics registry in batches after a sweep.
        self.n_adds = 0
        self.n_max_queries = 0

    @property
    def size(self) -> int:
        """Number of leaves."""
        return self._size

    def add(self, lo: int, hi: int, delta: float) -> None:
        """Add ``delta`` to every leaf in the inclusive range ``[lo, hi]``.

        Raises:
            IndexError: if the range is out of bounds or empty.
        """
        if not (0 <= lo <= hi < self._size):
            raise IndexError(f"bad range [{lo}, {hi}] for size {self._size}")
        self.n_adds += 1
        self._add(1, 0, self._size - 1, lo, hi, delta)

    def _add(self, node: int, n_lo: int, n_hi: int, lo: int, hi: int, delta: float) -> None:
        if lo <= n_lo and n_hi <= hi:
            self._max[node] += delta
            self._lazy[node] += delta
            return
        mid = (n_lo + n_hi) // 2
        left, right = 2 * node, 2 * node + 1
        if lo <= mid:
            self._add(left, n_lo, mid, lo, hi, delta)
        if hi > mid:
            self._add(right, mid + 1, n_hi, lo, hi, delta)
        self._max[node] = self._lazy[node] + max(self._max[left], self._max[right])

    def max_value(self) -> float:
        """Return the maximum leaf value."""
        return self._max[1]

    def max_with_index(self) -> Tuple[float, int]:
        """Return ``(max value, leaf index)`` for the global maximum.

        Ties resolve to the leftmost maximizing leaf.
        """
        self.n_max_queries += 1
        node, n_lo, n_hi = 1, 0, self._size - 1
        while n_lo < n_hi:
            mid = (n_lo + n_hi) // 2
            left, right = 2 * node, 2 * node + 1
            if self._max[left] >= self._max[right]:
                node, n_hi = left, mid
            else:
                node, n_lo = right, mid + 1
        return self._max[1], n_lo

    def value_at(self, leaf: int) -> float:
        """Return the value of one leaf (diagnostics/tests); O(log n)."""
        if not (0 <= leaf < self._size):
            raise IndexError(f"leaf {leaf} out of range for size {self._size}")
        node, n_lo, n_hi = 1, 0, self._size - 1
        total = 0.0
        while n_lo < n_hi:
            total += self._lazy[node]
            mid = (n_lo + n_hi) // 2
            if leaf <= mid:
                node, n_hi = 2 * node, mid
            else:
                node, n_lo = 2 * node + 1, mid + 1
        # A leaf's _max already includes its own lazy; ``total`` holds the
        # lazy contributions of the internal ancestors.
        return total + self._max[node]
