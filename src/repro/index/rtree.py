"""An STR-packed R-tree for rectangular range queries.

The grid index (:mod:`repro.index.grid`) is ideal when query rectangles
have a known, uniform scale — the BRS common case.  Exploratory workloads,
however, re-query the same data at wildly different scales (the paper's
1q…20q sweeps), where a height-balanced R-tree is the classic answer.

This is a bulk-loaded tree using Sort-Tile-Recursive packing
[Leutenegger et al., 1997]: sort by x, cut into vertical runs, sort each
run by y, pack leaves of ``fanout`` entries; repeat on the parent level.
Packing yields near-perfectly filled nodes with O(n log n) build, which
suits the BRS session workload where the object set is a snapshot.

The streaming-ingest layer additionally needs *incremental* maintenance:
:meth:`RTree.insert` descends by least-area-enlargement and appends to a
leaf; :meth:`RTree.delete` unhooks the id, leaving the (still sound, just
conservative) bounding boxes in place.  When a mutation would violate a
node invariant — a leaf past its fanout, or deletions outnumbering live
objects — the tree falls back to a full STR rebuild over the live ids,
so the packed-quality invariant is restored rather than patched.  Object
ids stay stable across rebuilds (positions in insertion order, never
reused); :attr:`n_rebuilds` counts the fallbacks for tests and metrics.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class _Node:
    __slots__ = ("x_min", "x_max", "y_min", "y_max", "children", "object_ids")

    def __init__(self) -> None:
        self.x_min = math.inf
        self.x_max = -math.inf
        self.y_min = math.inf
        self.y_max = -math.inf
        self.children: Optional[List["_Node"]] = None
        self.object_ids: List[int] = []

    def grow(self, x_min: float, x_max: float, y_min: float, y_max: float) -> None:
        self.x_min = min(self.x_min, x_min)
        self.x_max = max(self.x_max, x_max)
        self.y_min = min(self.y_min, y_min)
        self.y_max = max(self.y_max, y_max)


class RTree:
    """A static R-tree over points, bulk-loaded with STR packing."""

    def __init__(self, points: Sequence[Point], fanout: int = 16) -> None:
        """Args:
        points: object locations; ids are positions in this sequence.
        fanout: maximum entries per node; 8–32 are all reasonable.

        Raises:
            ValueError: on empty input or a fanout below 2.
        """
        if not points:
            raise ValueError("cannot index zero points")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self._points = list(points)
        self._fanout = fanout
        self._deleted: Set[int] = set()
        self._root = self._bulk_load(list(range(len(points))))
        #: Range queries served; a plain int so the hot path stays cheap.
        #: Call sites publish it into the metrics registry in batches.
        self.n_queries = 0
        #: Full STR rebuilds forced by a violated node invariant.
        self.n_rebuilds = 0

    def _make_leaf(self, ids: List[int]) -> _Node:
        node = _Node()
        node.object_ids = ids
        for obj_id in ids:
            p = self._points[obj_id]
            node.grow(p.x, p.x, p.y, p.y)
        return node

    def _bulk_load(self, ids: List[int]) -> _Node:
        if not ids:
            return _Node()  # empty tree: an inverted-bbox leaf matches nothing
        points = self._points
        fanout = self._fanout

        # Leaf level via Sort-Tile-Recursive.
        n_leaves = math.ceil(len(ids) / fanout)
        n_slices = math.ceil(math.sqrt(n_leaves))
        run = n_slices * fanout
        by_x = sorted(ids, key=lambda i: points[i].x)
        leaves: List[_Node] = []
        for start in range(0, len(by_x), run):
            strip = sorted(by_x[start : start + run], key=lambda i: points[i].y)
            for leaf_start in range(0, len(strip), fanout):
                leaves.append(self._make_leaf(strip[leaf_start : leaf_start + fanout]))

        # Pack parent levels until one root remains.
        level = leaves
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), fanout):
                parent = _Node()
                parent.children = level[start : start + fanout]
                for child in parent.children:
                    parent.grow(child.x_min, child.x_max, child.y_min, child.y_max)
                parents.append(parent)
            level = parents
        return level[0]

    @property
    def n_objects(self) -> int:
        """Live (non-deleted) objects in the index."""
        return len(self._points) - len(self._deleted)

    def _alive_ids(self) -> List[int]:
        return [i for i in range(len(self._points)) if i not in self._deleted]

    def _rebuild(self) -> None:
        """Fallback: repack the whole tree over the live ids (STR quality)."""
        self._root = self._bulk_load(self._alive_ids())
        self.n_rebuilds += 1

    def insert(self, p: Point) -> int:
        """Add one object; returns its (stable, never-reused) id.

        Descends by least-area-enlargement, growing bounding boxes along
        the path.  If the chosen leaf would exceed the fanout — the node
        invariant STR packing established — the whole tree is rebuilt
        instead of split in place, keeping the packed shape the query
        cost model assumes.
        """
        obj_id = len(self._points)
        self._points.append(p)
        node = self._root
        node.grow(p.x, p.x, p.y, p.y)
        while node.children:
            node = min(node.children, key=lambda c: self._enlargement(c, p))
            node.grow(p.x, p.x, p.y, p.y)
        node.object_ids.append(obj_id)
        if len(node.object_ids) > self._fanout:
            self._rebuild()
        return obj_id

    @staticmethod
    def _enlargement(node: _Node, p: Point) -> tuple:
        """(area growth, resulting area) of fitting ``p`` into ``node``."""
        x_min = min(node.x_min, p.x)
        x_max = max(node.x_max, p.x)
        y_min = min(node.y_min, p.y)
        y_max = max(node.y_max, p.y)
        new_area = (x_max - x_min) * (y_max - y_min)
        old_area = max(0.0, node.x_max - node.x_min) * max(
            0.0, node.y_max - node.y_min
        )
        return (new_area - old_area, new_area)

    def delete(self, obj_id: int) -> None:
        """Remove one object by id.

        The leaf entry is unhooked; ancestor bounding boxes are left
        unshrunk (a conservative box can only cost pruning time, never
        correctness).  Once deletions outnumber live objects, the
        accumulated slack violates the packed-tree invariant and the
        fallback rebuild compacts everything.

        Raises:
            ValueError: on an unknown or already-deleted id.
        """
        if not 0 <= obj_id < len(self._points) or obj_id in self._deleted:
            raise ValueError(f"unknown or deleted object id {obj_id}")
        p = self._points[obj_id]
        if not self._unhook(self._root, obj_id, p):
            raise ValueError(f"object id {obj_id} not present in the tree")
        self._deleted.add(obj_id)
        if len(self._deleted) > self.n_objects:
            self._rebuild()

    def _unhook(self, node: _Node, obj_id: int, p: Point) -> bool:
        """Remove ``obj_id`` from the subtree whose boxes contain ``p``."""
        if (
            p.x < node.x_min or p.x > node.x_max
            or p.y < node.y_min or p.y > node.y_max
        ):
            return False
        if node.children is None:
            if obj_id in node.object_ids:
                node.object_ids.remove(obj_id)
                return True
            return False
        return any(self._unhook(child, obj_id, p) for child in node.children)

    @property
    def height(self) -> int:
        """Tree height (1 for a single leaf)."""
        height = 1
        node = self._root
        while node.children:
            node = node.children[0]
            height += 1
        return height

    def query_rect(self, rect: Rect) -> List[int]:
        """Return ids of points strictly inside ``rect`` (open semantics)."""
        self.n_queries += 1
        result: List[int] = []
        points = self._points
        stack = [self._root]
        while stack:
            node = stack.pop()
            # Prune: the node's bounding box must overlap the open query.
            if (
                node.x_min >= rect.x_max
                or node.x_max <= rect.x_min
                or node.y_min >= rect.y_max
                or node.y_max <= rect.y_min
            ):
                continue
            if node.children is not None:
                stack.extend(node.children)
                continue
            for obj_id in node.object_ids:
                if rect.contains_point(points[obj_id]):
                    result.append(obj_id)
        return result

    def query_center(self, center: Point, width: float, height: float) -> List[int]:
        """Return ids inside the ``width x height`` rectangle at ``center``."""
        return self.query_rect(Rect.from_center(center, width, height))

    def count_rect(self, rect: Rect) -> int:
        """Return the number of points strictly inside ``rect``."""
        return len(self.query_rect(rect))
