"""An STR-packed R-tree for rectangular range queries.

The grid index (:mod:`repro.index.grid`) is ideal when query rectangles
have a known, uniform scale — the BRS common case.  Exploratory workloads,
however, re-query the same data at wildly different scales (the paper's
1q…20q sweeps), where a height-balanced R-tree is the classic answer.

This is a static, bulk-loaded tree using Sort-Tile-Recursive packing
[Leutenegger et al., 1997]: sort by x, cut into vertical runs, sort each
run by y, pack leaves of ``fanout`` entries; repeat on the parent level.
Static packing suits BRS exactly — the object set never changes during a
session — and yields near-perfectly filled nodes with O(n log n) build.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class _Node:
    __slots__ = ("x_min", "x_max", "y_min", "y_max", "children", "object_ids")

    def __init__(self) -> None:
        self.x_min = math.inf
        self.x_max = -math.inf
        self.y_min = math.inf
        self.y_max = -math.inf
        self.children: Optional[List["_Node"]] = None
        self.object_ids: List[int] = []

    def grow(self, x_min: float, x_max: float, y_min: float, y_max: float) -> None:
        self.x_min = min(self.x_min, x_min)
        self.x_max = max(self.x_max, x_max)
        self.y_min = min(self.y_min, y_min)
        self.y_max = max(self.y_max, y_max)


class RTree:
    """A static R-tree over points, bulk-loaded with STR packing."""

    def __init__(self, points: Sequence[Point], fanout: int = 16) -> None:
        """Args:
        points: object locations; ids are positions in this sequence.
        fanout: maximum entries per node; 8–32 are all reasonable.

        Raises:
            ValueError: on empty input or a fanout below 2.
        """
        if not points:
            raise ValueError("cannot index zero points")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self._points = list(points)
        self._fanout = fanout
        self._root = self._bulk_load(list(range(len(points))))
        #: Range queries served; a plain int so the hot path stays cheap.
        #: Call sites publish it into the metrics registry in batches.
        self.n_queries = 0

    def _make_leaf(self, ids: List[int]) -> _Node:
        node = _Node()
        node.object_ids = ids
        for obj_id in ids:
            p = self._points[obj_id]
            node.grow(p.x, p.x, p.y, p.y)
        return node

    def _bulk_load(self, ids: List[int]) -> _Node:
        points = self._points
        fanout = self._fanout

        # Leaf level via Sort-Tile-Recursive.
        n_leaves = math.ceil(len(ids) / fanout)
        n_slices = math.ceil(math.sqrt(n_leaves))
        run = n_slices * fanout
        by_x = sorted(ids, key=lambda i: points[i].x)
        leaves: List[_Node] = []
        for start in range(0, len(by_x), run):
            strip = sorted(by_x[start : start + run], key=lambda i: points[i].y)
            for leaf_start in range(0, len(strip), fanout):
                leaves.append(self._make_leaf(strip[leaf_start : leaf_start + fanout]))

        # Pack parent levels until one root remains.
        level = leaves
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), fanout):
                parent = _Node()
                parent.children = level[start : start + fanout]
                for child in parent.children:
                    parent.grow(child.x_min, child.x_max, child.y_min, child.y_max)
                parents.append(parent)
            level = parents
        return level[0]

    @property
    def height(self) -> int:
        """Tree height (1 for a single leaf)."""
        height = 1
        node = self._root
        while node.children:
            node = node.children[0]
            height += 1
        return height

    def query_rect(self, rect: Rect) -> List[int]:
        """Return ids of points strictly inside ``rect`` (open semantics)."""
        self.n_queries += 1
        result: List[int] = []
        points = self._points
        stack = [self._root]
        while stack:
            node = stack.pop()
            # Prune: the node's bounding box must overlap the open query.
            if (
                node.x_min >= rect.x_max
                or node.x_max <= rect.x_min
                or node.y_min >= rect.y_max
                or node.y_max <= rect.y_min
            ):
                continue
            if node.children is not None:
                stack.extend(node.children)
                continue
            for obj_id in node.object_ids:
                if rect.contains_point(points[obj_id]):
                    result.append(obj_id)
        return result

    def query_center(self, center: Point, width: float, height: float) -> List[int]:
        """Return ids inside the ``width x height`` rectangle at ``center``."""
        return self.query_rect(Rect.from_center(center, width, height))

    def count_rect(self, rect: Rect) -> int:
        """Return the number of points strictly inside ``rect``."""
        return len(self.query_rect(rect))
