"""Spatial and sweep-line index structures.

These are the substrates the BRS algorithms are built on:

* :class:`~repro.index.quadtree.Quadtree` — a region point-quadtree; drives
  the c-cover selection of CoverBRS (Section 5.3).
* :class:`~repro.index.grid.GridIndex` — a uniform grid for rectangular
  range queries; used by the greedy c-cover baseline, by result evaluation,
  and by the influence substrate's region -> users mapping.
* :class:`~repro.index.rtree.RTree` — a static STR-packed R-tree; the
  scale-agnostic alternative to the grid for exploratory workloads that
  re-query at many rectangle sizes.
* :class:`~repro.index.segment_tree.MaxAddSegmentTree` — lazy range-add /
  range-max segment tree; the core of the OE (Nandy–Bhattacharya) MaxRS
  sweep.
* :func:`~repro.index.interval.max_stabbing` — 1-D maximum interval
  stabbing; the per-slab kernel of the SUM-specialized SliceBRS adaptation
  (Appendix C.2).
"""

from repro.index.grid import GridIndex
from repro.index.interval import max_stabbing
from repro.index.quadtree import Quadtree, QuadtreeNode
from repro.index.rtree import RTree
from repro.index.segment_tree import MaxAddSegmentTree

__all__ = [
    "GridIndex",
    "MaxAddSegmentTree",
    "Quadtree",
    "QuadtreeNode",
    "RTree",
    "max_stabbing",
]
