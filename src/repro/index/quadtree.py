"""A region point-quadtree.

The quadtree recursively partitions a rectangular space into four equal
quadrants until each leaf holds at most one object (Section 5.3 of the
paper).  CoverBRS uses it to select a c-cover: the tree is *truncated* at the
depth at which a node's region fits inside a ``ca x cb`` rectangle, and each
surviving node contributes one representative point.

Coordinates shared by several objects would recurse forever, so subdivision
stops at ``max_depth``; leaves at the depth cap may hold several (coincident
or near-coincident) objects, and the cover-selection code treats each of
those objects as its own representative, which keeps the cover property
exact.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class QuadtreeNode:
    """One node of the quadtree.

    Attributes:
        rect: the node's region.
        depth: 0 for the root; children are one deeper.
        children: the four quadrant children (``None`` for a leaf), ordered
            (SW, SE, NW, NE).
        object_ids: ids stored at this node; non-empty only for leaves.
    """

    __slots__ = ("rect", "depth", "children", "object_ids")

    def __init__(self, rect: Rect, depth: int) -> None:
        self.rect = rect
        self.depth = depth
        self.children: Optional[Tuple["QuadtreeNode", ...]] = None
        self.object_ids: List[int] = []

    @property
    def is_leaf(self) -> bool:
        """True iff the node has no children."""
        return self.children is None

    @property
    def center(self) -> Point:
        """Center of the node's region (the ``v.t`` of an internal node)."""
        return self.rect.center


class Quadtree:
    """Point quadtree over a fixed space.

    The tree is built eagerly from the full point set; BRS workloads index a
    static snapshot of the objects, so there is no incremental insert.
    """

    def __init__(
        self,
        points: Sequence[Point],
        space: Optional[Rect] = None,
        max_depth: int = 40,
    ) -> None:
        """Args:
        points: object locations; object ids are positions in this sequence.
        space: the indexed space; defaults to the points' bounding box
            (slightly padded so every point is interior).
        max_depth: subdivision cap guarding against coincident points.

        Raises:
            ValueError: if ``points`` is empty, or ``space`` does not contain
                every point.
        """
        if not points:
            raise ValueError("cannot build a quadtree over zero points")
        if space is None:
            xs = [p.x for p in points]
            ys = [p.y for p in points]
            pad_x = max((max(xs) - min(xs)) * 1e-6, 1e-9)
            pad_y = max((max(ys) - min(ys)) * 1e-6, 1e-9)
            space = Rect(
                min(xs) - pad_x, max(xs) + pad_x, min(ys) - pad_y, max(ys) + pad_y
            )
        else:
            for i, p in enumerate(points):
                inside = (
                    space.x_min <= p.x <= space.x_max
                    and space.y_min <= p.y <= space.y_max
                )
                if not inside:
                    raise ValueError(f"point {i} at {p} lies outside the space")
        self._points = list(points)
        self._max_depth = max_depth
        self.root = QuadtreeNode(space, depth=0)
        self.root.object_ids = list(range(len(points)))
        self._subdivide(self.root)

    @property
    def space(self) -> Rect:
        """The indexed space (root region)."""
        return self.root.rect

    @property
    def points(self) -> Sequence[Point]:
        """The indexed points."""
        return self._points

    def _subdivide(self, node: QuadtreeNode) -> None:
        """Recursively split ``node`` until leaves hold at most one object."""
        if len(node.object_ids) <= 1 or node.depth >= self._max_depth:
            return
        r = node.rect
        mid_x = (r.x_min + r.x_max) / 2.0
        mid_y = (r.y_min + r.y_max) / 2.0
        # Stop when float precision is exhausted: quadrant rectangles would
        # be degenerate (coincident or near-coincident points end up in one
        # multi-object leaf, which the cover selection handles exactly).
        if not (r.x_min < mid_x < r.x_max and r.y_min < mid_y < r.y_max):
            return
        quadrants = (
            Rect(r.x_min, mid_x, r.y_min, mid_y),  # SW
            Rect(mid_x, r.x_max, r.y_min, mid_y),  # SE
            Rect(r.x_min, mid_x, mid_y, r.y_max),  # NW
            Rect(mid_x, r.x_max, mid_y, r.y_max),  # NE
        )
        children = tuple(
            QuadtreeNode(quad, node.depth + 1) for quad in quadrants
        )
        points = self._points
        for obj_id in node.object_ids:
            p = points[obj_id]
            # Half-open split: the midlines belong to the east/north child,
            # so each point lands in exactly one quadrant.
            index = (1 if p.x >= mid_x else 0) + (2 if p.y >= mid_y else 0)
            children[index].object_ids.append(obj_id)
        node.object_ids = []
        node.children = children
        for child in children:
            self._subdivide(child)

    def truncated_nodes(self, depth: int) -> Iterator[QuadtreeNode]:
        """Yield the frontier obtained by cutting the tree at ``depth``.

        The frontier consists of every node at exactly ``depth`` plus every
        leaf shallower than ``depth``; together their regions partition the
        space and their object sets partition the objects.  Nodes with no
        objects in their subtree are skipped.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.depth == depth or node.is_leaf:
                if node.is_leaf and not node.object_ids:
                    continue
                yield node
            else:
                stack.extend(node.children or ())

    def objects_under(self, node: QuadtreeNode) -> List[int]:
        """Return all object ids stored in ``node``'s subtree."""
        ids: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                ids.extend(current.object_ids)
            else:
                stack.extend(current.children or ())
        return ids

    def leaf_count(self) -> int:
        """Return the number of leaves (diagnostics/tests)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend(node.children or ())
        return count
