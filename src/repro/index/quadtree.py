"""A region point-quadtree.

The quadtree recursively partitions a rectangular space into four equal
quadrants until each leaf holds at most one object (Section 5.3 of the
paper).  CoverBRS uses it to select a c-cover: the tree is *truncated* at the
depth at which a node's region fits inside a ``ca x cb`` rectangle, and each
surviving node contributes one representative point.

Coordinates shared by several objects would recurse forever, so subdivision
stops at ``max_depth``; leaves at the depth cap may hold several (coincident
or near-coincident) objects, and the cover-selection code treats each of
those objects as its own representative, which keeps the cover property
exact.

For the streaming-ingest layer the tree also maintains itself
incrementally: :meth:`Quadtree.insert` descends to the owning leaf and
re-subdivides it, :meth:`Quadtree.delete` removes the id and collapses any
subtree left with at most one object back into a leaf (so the
"leaves hold at most one object" invariant survives churn).  A point
landing *outside* the indexed space violates the root invariant, and the
tree falls back to a full rebuild over an expanded space; object ids stay
stable across rebuilds and :attr:`Quadtree.n_rebuilds` counts them.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class QuadtreeNode:
    """One node of the quadtree.

    Attributes:
        rect: the node's region.
        depth: 0 for the root; children are one deeper.
        children: the four quadrant children (``None`` for a leaf), ordered
            (SW, SE, NW, NE).
        object_ids: ids stored at this node; non-empty only for leaves.
        count: objects stored in this node's whole subtree.
    """

    __slots__ = ("rect", "depth", "children", "object_ids", "count")

    def __init__(self, rect: Rect, depth: int) -> None:
        self.rect = rect
        self.depth = depth
        self.children: Optional[Tuple["QuadtreeNode", ...]] = None
        self.object_ids: List[int] = []
        self.count = 0

    @property
    def is_leaf(self) -> bool:
        """True iff the node has no children."""
        return self.children is None

    @property
    def center(self) -> Point:
        """Center of the node's region (the ``v.t`` of an internal node)."""
        return self.rect.center


class Quadtree:
    """Point quadtree, built eagerly and maintainable incrementally.

    BRS sessions index a snapshot; the streaming-ingest layer additionally
    inserts and deletes single objects between solves (see the module
    docstring for the invariants each path preserves).
    """

    def __init__(
        self,
        points: Sequence[Point],
        space: Optional[Rect] = None,
        max_depth: int = 40,
    ) -> None:
        """Args:
        points: object locations; object ids are positions in this sequence.
        space: the indexed space; defaults to the points' bounding box
            (slightly padded so every point is interior).
        max_depth: subdivision cap guarding against coincident points.

        Raises:
            ValueError: if ``points`` is empty, or ``space`` does not contain
                every point.
        """
        if not points:
            raise ValueError("cannot build a quadtree over zero points")
        if space is None:
            xs = [p.x for p in points]
            ys = [p.y for p in points]
            pad_x = max((max(xs) - min(xs)) * 1e-6, 1e-9)
            pad_y = max((max(ys) - min(ys)) * 1e-6, 1e-9)
            space = Rect(
                min(xs) - pad_x, max(xs) + pad_x, min(ys) - pad_y, max(ys) + pad_y
            )
        else:
            for i, p in enumerate(points):
                inside = (
                    space.x_min <= p.x <= space.x_max
                    and space.y_min <= p.y <= space.y_max
                )
                if not inside:
                    raise ValueError(f"point {i} at {p} lies outside the space")
        self._points = list(points)
        self._max_depth = max_depth
        self._deleted: Set[int] = set()
        #: Full rebuilds forced by an out-of-space insert.
        self.n_rebuilds = 0
        self.root = QuadtreeNode(space, depth=0)
        self.root.object_ids = list(range(len(points)))
        self.root.count = len(points)
        self._subdivide(self.root)

    @property
    def space(self) -> Rect:
        """The indexed space (root region)."""
        return self.root.rect

    @property
    def points(self) -> Sequence[Point]:
        """The indexed points (deleted ids stay as positional tombstones)."""
        return self._points

    @property
    def n_objects(self) -> int:
        """Live (non-deleted) objects in the index."""
        return len(self._points) - len(self._deleted)

    def _subdivide(self, node: QuadtreeNode) -> None:
        """Recursively split ``node`` until leaves hold at most one object."""
        if len(node.object_ids) <= 1 or node.depth >= self._max_depth:
            return
        r = node.rect
        mid_x = (r.x_min + r.x_max) / 2.0
        mid_y = (r.y_min + r.y_max) / 2.0
        # Stop when float precision is exhausted: quadrant rectangles would
        # be degenerate (coincident or near-coincident points end up in one
        # multi-object leaf, which the cover selection handles exactly).
        if not (r.x_min < mid_x < r.x_max and r.y_min < mid_y < r.y_max):
            return
        quadrants = (
            Rect(r.x_min, mid_x, r.y_min, mid_y),  # SW
            Rect(mid_x, r.x_max, r.y_min, mid_y),  # SE
            Rect(r.x_min, mid_x, mid_y, r.y_max),  # NW
            Rect(mid_x, r.x_max, mid_y, r.y_max),  # NE
        )
        children = tuple(
            QuadtreeNode(quad, node.depth + 1) for quad in quadrants
        )
        points = self._points
        for obj_id in node.object_ids:
            p = points[obj_id]
            # Half-open split: the midlines belong to the east/north child,
            # so each point lands in exactly one quadrant.
            index = (1 if p.x >= mid_x else 0) + (2 if p.y >= mid_y else 0)
            children[index].object_ids.append(obj_id)
        node.object_ids = []
        node.children = children
        for child in children:
            child.count = len(child.object_ids)
            self._subdivide(child)

    # -- incremental maintenance ------------------------------------------

    @staticmethod
    def _child_index(node: QuadtreeNode, p: Point) -> int:
        """Quadrant of ``p`` under ``node``, matching the subdivision rule."""
        r = node.rect
        mid_x = (r.x_min + r.x_max) / 2.0
        mid_y = (r.y_min + r.y_max) / 2.0
        return (1 if p.x >= mid_x else 0) + (2 if p.y >= mid_y else 0)

    def insert(self, p: Point) -> int:
        """Add one object; returns its (stable, never-reused) id.

        A point inside the space descends to its leaf, which is then
        re-subdivided to restore the one-object-per-leaf invariant.  A
        point *outside* the space cannot be placed without violating the
        root invariant, so the tree rebuilds itself over an expanded
        space — the differential-tested fallback path.
        """
        obj_id = len(self._points)
        self._points.append(p)
        r = self.root.rect
        if not (r.x_min <= p.x <= r.x_max and r.y_min <= p.y <= r.y_max):
            self._rebuild(self._expanded_space(p))
            return obj_id
        node = self.root
        node.count += 1
        while not node.is_leaf:
            node = node.children[self._child_index(node, p)]
            node.count += 1
        node.object_ids.append(obj_id)
        self._subdivide(node)
        return obj_id

    def delete(self, obj_id: int) -> None:
        """Remove one object by id, collapsing emptied subtrees to leaves.

        Raises:
            ValueError: on an unknown or already-deleted id.
        """
        if not 0 <= obj_id < len(self._points) or obj_id in self._deleted:
            raise ValueError(f"unknown or deleted object id {obj_id}")
        self._remove(self.root, obj_id, self._points[obj_id])
        self._deleted.add(obj_id)

    def _remove(self, node: QuadtreeNode, obj_id: int, p: Point) -> None:
        node.count -= 1
        if node.is_leaf:
            if obj_id not in node.object_ids:
                raise ValueError(f"object id {obj_id} not present in the tree")
            node.object_ids.remove(obj_id)
            return
        self._remove(node.children[self._child_index(node, p)], obj_id, p)
        if node.count <= 1:
            # One object (or none) left under an internal node: fold the
            # subtree back into a leaf so the structure stays minimal.
            node.object_ids = self.objects_under(node)
            node.children = None

    def _expanded_space(self, p: Point) -> Rect:
        """The current space grown (with slack) to contain ``p``."""
        r = self.root.rect
        pad_x = max((r.x_max - r.x_min) * 0.5, abs(p.x) * 1e-6, 1e-9)
        pad_y = max((r.y_max - r.y_min) * 0.5, abs(p.y) * 1e-6, 1e-9)
        return Rect(
            min(r.x_min, p.x - pad_x),
            max(r.x_max, p.x + pad_x),
            min(r.y_min, p.y - pad_y),
            max(r.y_max, p.y + pad_y),
        )

    def _rebuild(self, space: Rect) -> None:
        """Fallback: rebuild the whole tree over ``space`` from live ids."""
        alive = [i for i in range(len(self._points)) if i not in self._deleted]
        self.root = QuadtreeNode(space, depth=0)
        self.root.object_ids = alive
        self.root.count = len(alive)
        self._subdivide(self.root)
        self.n_rebuilds += 1

    def truncated_nodes(self, depth: int) -> Iterator[QuadtreeNode]:
        """Yield the frontier obtained by cutting the tree at ``depth``.

        The frontier consists of every node at exactly ``depth`` plus every
        leaf shallower than ``depth``; together their regions partition the
        space and their object sets partition the objects.  Nodes with no
        objects in their subtree are skipped.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.count == 0:
                continue  # nothing in the subtree (empty leaf or post-delete)
            if node.depth == depth or node.is_leaf:
                yield node
            else:
                stack.extend(node.children or ())

    def objects_under(self, node: QuadtreeNode) -> List[int]:
        """Return all object ids stored in ``node``'s subtree."""
        ids: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                ids.extend(current.object_ids)
            else:
                stack.extend(current.children or ())
        return ids

    def leaf_count(self) -> int:
        """Return the number of leaves (diagnostics/tests)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend(node.children or ())
        return count
