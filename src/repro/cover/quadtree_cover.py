"""Quadtree-based c-cover selection (Function *Select*, Section 5.3).

The quadtree halves the space per level, so a node at depth ``l`` has a
``Width/2^l x Height/2^l`` region.  Truncating the tree at the smallest depth
whose regions fit *strictly* inside a ``cb x ca`` rectangle and taking one
representative per frontier node yields a c-cover in O(n) time:

* an internal node at the truncation depth contributes its region's center
  and represents every object in its subtree (all within the region, hence
  strictly within the ``ca x cb`` rectangle at the center — Lemma 12);
* a leaf contributes its object(s), each representing itself (an object
  trivially lies inside any rectangle centered at it).

We use a strict fit (``Width/2^l < cb``) where the paper's formula allows
equality: our rectangles are open, so an object on a region boundary would
otherwise sit exactly on the covering rectangle's boundary and be excluded.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cover.selection import CoverSelection
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.quadtree import Quadtree
from repro.runtime.errors import InvalidQueryError


def cover_level(space: Rect, c: float, a: float, b: float, max_level: int = 64) -> int:
    """Return the smallest depth whose quadtree regions fit in ``ca x cb``.

    This is the paper's ``l = max(ceil(log2(Height/(c a))),
    ceil(log2(Width/(c b))))`` computed by halving, which avoids
    floating-point log edge cases and enforces a strict fit.

    Raises:
        ValueError: if ``c`` is not in (0, 1) or the sizes are not positive.
    """
    if not 0.0 < c < 1.0:
        raise InvalidQueryError(f"c must be in (0, 1), got {c}")
    if a <= 0 or b <= 0:
        raise InvalidQueryError("query rectangle must have positive size")
    width, height = space.width, space.height
    level = 0
    while (width >= c * b or height >= c * a) and level < max_level:
        width /= 2.0
        height /= 2.0
        level += 1
    return level


def select_cover(
    points: Sequence[Point],
    c: float,
    a: float,
    b: float,
    quadtree: Optional[Quadtree] = None,
) -> CoverSelection:
    """Select a c-cover of ``points`` for an ``a x b`` query.

    Args:
        points: object locations.
        c: cover parameter in (0, 1); the paper evaluates 1/3 and 1/2.
        a: query-rectangle height.
        b: query-rectangle width.
        quadtree: pre-built index over exactly these points.  In the
            exploratory-search setting the quadtree is built once per
            dataset and reused across query sizes; pass it here to skip the
            rebuild.

    Returns:
        The cover with its representation assignment.

    Raises:
        ValueError: on empty input or invalid parameters.
    """
    if quadtree is None:
        quadtree = Quadtree(points)
    level = cover_level(quadtree.space, c, a, b)

    rep_points: List[Point] = []
    groups: List[List[int]] = []
    for node in quadtree.truncated_nodes(level):
        if node.is_leaf:
            # One representative per object: a leaf shallower than the
            # truncation depth has a region too large for the cover
            # guarantee, and a depth-capped leaf may hold several coincident
            # objects — self-representation is exact in both cases.
            for obj_id in node.object_ids:
                rep_points.append(points[obj_id])
                groups.append([obj_id])
        else:
            rep_points.append(node.center)
            groups.append(quadtree.objects_under(node))
    return CoverSelection(points=rep_points, groups=groups, c=c, level=level)
