"""Greedy c-cover selection (the baseline of Section 5.3).

Finding a minimum c-cover is NP-hard (Theorem 3); restricting candidate
centers to the objects themselves, greedy set cover picks, in each round, the
object whose ``ca x cb`` neighborhood contains the most still-uncovered
objects.  The paper rejects this baseline for its O(n^2 log n) worst case but
it remains the quality yardstick: our benchmarks compare its cover size
against the quadtree heuristic's.

The implementation uses *lazy* greedy: stale neighborhood counts sit in a
max-heap and are refreshed only when popped, which is valid because the
uncovered-count objective only ever decreases as other picks cover objects.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.cover.selection import CoverSelection
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex
from repro.runtime.errors import InvalidQueryError


def greedy_cover(points: Sequence[Point], c: float, a: float, b: float) -> CoverSelection:
    """Select a c-cover greedily, using the objects as candidate centers.

    Every object strictly covers itself, so object-centered rectangles
    always suffice for a cover (unlike arbitrary centers, no feasibility
    issue arises from the strict containment semantics).

    Raises:
        ValueError: on empty input or invalid parameters.
    """
    if not 0.0 < c < 1.0:
        raise InvalidQueryError(f"c must be in (0, 1), got {c}")
    if not points:
        raise InvalidQueryError("cannot cover zero points")

    width = c * b
    height = c * a
    grid = GridIndex(points, cell_size=max(width, height))

    def neighborhood(obj_id: int) -> List[int]:
        rect = Rect.from_center(points[obj_id], width=width, height=height)
        hits = grid.query_rect(rect)
        if obj_id not in hits:  # strict containment excludes nothing here,
            hits.append(obj_id)  # but guard against float edge cases
        return hits

    uncovered = set(range(len(points)))
    # (negative stale count, object id); counts start at the full
    # neighborhood size, an upper bound on the true uncovered count.
    heap = [(-len(neighborhood(i)), i) for i in range(len(points))]
    heapq.heapify(heap)

    rep_points: List[Point] = []
    groups: List[List[int]] = []
    while uncovered:
        neg_count, obj_id = heapq.heappop(heap)
        fresh = [other for other in neighborhood(obj_id) if other in uncovered]
        if not fresh:
            continue
        if len(fresh) < -neg_count and heap and -heap[0][0] > len(fresh):
            # Stale entry: someone else covered part of this neighborhood
            # and a better candidate may exist; refresh and retry.
            heapq.heappush(heap, (-len(fresh), obj_id))
            continue
        rep_points.append(points[obj_id])
        groups.append(fresh)
        uncovered.difference_update(fresh)
    return CoverSelection(points=rep_points, groups=groups, c=c, level=0)
