"""Common result type for c-cover selection algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.geometry.point import Point
from repro.runtime.errors import InternalInvariantError


@dataclass
class CoverSelection:
    """A c-cover together with its representation assignment.

    Attributes:
        points: the representative points ``T``.
        groups: ``groups[j]`` is ``D(t_j)`` — the original object ids
            represented by the j-th point.  The groups partition the
            original objects (each object is represented exactly once,
            Section 5.4).
        c: the cover parameter used.
        level: quadtree truncation depth (0 for non-quadtree selectors).
    """

    points: List[Point]
    groups: List[List[int]]
    c: float
    level: int = 0

    def __post_init__(self) -> None:
        if len(self.points) != len(self.groups):
            raise InternalInvariantError(
                f"{len(self.points)} representatives but {len(self.groups)} groups"
            )

    @property
    def size(self) -> int:
        """|T| — the number of representatives."""
        return len(self.points)

    def covers(self, objects: Sequence[Point], a: float, b: float) -> bool:
        """Check Definition 7 against the assignment: every object must lie
        strictly inside the ``ca x cb`` rectangle centered at its own
        representative.  Used by tests and by ``validate`` modes.
        """
        half_w = self.c * b / 2.0
        half_h = self.c * a / 2.0
        for rep, group in zip(self.points, self.groups):
            for obj_id in group:
                p = objects[obj_id]
                if not (abs(p.x - rep.x) < half_w and abs(p.y - rep.y) < half_h):
                    return False
        covered = {obj_id for group in self.groups for obj_id in group}
        return covered == set(range(len(objects)))
