"""c-cover selection for the CoverBRS approximate algorithm (Section 5).

A *c-cover* of the objects ``O`` is a point set ``T`` such that every object
lies strictly inside the ``ca x cb`` rectangle centered at some point of
``T`` (Definition 7).  This subpackage provides:

* :func:`~repro.cover.quadtree_cover.select_cover` — the paper's
  quadtree-based heuristic (Function *Select*), O(n).
* :func:`~repro.cover.greedy_cover.greedy_cover` — the classic greedy
  set-cover baseline the paper discusses and rejects on complexity grounds;
  kept as a quality reference and for the ablation benchmarks.
* :class:`~repro.cover.selection.CoverSelection` — the common result type:
  representative points plus the represented group ``D(t)`` of each.
"""

from repro.cover.greedy_cover import greedy_cover
from repro.cover.quadtree_cover import cover_level, select_cover
from repro.cover.selection import CoverSelection

__all__ = ["CoverSelection", "cover_level", "greedy_cover", "select_cover"]
