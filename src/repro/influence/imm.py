"""Greedy influence maximization over RR-set coverage.

The classic influence-maximization problem — pick k seed *users* to
maximize expected spread — is the unconstrained cousin of the most
influential *region* search: a region can only seed the users who happen
to check in inside it.  Solving both on the same RR-set sample quantifies
the price of the geographic constraint, which is how the benchmarks put
the region results in context.

Greedy on RR-set coverage enjoys the (1 - 1/e) guarantee (coverage is
submodular monotone); the implementation is the standard lazy-greedy
(CELF) variant: stale marginal gains wait in a max-heap and are refreshed
only when popped, valid because gains only shrink as the selection grows.
"""

from __future__ import annotations

import heapq
from typing import List, Set, Tuple

from repro.influence.ris import RISEstimator


def greedy_seed_selection(
    estimator: RISEstimator, k: int
) -> Tuple[List[int], float]:
    """Pick ``k`` seed users greedily maximizing estimated spread.

    Args:
        estimator: an RR-set sample (any user may be a seed).
        k: number of seeds; capped at the number of users.

    Returns:
        ``(seeds, estimated spread)`` with seeds in selection order.

    Raises:
        ValueError: if ``k`` is not positive.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n_users = estimator.n_users

    covered: Set[int] = set()
    # (negative stale gain, user). Initial gains are exact.
    heap = [
        (-len(estimator.rr_ids_of_user(user)), user) for user in range(n_users)
    ]
    heapq.heapify(heap)

    seeds: List[int] = []
    while heap and len(seeds) < k:
        neg_gain, user = heapq.heappop(heap)
        fresh_gain = sum(
            1 for rr_id in estimator.rr_ids_of_user(user) if rr_id not in covered
        )
        if heap and fresh_gain < -heap[0][0]:
            # Stale: someone else may now be better; refresh and retry.
            if fresh_gain > 0:
                heapq.heappush(heap, (-fresh_gain, user))
            continue
        if fresh_gain == 0 and covered:
            break  # nobody adds coverage anymore
        seeds.append(user)
        covered.update(estimator.rr_ids_of_user(user))
    return seeds, estimator.scale * len(covered)
