"""User/POI check-ins and what the influence application derives from them.

The most-influential-region application assumes a regional campaign directly
reaches the users who visit the region: the seed set of a region is the set
of users with at least one check-in at a POI inside it.  Check-ins also
calibrate edge probabilities — following the paper's setup, the probability
that ``u`` activates ``v`` reflects how much of ``v``'s check-in activity
happens at places ``u`` also visits.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.influence.graph import Edge, SocialGraph


class CheckinTable:
    """Check-ins as ``(user, poi)`` visit pairs with multiplicities."""

    def __init__(self, n_users: int, n_pois: int, visits: Iterable[Tuple[int, int]]) -> None:
        """Args:
        n_users: number of users.
        n_pois: number of POIs (the BRS spatial objects).
        visits: ``(user, poi)`` pairs, one per check-in; repeats allowed.

        Raises:
            ValueError: on an id out of range.
        """
        self._n_users = n_users
        self._n_pois = n_pois
        self._visit_counts: Counter = Counter()
        users_of: Dict[int, Set[int]] = defaultdict(set)
        pois_of: Dict[int, Set[int]] = defaultdict(set)
        n_visits = 0
        for user, poi in visits:
            if not 0 <= user < n_users:
                raise ValueError(f"user {user} out of range")
            if not 0 <= poi < n_pois:
                raise ValueError(f"poi {poi} out of range")
            self._visit_counts[(user, poi)] += 1
            users_of[poi].add(user)
            pois_of[user].add(poi)
            n_visits += 1
        self._n_visits = n_visits
        self._users_of: Dict[int, FrozenSet[int]] = {
            poi: frozenset(users) for poi, users in users_of.items()
        }
        self._pois_of: Dict[int, FrozenSet[int]] = {
            user: frozenset(pois) for user, pois in pois_of.items()
        }

    @property
    def n_users(self) -> int:
        """Number of users."""
        return self._n_users

    @property
    def n_pois(self) -> int:
        """Number of POIs."""
        return self._n_pois

    @property
    def n_checkins(self) -> int:
        """Total check-ins including repeats."""
        return self._n_visits

    def visit_counts(self) -> Dict[Tuple[int, int], int]:
        """Return ``(user, poi) -> check-in count`` (a copy)."""
        return dict(self._visit_counts)

    def users_of_poi(self, poi: int) -> FrozenSet[int]:
        """Users with at least one check-in at ``poi``."""
        return self._users_of.get(poi, frozenset())

    def pois_of_user(self, user: int) -> FrozenSet[int]:
        """POIs the user has checked in at."""
        return self._pois_of.get(user, frozenset())

    def checkins_of_user(self, user: int) -> int:
        """Total check-ins made by ``user``."""
        return sum(
            count
            for (visitor, _), count in self._visit_counts.items()
            if visitor == user
        )

    def seed_users(self, pois: Iterable[int]) -> Set[int]:
        """The seed set of a region: users visiting any of the given POIs."""
        seeds: Set[int] = set()
        for poi in pois:
            seeds |= self._users_of.get(poi, frozenset())
        return seeds

    def checkin_ratio_probabilities(self, friendships: Iterable[Tuple[int, int]]) -> List[Edge]:
        """Derive IC probabilities from check-in behaviour (Appendix C.1).

        For a directed friendship ``(u, v)``, the probability that ``u``
        activates ``v`` is the fraction of ``v``'s check-ins made at POIs
        that ``u`` also visits — the more of ``v``'s activity happens at
        places ``u`` frequents, the more exposed ``v`` is to ``u``.  Users
        without check-ins get probability 0.
        """
        per_user_total: Counter = Counter()
        for (user, _), count in self._visit_counts.items():
            per_user_total[user] += count

        edges: List[Edge] = []
        for u, v in friendships:
            total_v = per_user_total.get(v, 0)
            if total_v == 0:
                edges.append((u, v, 0.0))
                continue
            shared = self._pois_of.get(u, frozenset()) & self._pois_of.get(v, frozenset())
            shared_visits = sum(self._visit_counts[(v, poi)] for poi in shared)
            edges.append((u, v, shared_visits / total_v))
        return edges

    def build_graph(self, friendships: Sequence[Tuple[int, int]]) -> SocialGraph:
        """Build the IC graph with check-in-ratio probabilities."""
        return SocialGraph(self._n_users, self.checkin_ratio_probabilities(friendships))
