"""A directed social graph with edge propagation probabilities."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

#: (source user, target user, propagation probability)
Edge = Tuple[int, int, float]


class SocialGraph:
    """Directed graph over users ``0..n_users-1`` with IC probabilities.

    Edge ``(u, v, p)`` means an active ``u`` activates ``v`` with
    probability ``p`` (one chance, per the Independent Cascade model).  Both
    adjacency directions are materialized: forward lists drive the IC
    simulation, reverse lists drive RR-set sampling.
    """

    def __init__(self, n_users: int, edges: Iterable[Edge]) -> None:
        """Args:
        n_users: number of users.
        edges: directed edges with probabilities in [0, 1].  Duplicate
            (u, v) pairs keep the last probability given.

        Raises:
            ValueError: on an endpoint out of range or probability outside
                [0, 1].
        """
        if n_users <= 0:
            raise ValueError("graph needs at least one user")
        self._n_users = n_users
        unique: Dict[Tuple[int, int], float] = {}
        for u, v, p in edges:
            if not (0 <= u < n_users and 0 <= v < n_users):
                raise ValueError(f"edge ({u}, {v}) endpoint out of range")
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability {p} of edge ({u}, {v}) not in [0, 1]")
            unique[(u, v)] = p
        self._out: List[List[Tuple[int, float]]] = [[] for _ in range(n_users)]
        self._in: List[List[Tuple[int, float]]] = [[] for _ in range(n_users)]
        for (u, v), p in unique.items():
            self._out[u].append((v, p))
            self._in[v].append((u, p))

    @property
    def n_users(self) -> int:
        """Number of users (nodes)."""
        return self._n_users

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return sum(len(neighbors) for neighbors in self._out)

    def out_neighbors(self, user: int) -> Sequence[Tuple[int, float]]:
        """Return ``(target, probability)`` pairs of edges leaving ``user``."""
        return self._out[user]

    def in_neighbors(self, user: int) -> Sequence[Tuple[int, float]]:
        """Return ``(source, probability)`` pairs of edges entering ``user``."""
        return self._in[user]

    def in_degree(self, user: int) -> int:
        """Number of edges entering ``user``."""
        return len(self._in[user])

    def with_weighted_cascade(self) -> "SocialGraph":
        """Return a copy under the weighted-cascade model: ``p = 1/indeg(v)``.

        A standard probability assignment when no behavioural signal is
        available; the dataset generators use check-in ratios instead when
        check-ins exist (see :meth:`CheckinTable.checkin_ratio_probabilities`).
        """
        edges = [
            (u, v, 1.0 / len(self._in[v]))
            for v in range(self._n_users)
            for (u, _) in self._in[v]
        ]
        return SocialGraph(self._n_users, edges)
