"""Reverse Influence Sampling (RIS) and the influence score function.

RIS [Borgs et al.; Tang et al.] estimates IC spread through *reverse
reachable (RR) sets*: an RR set is sampled by picking a uniform target user
and walking the graph backwards, crossing each incoming edge independently
with its probability.  For any seed set ``S``,

    E[spread(S)] ~= n_users * (# RR sets intersecting S) / (# RR sets)

"intersects at least one RR set" is a coverage structure, so the influence
of a *region* — the spread of the users checking in inside it — is a
weighted coverage function over RR-set ids: each POI covers the RR sets its
visitors appear in.  That puts Application 1 in exactly the submodular
monotone form the BRS solvers consume, with O(delta) sweep-line updates.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.functions.coverage import CoverageFunction
from repro.influence.checkins import CheckinTable
from repro.influence.graph import SocialGraph


def generate_rr_sets(
    graph: SocialGraph, n_sets: int, rng: Optional[random.Random] = None
) -> List[FrozenSet[int]]:
    """Sample ``n_sets`` reverse reachable sets.

    Each set contains the users that reach a uniformly random target through
    edges kept independently with their propagation probabilities (the
    target itself always belongs to its RR set).

    Raises:
        ValueError: if ``n_sets`` is not positive.
    """
    if n_sets <= 0:
        raise ValueError("n_sets must be positive")
    rng = rng or random.Random(0)
    rr_sets: List[FrozenSet[int]] = []
    for _ in range(n_sets):
        target = rng.randrange(graph.n_users)
        reached: Set[int] = {target}
        frontier = [target]
        while frontier:
            next_frontier = []
            for user in frontier:
                for source, p in graph.in_neighbors(user):
                    if source not in reached and rng.random() < p:
                        reached.add(source)
                        next_frontier.append(source)
            frontier = next_frontier
        rr_sets.append(frozenset(reached))
    return rr_sets


class RISEstimator:
    """Spread estimation over a fixed RR-set sample."""

    def __init__(self, n_users: int, rr_sets: Sequence[FrozenSet[int]]) -> None:
        """Args:
        n_users: number of users in the graph the sets were sampled from.
        rr_sets: the sampled RR sets.

        Raises:
            ValueError: if there are no RR sets.
        """
        if not rr_sets:
            raise ValueError("need at least one RR set")
        self._n_users = n_users
        self._rr_sets = list(rr_sets)
        # user -> ids of RR sets containing the user.
        self._memberships: List[List[int]] = [[] for _ in range(n_users)]
        for rr_id, rr in enumerate(self._rr_sets):
            for user in rr:
                self._memberships[user].append(rr_id)

    @property
    def n_users(self) -> int:
        """Number of users in the underlying graph."""
        return self._n_users

    @property
    def n_rr_sets(self) -> int:
        """Size of the RR-set sample."""
        return len(self._rr_sets)

    @property
    def scale(self) -> float:
        """``n_users / n_rr_sets`` — covered-set count to spread estimate."""
        return self._n_users / len(self._rr_sets)

    def rr_ids_of_user(self, user: int) -> Sequence[int]:
        """RR-set ids containing ``user``."""
        return self._memberships[user]

    def spread(self, seeds: Iterable[int]) -> float:
        """Estimated expected spread of a seed set."""
        covered: Set[int] = set()
        for user in set(seeds):
            covered.update(self._memberships[user])
        return self.scale * len(covered)


class InfluenceFunction(CoverageFunction):
    """Region-influence score: spread of the users visiting the POIs.

    A :class:`~repro.functions.coverage.CoverageFunction` whose labels are
    RR-set ids — POI ``o`` covers every RR set containing one of its
    visitors — scaled by ``n_users / n_rr_sets`` so values are expected
    influenced-user counts.
    """

    def __init__(self, checkins: CheckinTable, estimator: RISEstimator) -> None:
        """Args:
        checkins: maps POIs to their visiting users.
        estimator: RR-set sample over the same user population.
        """
        label_sets = []
        for poi in range(checkins.n_pois):
            covered: Set[int] = set()
            for user in checkins.users_of_poi(poi):
                covered.update(estimator.rr_ids_of_user(user))
            label_sets.append(covered)
        super().__init__(label_sets, scale=estimator.scale)
        self._checkins = checkins
        self._estimator = estimator

    @property
    def estimator(self) -> RISEstimator:
        """The RR-set estimator backing this function."""
        return self._estimator

    @property
    def checkins(self) -> CheckinTable:
        """The check-in table backing this function."""
        return self._checkins
