"""Forward Monte-Carlo simulation of the Independent Cascade model.

Used as ground truth in tests: the RIS estimator of :mod:`repro.influence.ris`
must agree with direct simulation within sampling error.  (The solvers never
call this — forward simulation inside a sweep would be hopeless; that is the
entire point of the RIS reduction.)
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Set

from repro.influence.graph import SocialGraph


def simulate_ic(
    graph: SocialGraph, seeds: Iterable[int], rng: Optional[random.Random] = None
) -> Set[int]:
    """Run one IC cascade and return the activated users (seeds included).

    Each newly activated user gets a single chance to activate each inactive
    out-neighbour, independently with the edge probability; the process
    stops when a round activates nobody.
    """
    rng = rng or random.Random(0)
    active: Set[int] = set(seeds)
    frontier = list(active)
    while frontier:
        next_frontier = []
        for user in frontier:
            for target, p in graph.out_neighbors(user):
                if target not in active and rng.random() < p:
                    active.add(target)
                    next_frontier.append(target)
        frontier = next_frontier
    return active


def estimate_spread_mc(
    graph: SocialGraph,
    seeds: Iterable[int],
    n_simulations: int = 1000,
    rng: Optional[random.Random] = None,
) -> float:
    """Estimate the expected cascade size by repeated simulation.

    Args:
        graph: the IC graph.
        seeds: initially active users.
        n_simulations: Monte-Carlo repetitions; the standard error shrinks
            as ``1/sqrt(n_simulations)``.
        rng: source of randomness (seed it for reproducibility).

    Raises:
        ValueError: if ``n_simulations`` is not positive.
    """
    if n_simulations <= 0:
        raise ValueError("n_simulations must be positive")
    rng = rng or random.Random(0)
    seed_list = list(seeds)
    total = 0
    for _ in range(n_simulations):
        total += len(simulate_ic(graph, seed_list, rng))
    return total / n_simulations
