"""Influence-propagation substrate for *most influential region* search.

Application 1 of the paper scores a region by the expected number of users
influenced when everyone who checks in inside the region is seeded under the
Independent Cascade model.  The pieces:

* :class:`~repro.influence.graph.SocialGraph` — directed, probability-
  weighted user graph.
* :class:`~repro.influence.checkins.CheckinTable` — user/POI check-ins; maps
  a set of POIs to its seed users and derives propagation probabilities.
* :mod:`~repro.influence.ic_model` — forward Monte-Carlo IC simulation
  (ground truth for tests).
* :mod:`~repro.influence.ris` — Reverse Influence Sampling: RR-set
  generation and the coverage-form spread estimator, which is exactly the
  submodular monotone ``f`` the BRS solvers consume (the paper adopts the
  same estimator [1, 24]).
"""

from repro.influence.checkins import CheckinTable
from repro.influence.graph import SocialGraph
from repro.influence.ic_model import estimate_spread_mc, simulate_ic
from repro.influence.imm import greedy_seed_selection
from repro.influence.ris import InfluenceFunction, RISEstimator, generate_rr_sets

__all__ = [
    "CheckinTable",
    "InfluenceFunction",
    "RISEstimator",
    "SocialGraph",
    "estimate_spread_mc",
    "generate_rr_sets",
    "greedy_seed_selection",
    "simulate_ic",
]
