"""Suppression comments: ``# brs: noqa[RULE]`` and ``# brs: noqa-file[RULE]``.

Two escape hatches, both explicit about *which* rule they silence:

* **Line level** — a ``# brs: noqa[BRS001]`` comment on the flagged line
  suppresses that rule there.  Several rules separate with commas
  (``# brs: noqa[BRS001,BRS004]``); a bare ``# brs: noqa`` silences every
  rule on the line (discouraged — prefer naming the rule).
* **File level** — a ``# brs: noqa-file[BRS002]`` comment anywhere in the
  file (conventionally near the top, with a justification) exempts the
  whole file from the named rules.  There is deliberately no bare
  ``noqa-file``: blanket-exempting a file from *all* invariants is never
  the right call.

Comments are found with :mod:`tokenize`, not string search, so a noqa
marker inside a string literal is inert.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

#: Matches the whole suppression comment.  Group 1 is "-file" or empty,
#: group 2 the bracketed rule list (absent for a bare line-level noqa).
_NOQA_RE = re.compile(
    r"#\s*brs:\s*noqa(-file)?\s*(?:\[\s*([A-Za-z0-9_,\s]+?)\s*\])?",
)

#: Sentinel rule set meaning "every rule" (bare line-level ``noqa``).
ALL_RULES: FrozenSet[str] = frozenset({"*"})


@dataclass
class SuppressionIndex:
    """Per-file view of every suppression comment.

    Attributes:
        line_rules: line number -> rule ids suppressed on that line
            (:data:`ALL_RULES` for a bare ``noqa``).
        file_rules: rule ids suppressed for the whole file.
    """

    line_rules: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_rules: FrozenSet[str] = frozenset()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` at ``line`` is silenced by a comment."""
        if rule_id in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        if rules is None:
            return False
        return rules is ALL_RULES or rule_id in rules or "*" in rules


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract the suppression comments from one file's source text.

    Tokenization errors (the file does not parse) yield an empty index —
    the engine reports the syntax error separately and runs no rules.
    """
    line_rules: Dict[int, FrozenSet[str]] = {}
    file_rules: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return SuppressionIndex()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(tok.string)
        if match is None:
            continue
        is_file_level = match.group(1) is not None
        raw_rules = match.group(2)
        if raw_rules is None:
            if is_file_level:
                # A bare noqa-file is ignored (and will therefore still
                # surface the findings) rather than silently exempting
                # the file from everything.
                continue
            line_rules[tok.start[0]] = ALL_RULES
            continue
        rules = frozenset(
            r.strip().upper() for r in raw_rules.split(",") if r.strip()
        )
        if not rules:
            continue
        if is_file_level:
            file_rules.update(rules)
        else:
            merged = set(line_rules.get(tok.start[0], frozenset())) | rules
            line_rules[tok.start[0]] = frozenset(merged)
    return SuppressionIndex(
        line_rules=line_rules, file_rules=frozenset(file_rules)
    )
