"""Project-wide call graph: the substrate for interprocedural analysis.

The per-file rules in :mod:`repro.analysis.rules` are lexical — they see
one AST at a time.  The concurrency invariants ROADMAP's serving items
depend on are *whole-program* properties: a lock acquired in
``repro.serve.cache`` while a ``repro.serve.store`` lock is held two call
frames up, a blocking ``os.fsync`` reached through three modules, a
solver entry point reachable from the serve engine.  This module builds
the call graph those checks run on (:mod:`repro.analysis.concurrency`).

Construction is two passes over the parsed modules:

1. **Index** — every module is mapped to its dotted name (anchored at the
   innermost directory without an ``__init__.py``), and its import
   aliases, top-level functions, classes (with methods, resolved bases,
   and inferred attribute types from ``self.x = SomeClass(...)`` /
   annotated-parameter assignments) are recorded.
2. **Resolve** — every call site in every function body is resolved to a
   qualified name: module functions through import aliases, ``self.m()``
   through the method-resolution order, ``obj.m()`` through inferred
   attribute/local/parameter types, ``Class()`` to ``Class.__init__``,
   ``super().m()`` through the first base.  Function *references* passed
   as arguments (``pool.submit(self._run_group)``,
   ``Thread(target=self._loop)``) become ``kind="ref"`` edges: they count
   for reachability but not for "this call blocks here" reasoning — the
   referee runs later, on another thread, outside any lock held now.

Unresolvable calls are *summarized*, not dropped: the site keeps its
canonical dotted name (``time.sleep``) or terminal name, so downstream
rules can still classify known-blocking primitives.

Soundness caveats (documented in ``docs/static-analysis.md``): dynamic
dispatch through callable-valued attributes, lambdas, and monkeypatching
are invisible; lock identity is syntactic (``Class._lock``), so two locks
stored under the same attribute of the same class are conflated and a
lock smuggled through an untyped receiver gets a function-local identity.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: ``with`` context expressions whose name reads as acquiring a lock
#: (mirrors the BRS007 heuristic so the two layers agree on what a lock is).
_LOCKISH_RE = re.compile(r"lock|mutex|cond", re.IGNORECASE)

#: Constructors that *are* locks, for ``with threading.Lock():`` inlines
#: and ``self._lock = threading.Lock()`` attribute typing.
_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: ``# brs: <marker>`` annotations attached to a function definition
#: (on the ``def`` line, a decorator line, or the line directly above).
_ANNOTATION_RE = re.compile(r"#\s*brs:\s*([a-z][a-z0-9-]*)")

#: Markers that are suppressions, not semantic annotations.
_NON_ANNOTATIONS = {"noqa", "noqa-file"}


@dataclass(frozen=True)
class CallSite:
    """One resolved (or summarized) call inside a function body.

    Attributes:
        raw: the source spelling of the target (``self._planner.submit``).
        callee: qualified name of the target when it resolves to a
            function defined in the analyzed tree, else ``None``.
        external: canonical dotted name for a non-project target
            (``time.sleep``), else ``None``.  ``callee`` and ``external``
            are mutually exclusive; both ``None`` means "could not tell".
        line: 1-based source line of the call.
        col: 0-based column of the call.
        held_locks: lock ids lexically held at this site (innermost last).
        kind: ``"call"`` for a real invocation, ``"ref"`` for a function
            reference passed as an argument (deferred execution).
        receiver: terminal name of the receiver for method calls (used by
            queue-heuristics downstream), else ``None``.
    """

    raw: str
    callee: Optional[str]
    external: Optional[str]
    line: int
    col: int
    held_locks: Tuple[str, ...] = ()
    kind: str = "call"
    receiver: Optional[str] = None


@dataclass(frozen=True)
class LockAcquire:
    """One ``with <lock>:`` acquisition inside a function body."""

    lock_id: str
    line: int
    col: int
    held_locks: Tuple[str, ...] = ()


@dataclass
class FunctionNode:
    """One function or method in the analyzed tree."""

    qualname: str
    module: str
    path: str
    line: int
    name: str
    class_name: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    acquires: List[LockAcquire] = field(default_factory=list)
    annotations: Set[str] = field(default_factory=set)
    checks_budget: bool = False

    def to_json(self) -> dict:
        """JSON row for the ``--graph-out`` dump."""
        return {
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "class": self.class_name,
            "checks_budget": self.checks_budget,
            "annotations": sorted(self.annotations),
            "calls": [
                {
                    "raw": c.raw,
                    "callee": c.callee,
                    "external": c.external,
                    "line": c.line,
                    "kind": c.kind,
                    "held_locks": list(c.held_locks),
                }
                for c in self.calls
            ],
            "acquires": [
                {
                    "lock": a.lock_id,
                    "line": a.line,
                    "held_locks": list(a.held_locks),
                }
                for a in self.acquires
            ],
        }


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, and inferred attribute types."""

    qualname: str
    module: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    lock_attrs: Set[str] = field(default_factory=set)


@dataclass
class CallGraph:
    """The resolved whole-program view.

    Attributes:
        functions: qualified name -> :class:`FunctionNode`.
        classes: qualified name -> :class:`ClassInfo`.
        modules: dotted module name -> posix path relative to the root.
        sources: posix path -> raw source lines (for snippets/witnesses).
    """

    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    modules: Dict[str, str] = field(default_factory=dict)
    sources: Dict[str, List[str]] = field(default_factory=dict)

    def resolve_method(self, class_qualname: str, name: str) -> Optional[str]:
        """Resolve ``name`` on ``class_qualname`` walking the base chain."""
        seen: Set[str] = set()
        queue = [class_qualname]
        while queue:
            cq = queue.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            info = self.classes.get(cq)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            queue.extend(info.bases)
        return None

    def snippet(self, path: str, line: int) -> str:
        """Stripped source text at ``path:line`` (empty when unknown)."""
        lines = self.sources.get(path)
        if lines and 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def to_json(self) -> dict:
        """The ``--graph-out`` payload (lock graph is added by the caller)."""
        return {
            "modules": dict(sorted(self.modules.items())),
            "functions": {
                q: node.to_json() for q, node in sorted(self.functions.items())
            },
            "classes": {
                q: {
                    "bases": info.bases,
                    "methods": dict(sorted(info.methods.items())),
                    "attr_types": dict(sorted(info.attr_types.items())),
                    "lock_attrs": sorted(info.lock_attrs),
                }
                for q, info in sorted(self.classes.items())
            },
        }


# -- module naming and imports ----------------------------------------------


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name, anchored at the outermost package directory.

    Walks up from the file while the directory holds an ``__init__.py``;
    the file ``src/repro/serve/cache.py`` becomes ``repro.serve.cache``.
    A file outside any package is just its stem.
    """
    parts = [path.stem] if path.name != "__init__.py" else []
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


def _import_aliases(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name -> canonical dotted name, relative imports resolved."""
    aliases: Dict[str, str] = {}
    pkg_parts = module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{prefix}.{alias.name}"
    return aliases


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a ``Name``/``Attribute`` chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _raw_text(node: ast.AST) -> str:
    """Best-effort source spelling of a call target for messages."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(f"{_raw_text(node.func)}()")
    else:
        parts.append("<expr>")
    return ".".join(reversed(parts))


def _is_lockish_expr(expr: ast.AST) -> bool:
    """Does a ``with`` context expression read as acquiring a lock?"""
    if isinstance(expr, ast.Call):
        func = expr.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return name in _LOCK_CONSTRUCTORS
    name = None
    node = expr
    while isinstance(node, ast.Attribute):
        name = node.attr
        break
    if name is None and isinstance(expr, ast.Name):
        name = expr.id
    return name is not None and bool(_LOCKISH_RE.search(name))


def _is_lock_constructor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name in _LOCK_CONSTRUCTORS


# -- the builder -------------------------------------------------------------


class _ModuleIndex:
    """Pass-1 view of one parsed module."""

    def __init__(self, module: str, path: str, tree: ast.Module, lines: List[str]):
        self.module = module
        self.path = path
        self.tree = tree
        self.lines = lines
        self.aliases = _import_aliases(tree, module)
        self.functions: Dict[str, ast.AST] = {}  # local name -> def node
        self.classes: Dict[str, ast.ClassDef] = {}  # local name -> class node


def build_callgraph(
    root: pathlib.Path, paths: Optional[Iterable[pathlib.Path]] = None
) -> CallGraph:
    """Build the call graph for every ``.py`` file under ``paths``.

    Args:
        root: directory relative posix paths are computed from (the lint
            root, so findings line up with the per-file engine's paths).
        paths: files or directories to analyze; defaults to ``root``.
    """
    root = root.resolve()
    files: List[pathlib.Path] = []
    for raw in paths if paths is not None else [root]:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    graph = CallGraph()
    indexes: List[_ModuleIndex] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue  # the per-file engine reports unparsable files
        resolved = path.resolve()
        try:
            rel = resolved.relative_to(root).as_posix()
        except ValueError:
            rel = resolved.as_posix()
        module = module_name_for(resolved)
        if module in graph.modules:
            continue  # duplicate module name: keep the first discovery
        index = _ModuleIndex(module, rel, tree, source.splitlines())
        graph.modules[module] = rel
        graph.sources[rel] = index.lines
        indexes.append(index)

    for index in indexes:
        _index_module(graph, index)
    for index in indexes:
        _link_module(graph, index)
    for index in indexes:
        _resolve_module(graph, index)
    return graph


def _index_module(graph: CallGraph, index: _ModuleIndex) -> None:
    """Pass 1a: register functions, classes, and methods."""
    for node in index.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{index.module}.{node.name}"
            index.functions[node.name] = node
            graph.functions[qual] = FunctionNode(
                qualname=qual,
                module=index.module,
                path=index.path,
                line=node.lineno,
                name=node.name,
                annotations=_def_annotations(index.lines, node),
            )
        elif isinstance(node, ast.ClassDef):
            index.classes[node.name] = node
            cq = f"{index.module}.{node.name}"
            info = ClassInfo(qualname=cq, module=index.module)
            graph.classes[cq] = info
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    mq = f"{cq}.{item.name}"
                    info.methods[item.name] = mq
                    graph.functions[mq] = FunctionNode(
                        qualname=mq,
                        module=index.module,
                        path=index.path,
                        line=item.lineno,
                        name=item.name,
                        class_name=node.name,
                        annotations=_def_annotations(index.lines, item),
                    )

def _link_module(graph: CallGraph, index: _ModuleIndex) -> None:
    """Pass 1b (all modules indexed): resolve bases and attribute types.

    This runs after *every* module's classes are registered, so a
    ``self.log = log`` with ``log: IngestLog`` types correctly no matter
    which file sorts first.
    """
    for name, node in index.classes.items():
        cq = f"{index.module}.{name}"
        info = graph.classes[cq]
        for base in node.bases:
            dotted = _dotted(base, index.aliases)
            if dotted is None:
                continue
            info.bases.append(_canonical_class(graph, index, dotted) or dotted)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _infer_attr_types(graph, index, info, item)


def _canonical_class(
    graph: CallGraph, index: _ModuleIndex, dotted: str
) -> Optional[str]:
    """Map a dotted name to a known class qualname (local or imported)."""
    if dotted in graph.classes:
        return dotted
    local = f"{index.module}.{dotted}"
    if local in graph.classes:
        return local
    return None


def _annotation_class(
    graph: CallGraph, index: _ModuleIndex, annotation: Optional[ast.AST]
) -> Optional[str]:
    """Resolve a parameter annotation to a known class, if possible."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # `from __future__ import annotations` stringizes nothing at the
        # AST level, but quoted annotations still appear as constants.
        name = annotation.value.strip()
        if name.isidentifier():
            dotted = index.aliases.get(name, name)
            return _canonical_class(graph, index, dotted)
        return None
    # Unwrap Optional[X] / "X | None" to X.
    if isinstance(annotation, ast.Subscript):
        base = _dotted(annotation.value, index.aliases)
        if base is not None and base.split(".")[-1] == "Optional":
            return _annotation_class(graph, index, annotation.slice)
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            resolved = _annotation_class(graph, index, side)
            if resolved is not None:
                return resolved
        return None
    dotted = _dotted(annotation, index.aliases)
    if dotted is None:
        return None
    return _canonical_class(graph, index, dotted)


def _infer_attr_types(
    graph: CallGraph,
    index: _ModuleIndex,
    info: ClassInfo,
    method: ast.AST,
) -> None:
    """Record ``self.x = ...`` attribute types and lock attributes."""
    params: Dict[str, Optional[str]] = {}
    args = method.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        params[arg.arg] = _annotation_class(graph, index, arg.annotation)
    for node in ast.walk(method):
        if isinstance(node, ast.AnnAssign):
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                cls = _annotation_class(graph, index, node.annotation)
                if cls is not None:
                    info.attr_types[target.attr] = cls
                elif node.value is not None and _is_lock_constructor(node.value):
                    info.lock_attrs.add(target.attr)
            continue
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            value = node.value
            # `x if cond else y`: either arm may carry the real type.
            candidates = (
                [value.body, value.orelse]
                if isinstance(value, ast.IfExp)
                else [value]
            )
            for cand in candidates:
                if _is_lock_constructor(cand):
                    info.lock_attrs.add(attr)
                    break
                if isinstance(cand, ast.Call):
                    dotted = _dotted(cand.func, index.aliases)
                    if dotted is not None:
                        cls = _canonical_class(graph, index, dotted)
                        if cls is not None:
                            info.attr_types[attr] = cls
                            break
                elif isinstance(cand, ast.Name) and cand.id in params:
                    cls = params[cand.id]
                    if cls is not None:
                        info.attr_types[attr] = cls
                        break


def _def_annotations(lines: List[str], node: ast.AST) -> Set[str]:
    """``# brs: <marker>`` annotations attached to a def (see module doc)."""
    candidates = range(max(1, node.lineno - 1), min(len(lines), node.lineno) + 1)
    for deco in getattr(node, "decorator_list", []):
        candidates = range(
            max(1, deco.lineno - 1), min(len(lines), node.lineno) + 1
        )
        break
    markers: Set[str] = set()
    for lineno in candidates:
        for match in _ANNOTATION_RE.finditer(lines[lineno - 1]):
            marker = match.group(1)
            if marker not in _NON_ANNOTATIONS:
                markers.add(marker)
    return markers


# -- pass 2: body resolution --------------------------------------------------


class _BodyResolver(ast.NodeVisitor):
    """Resolve one function body: calls, lock blocks, budget checks."""

    def __init__(
        self,
        graph: CallGraph,
        index: _ModuleIndex,
        node: FunctionNode,
        def_node: ast.AST,
        locals_env: Optional[Dict[str, str]] = None,
    ) -> None:
        self.graph = graph
        self.index = index
        self.node = node
        self.def_node = def_node
        self.lock_stack: List[str] = []
        self.env: Dict[str, str] = dict(locals_env or {})  # var -> class qualname
        self.nested: Dict[str, str] = {}  # local name -> nested fn qualname
        args = def_node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            cls = _annotation_class(graph, index, arg.annotation)
            if cls is not None:
                self.env[arg.arg] = cls

    # -- lock identity ---------------------------------------------------

    def _lock_id(self, expr: ast.AST, line: int) -> str:
        if isinstance(expr, ast.Call):
            return f"{self.node.qualname}:{line}"
        parts: List[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        parts.reverse()
        if isinstance(node, ast.Name):
            root = node.id
            if root == "self" and self.node.class_name is not None:
                owner = f"{self.index.module}.{self.node.class_name}"
                return f"{owner}.{'.'.join(parts)}"
            if root in self.env and parts:
                return f"{self.env[root]}.{'.'.join(parts)}"
            dotted = self.index.aliases.get(root, root)
            if parts:
                return f"{dotted}.{'.'.join(parts)}"
            if root in self.index.aliases or dotted in self.graph.modules:
                return dotted
            # A bare local/module-level name: module-scope identity keeps
            # the same lock recognizable across functions of the module.
            return f"{self.index.module}.{root}"
        return f"{self.node.qualname}:{line}"

    # -- resolution helpers ----------------------------------------------

    def _resolve_target(self, func: ast.AST) -> Tuple[Optional[str], Optional[str], Optional[str]]:
        """``(callee, external, receiver)`` for a call target."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.nested:
                return self.nested[name], None, None
            if name in self.index.functions:
                return f"{self.index.module}.{name}", None, None
            if name in self.index.classes:
                return self._constructor(f"{self.index.module}.{name}"), None, None
            dotted = self.index.aliases.get(name)
            if dotted is not None:
                return self._resolve_dotted(dotted)
            return None, name, None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            method = func.attr
            recv_name = _raw_text(receiver)
            # self.m() / self.attr.m()
            if isinstance(receiver, ast.Name):
                root = receiver.id
                if root == "self" and self.node.class_name is not None:
                    cq = f"{self.index.module}.{self.node.class_name}"
                    resolved = self.graph.resolve_method(cq, method)
                    if resolved is not None:
                        return resolved, None, recv_name
                    return None, None, recv_name
                if root in self.env:
                    resolved = self.graph.resolve_method(self.env[root], method)
                    if resolved is not None:
                        return resolved, None, recv_name
                    return None, None, recv_name
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and self.node.class_name is not None
            ):
                cq = f"{self.index.module}.{self.node.class_name}"
                info = self.graph.classes.get(cq)
                attr_cls = info.attr_types.get(receiver.attr) if info else None
                if attr_cls is not None:
                    resolved = self.graph.resolve_method(attr_cls, method)
                    if resolved is not None:
                        return resolved, None, recv_name
                    return None, None, recv_name
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
                and self.node.class_name is not None
            ):
                cq = f"{self.index.module}.{self.node.class_name}"
                info = self.graph.classes.get(cq)
                for base in info.bases if info else []:
                    resolved = self.graph.resolve_method(base, method)
                    if resolved is not None:
                        return resolved, None, None
                return None, None, None
            dotted = _dotted(func, self.index.aliases)
            if dotted is not None:
                return self._resolve_dotted(dotted)
            return None, None, recv_name
        return None, None, None

    def _resolve_dotted(self, dotted: str) -> Tuple[Optional[str], Optional[str], Optional[str]]:
        if dotted in self.graph.functions:
            return dotted, None, None
        if dotted in self.graph.classes:
            return self._constructor(dotted), None, None
        receiver = dotted.rsplit(".", 1)[0] if "." in dotted else None
        return None, dotted, receiver

    def _constructor(self, class_qualname: str) -> Optional[str]:
        return self.graph.resolve_method(class_qualname, "__init__")

    # -- visitors ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested_def(node)

    def _nested_def(self, node: ast.AST) -> None:
        """A nested def: its own node, bound locally, body deferred."""
        if node is self.def_node:
            for stmt in node.body:
                self.visit(stmt)
            return
        qual = f"{self.node.qualname}.{node.name}"
        self.nested[node.name] = qual
        nested = FunctionNode(
            qualname=qual,
            module=self.index.module,
            path=self.index.path,
            line=node.lineno,
            name=node.name,
            class_name=self.node.class_name,
            annotations=_def_annotations(self.index.lines, node),
        )
        self.graph.functions[qual] = nested
        resolver = _BodyResolver(self.graph, self.index, nested, node, self.env)
        resolver.nested.update(self.nested)
        resolver.resolve()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # deferred body; references inside are invisible (caveat)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        cls: Optional[str] = None
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func, self.index.aliases)
            if dotted is not None:
                cls = _canonical_class(self.graph, self.index, dotted)
        elif isinstance(value, ast.Name) and value.id in self.env:
            cls = self.env[value.id]
        elif (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self.node.class_name is not None
        ):
            info = self.graph.classes.get(
                f"{self.index.module}.{self.node.class_name}"
            )
            if info is not None:
                cls = info.attr_types.get(value.attr)
        if cls is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env[target.id] = cls
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: ast.AST) -> None:
        acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            if _is_lockish_expr(expr):
                lock_id = self._lock_id(expr, node.lineno)
                self.node.acquires.append(
                    LockAcquire(
                        lock_id=lock_id,
                        line=node.lineno,
                        col=node.col_offset,
                        held_locks=tuple(self.lock_stack),
                    )
                )
                acquired.append(lock_id)
            else:
                self.visit(expr)
        self.lock_stack.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.lock_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        callee, external, receiver = self._resolve_target(node.func)
        raw = _raw_text(node.func)
        # String-literal receivers (", ".join(x)) are never interesting.
        if not isinstance(node.func, ast.Attribute) or not isinstance(
            node.func.value, (ast.Constant, ast.JoinedStr)
        ):
            self.node.calls.append(
                CallSite(
                    raw=raw,
                    callee=callee,
                    external=external,
                    line=node.lineno,
                    col=node.col_offset,
                    held_locks=tuple(self.lock_stack),
                    receiver=receiver,
                )
            )
        if any(
            kw.arg == "budget" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
            for kw in node.keywords
        ):
            self.node.checks_budget = True
        # Function references passed as arguments: deferred-call edges.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            ref = self._function_ref(arg)
            if ref is not None:
                self.node.calls.append(
                    CallSite(
                        raw=_raw_text(arg),
                        callee=ref,
                        external=None,
                        line=node.lineno,
                        col=node.col_offset,
                        held_locks=(),
                        kind="ref",
                    )
                )
        for child in ast.iter_child_nodes(node):
            if child is not node.func or isinstance(child, ast.Call):
                self.visit(child)
        # The target expression itself may contain nested calls.
        if isinstance(node.func, ast.Attribute):
            self.visit(node.func.value)

    def _function_ref(self, arg: ast.AST) -> Optional[str]:
        """Resolve a bare function/method reference used as an argument."""
        if isinstance(arg, (ast.Call, ast.Lambda)):
            return None
        callee, _, _ = self._resolve_target(arg)
        return callee

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Budget discipline: `budget.expired()` style checks are detected
        # in visit_Call; `budget is not None` guards alone do not count.
        self.generic_visit(node)

    def resolve(self) -> None:
        """Walk the body, then derive the budget-check flag."""
        for stmt in self.def_node.body:
            self.visit(stmt)
        if not self.node.checks_budget:
            self.node.checks_budget = _mentions_budget_check(self.def_node)


def _mentions_budget_check(def_node: ast.AST) -> bool:
    """Does the body call into a budget (``budget.expired()``, ``Budget.of``)?"""
    for node in ast.walk(def_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            names: List[str] = []
            while isinstance(value, ast.Attribute):
                names.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                names.append(value.id)
            if any("budget" in n.lower() for n in names):
                return True
            if isinstance(value, ast.Name) and value.id == "Budget":
                return True
        elif isinstance(func, ast.Name) and func.id == "Budget":
            return True
    return False


def _resolve_module(graph: CallGraph, index: _ModuleIndex) -> None:
    """Pass 2: resolve every function body in one module."""
    for name, def_node in index.functions.items():
        node = graph.functions[f"{index.module}.{name}"]
        _BodyResolver(graph, index, node, def_node).resolve()
    for cls_name, cls_node in index.classes.items():
        for item in cls_node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                node = graph.functions[f"{index.module}.{cls_name}.{item.name}"]
                _BodyResolver(graph, index, node, item).resolve()
