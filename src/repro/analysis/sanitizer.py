"""Runtime lock-order sanitizer: the dynamic half of BRS010.

The static pass (:mod:`repro.analysis.concurrency`) reasons about locks
it can see syntactically; this module watches the locks the program
*actually* takes.  Under :func:`instrument_locks` every
``threading.Lock()`` / ``threading.RLock()`` created by project code is
replaced with a :class:`SanitizedLock` that records, per thread, the
order locks are acquired in.  The recorder maintains a global lock-order
graph: observing ``A -> B`` on one thread and ``B -> A`` on another (or
later on the same thread) is an **order inversion** — the dynamic
witness of a potential deadlock, reported even when the timing never
actually deadlocks in this run.  It also flags locks held longer than a
threshold, since a long critical section is how the serve tail latency
dies even without a cycle.

Everything observed can be dumped as a JSONL witness artifact
(``write_witness``), summarized by ``repro-brs obs breakdown --locks``,
and asserted on in tests (``sanitizer.inversions``).  CI runs the
serve/ingest/parallel suites once under instrumentation and fails on
any inversion, so a static BRS010 finding is confirmed or refuted by
execution, not debate.

Usage::

    with instrument_locks() as sanitizer:
        run_workload()
    assert not sanitizer.inversions
    sanitizer.write_witness("lock-witness.jsonl")

or from the command line (runs pytest under instrumentation)::

    python -m repro.analysis.sanitizer --out witness.jsonl -- tests/serve
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

# Bound at import time, *before* any instrumentation can patch the
# constructors: the sanitizer's own bookkeeping must never run under a
# SanitizedLock or every internal acquire would recurse into the recorder.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Default threshold for the long-held-lock report, in seconds.
DEFAULT_LONG_HOLD_S = 0.25


@dataclass
class LockStats:
    """Aggregate acquisition statistics for one lock."""

    acquires: int = 0
    contended: int = 0
    total_wait_s: float = 0.0
    max_wait_s: float = 0.0
    total_hold_s: float = 0.0
    max_hold_s: float = 0.0

    def to_json(self) -> dict:
        return {
            "acquires": self.acquires,
            "contended": self.contended,
            "total_wait_s": round(self.total_wait_s, 6),
            "max_wait_s": round(self.max_wait_s, 6),
            "total_hold_s": round(self.total_hold_s, 6),
            "max_hold_s": round(self.max_hold_s, 6),
        }


@dataclass(frozen=True)
class Inversion:
    """One observed lock-order inversion (a dynamic BRS010 witness)."""

    first: str  # lock acquired first in the offending order
    second: str  # lock acquired under it
    thread: str
    prior_thread: str  # thread that recorded the opposite order

    def to_json(self) -> dict:
        return {
            "kind": "inversion",
            "first": self.first,
            "second": self.second,
            "thread": self.thread,
            "prior_order_thread": self.prior_thread,
        }


class LockOrderSanitizer:
    """The global recorder every :class:`SanitizedLock` reports into.

    Args:
        long_hold_s: holds longer than this are recorded as events.
    """

    def __init__(self, long_hold_s: float = DEFAULT_LONG_HOLD_S) -> None:
        self.long_hold_s = long_hold_s
        self._mutex = _REAL_LOCK()
        self._held = threading.local()  # per-thread list of lock names
        self._edges: Dict[Tuple[str, str], str] = {}  # (a, b) -> thread
        self.inversions: List[Inversion] = []
        self.long_holds: List[dict] = []
        self.stats: Dict[str, LockStats] = {}

    # -- recording (called from SanitizedLock) ---------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def note_acquired(self, name: str, wait_s: float, contended: bool) -> None:
        """Record one successful acquisition by the calling thread."""
        thread = threading.current_thread().name
        stack = self._stack()
        with self._mutex:
            stats = self.stats.setdefault(name, LockStats())
            stats.acquires += 1
            stats.total_wait_s += wait_s
            stats.max_wait_s = max(stats.max_wait_s, wait_s)
            if contended:
                stats.contended += 1
            for held in stack:
                if held == name:
                    continue  # re-entrant RLock hold, not an ordering
                reverse = self._edges.get((name, held))
                if reverse is not None and (held, name) not in self._edges:
                    self.inversions.append(
                        Inversion(
                            first=held,
                            second=name,
                            thread=thread,
                            prior_thread=reverse,
                        )
                    )
                self._edges.setdefault((held, name), thread)
        stack.append(name)

    def note_released(self, name: str, hold_s: float) -> None:
        """Record the release paired with the innermost acquisition."""
        stack = self._stack()
        # Release the innermost matching hold (locks can unwind out of
        # order under `with a, b` exits, so search from the top).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break
        with self._mutex:
            stats = self.stats.setdefault(name, LockStats())
            stats.total_hold_s += hold_s
            stats.max_hold_s = max(stats.max_hold_s, hold_s)
            if hold_s >= self.long_hold_s:
                self.long_holds.append(
                    {
                        "kind": "long_hold",
                        "lock": name,
                        "hold_s": round(hold_s, 6),
                        "thread": threading.current_thread().name,
                    }
                )

    # -- results ---------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True when no inversion was observed."""
        return not self.inversions

    def edges(self) -> List[dict]:
        """The observed lock-order graph, JSON-shaped."""
        with self._mutex:
            return [
                {"kind": "edge", "held": a, "acquired": b, "thread": t}
                for (a, b), t in sorted(self._edges.items())
            ]

    def report(self) -> dict:
        """Everything observed, as one JSON document."""
        with self._mutex:
            stats = {name: s.to_json() for name, s in sorted(self.stats.items())}
            inversions = [inv.to_json() for inv in self.inversions]
            long_holds = list(self.long_holds)
        return {
            "clean": not inversions,
            "locks": stats,
            "edges": self.edges(),
            "inversions": inversions,
            "long_holds": long_holds,
        }

    def write_witness(self, path) -> None:
        """Write the JSONL witness artifact (one record per line)."""
        report = self.report()
        rows: List[dict] = []
        for name, stats in report["locks"].items():
            rows.append({"kind": "stats", "lock": name, **stats})
        rows.extend(report["edges"])
        rows.extend(report["inversions"])
        rows.extend(report["long_holds"])
        text = "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)
        pathlib.Path(path).write_text(text, encoding="utf-8")


class SanitizedLock:
    """A ``threading.Lock``/``RLock`` stand-in that reports to a sanitizer.

    Args:
        sanitizer: the recorder to report acquisitions into.
        name: stable lock identity — by convention the creation site
            (``relpath:lineno``) so reports map straight to source.
        reentrant: RLock semantics (owner re-acquisition does not
            re-record an ordering edge, and needs matching releases).
    """

    #: Wait longer than this marks the acquisition as contended.
    CONTENDED_WAIT_S = 0.001

    def __init__(
        self,
        sanitizer: LockOrderSanitizer,
        name: str,
        reentrant: bool = False,
    ) -> None:
        self._san = sanitizer
        self.name = name
        self._reentrant = reentrant
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._local = threading.local()  # per-thread reentry depth
        self._acquired_at = 0.0  # perf_counter at outermost acquire

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        start = time.perf_counter()
        ok = self._inner.acquire(blocking, timeout)
        if not ok:
            return False
        depth = self._depth()
        self._local.depth = depth + 1
        if depth == 0:
            wait = time.perf_counter() - start
            self._acquired_at = time.perf_counter()
            self._san.note_acquired(
                self.name, wait, contended=wait >= self.CONTENDED_WAIT_S
            )
        return True

    def release(self) -> None:
        depth = self._depth()
        if depth <= 0:
            self._inner.release()  # raise the standard RuntimeError
            return
        self._local.depth = depth - 1
        if depth == 1:
            hold = time.perf_counter() - self._acquired_at
            self._san.note_released(self.name, hold)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked() if not self._reentrant else self._depth() > 0

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"<SanitizedLock {kind} {self.name!r}>"


def _creation_site(only_under: pathlib.Path) -> Optional[str]:
    """Name the lock after the frame that created it, if project code.

    Walks out of this module to the caller's frame; returns None when the
    creating file is outside ``only_under`` (stdlib ``queue.Queue``
    internals, third-party code) — those locks stay real.
    """
    frame = sys._getframe(2)  # caller -> factory -> here
    filename = frame.f_code.co_filename
    try:
        rel = pathlib.Path(filename).resolve().relative_to(only_under)
    except ValueError:
        return None
    return f"{rel.as_posix()}:{frame.f_lineno}"


@contextlib.contextmanager
def instrument_locks(
    only_under=None,
    long_hold_s: float = DEFAULT_LONG_HOLD_S,
    sanitizer: Optional[LockOrderSanitizer] = None,
):
    """Patch ``threading.Lock``/``RLock`` so project locks are sanitized.

    Args:
        only_under: directory whose files get sanitized locks; defaults
            to the installed ``repro`` package directory.  Locks created
            by files outside it (stdlib, test helpers) stay real.
        long_hold_s: threshold for the long-held-lock report.
        sanitizer: recorder to reuse; a fresh one by default.

    Yields:
        The :class:`LockOrderSanitizer` collecting observations.

    Caveats: only constructor calls spelled ``threading.Lock()`` /
    ``threading.RLock()`` *executed inside the context* are wrapped;
    locks created at import time before instrumentation stay real, as do
    ``from threading import Lock`` aliases bound before the patch.
    """
    if only_under is None:
        import repro

        only_under = pathlib.Path(repro.__file__).resolve().parent
    else:
        only_under = pathlib.Path(only_under).resolve()
    san = sanitizer if sanitizer is not None else LockOrderSanitizer(long_hold_s)

    def lock_factory():
        site = _creation_site(only_under)
        if site is None:
            return _REAL_LOCK()
        return SanitizedLock(san, site, reentrant=False)

    def rlock_factory():
        site = _creation_site(only_under)
        if site is None:
            return _REAL_RLOCK()
        return SanitizedLock(san, site, reentrant=True)

    threading.Lock = lock_factory
    threading.RLock = rlock_factory
    try:
        yield san
    finally:
        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK


# -- witness summaries (repro-brs obs breakdown --locks) ---------------------


def summarize_witness(path) -> dict:
    """Aggregate a witness JSONL file back into a report-shaped dict.

    Raises:
        ValueError: when the file contains a malformed line.
    """
    locks: Dict[str, dict] = {}
    edges: List[dict] = []
    inversions: List[dict] = []
    long_holds: List[dict] = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
        kind = row.get("kind")
        if kind == "stats":
            locks[row["lock"]] = {
                k: v for k, v in row.items() if k not in {"kind", "lock"}
            }
        elif kind == "edge":
            edges.append(row)
        elif kind == "inversion":
            inversions.append(row)
        elif kind == "long_hold":
            long_holds.append(row)
    return {
        "clean": not inversions,
        "locks": locks,
        "edges": edges,
        "inversions": inversions,
        "long_holds": long_holds,
    }


def render_lock_summary(summary: dict) -> str:
    """Human-readable view of :func:`summarize_witness` output."""
    lines: List[str] = []
    locks = summary.get("locks", {})
    if locks:
        lines.append(
            f"{'lock':<44} {'acq':>6} {'cont':>5} "
            f"{'max wait':>9} {'max hold':>9}"
        )
        for name in sorted(locks):
            s = locks[name]
            lines.append(
                f"{name:<44} {s.get('acquires', 0):>6} "
                f"{s.get('contended', 0):>5} "
                f"{s.get('max_wait_s', 0.0) * 1e3:>7.2f}ms "
                f"{s.get('max_hold_s', 0.0) * 1e3:>7.2f}ms"
            )
    else:
        lines.append("no lock acquisitions recorded")
    if summary.get("inversions"):
        lines.append("")
        lines.append(f"LOCK-ORDER INVERSIONS: {len(summary['inversions'])}")
        for inv in summary["inversions"]:
            lines.append(
                f"  {inv['first']} -> {inv['second']} on {inv['thread']} "
                f"(opposite order seen on {inv['prior_order_thread']})"
            )
    else:
        lines.append("")
        lines.append("no lock-order inversions observed")
    if summary.get("long_holds"):
        lines.append(f"long holds: {len(summary['long_holds'])}")
        for row in summary["long_holds"][:10]:
            lines.append(
                f"  {row['lock']} held {row['hold_s'] * 1e3:.1f}ms "
                f"on {row['thread']}"
            )
    return "\n".join(lines)


# -- CLI: run pytest under instrumentation -----------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis.sanitizer --out w.jsonl -- <pytest args>``.

    Runs pytest under :func:`instrument_locks`, writes the witness
    artifact, and fails (exit 3) on any observed inversion even when the
    tests themselves pass.
    """
    parser = argparse.ArgumentParser(
        prog="repro.analysis.sanitizer",
        description="run pytest under the lock-order sanitizer",
    )
    parser.add_argument(
        "--out", default="lock-witness.jsonl", help="witness JSONL path"
    )
    parser.add_argument(
        "--long-hold",
        type=float,
        default=DEFAULT_LONG_HOLD_S,
        help="long-held-lock threshold in seconds",
    )
    parser.add_argument(
        "--only-under",
        default=None,
        metavar="DIR",
        help="instrument locks created under DIR (default: the repro package)",
    )
    argv = list(sys.argv[1:] if argv is None else argv)
    # Everything after `--` goes to pytest verbatim (it may contain
    # flags argparse would otherwise claim, like -q or -x).
    if "--" in argv:
        split = argv.index("--")
        argv, pytest_args = argv[:split], argv[split + 1 :]
    else:
        pytest_args = []
    ns = parser.parse_args(argv)
    ns.pytest_args = pytest_args

    import pytest

    with instrument_locks(
        only_under=ns.only_under, long_hold_s=ns.long_hold
    ) as san:
        rc = pytest.main(list(ns.pytest_args))
    san.write_witness(ns.out)
    summary = san.report()
    print(render_lock_summary(summary))
    print(f"witness written to {ns.out}")
    if rc != 0:
        return int(rc)
    return 3 if summary["inversions"] else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
