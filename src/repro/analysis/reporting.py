"""Text and JSON reporters for lint reports."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.engine import LintReport


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Human-oriented report: one ``path:line:col RULE message`` per finding.

    Ends with a one-line summary; with ``verbose`` the summary also
    breaks findings down by rule and lists stale baseline entries.
    """
    lines = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}")
        lines.append(f"    {f.snippet}")
    for path, message in report.parse_errors:
        lines.append(f"{path}:0:0: PARSE {message}")
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} "
        f"file(s) ({len(report.baselined)} baselined, "
        f"{report.suppressed_count} suppressed)"
    )
    lines.append(summary)
    if report.stale_baseline:
        lines.append(
            f"note: {len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} — the "
            "finding is gone; run --update-baseline to shrink the baseline"
        )
        if verbose:
            for entry in report.stale_baseline:
                lines.append(
                    f"    stale: {entry.get('rule')} {entry.get('path')} "
                    f"{entry['fingerprint']}"
                )
    if verbose and report.findings:
        by_rule = Counter(f.rule for f in report.findings)
        for rule_id, count in sorted(by_rule.items()):
            lines.append(f"    {rule_id}: {count}")
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    """Machine-oriented report (the CI artifact)."""
    payload = {
        "findings": [f.to_json() for f in report.findings],
        "baselined": [f.to_json() for f in report.baselined],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in report.parse_errors
        ],
        "stale_baseline": report.stale_baseline,
        "summary": {
            "files_scanned": report.files_scanned,
            "findings": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed_count,
            "clean": report.clean,
        },
    }
    return json.dumps(payload, indent=2) + "\n"
