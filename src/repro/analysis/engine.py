"""The lint engine: file discovery, parsing, rule dispatch, filtering.

:class:`LintEngine` owns the mechanical pipeline; rules own the judgment.
For every discovered file the engine parses one AST, builds one
suppression index, asks each applicable rule for findings, then filters
them through line/file suppressions and the baseline.  Rules therefore
stay tiny: a scope predicate plus an ``ast`` walk.
"""

from __future__ import annotations

import ast
import pathlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.suppressions import SuppressionIndex, parse_suppressions

#: Path fragments never linted: rule fixtures are *deliberate* violations.
DEFAULT_EXCLUDES: Tuple[str, ...] = ("tests/analysis/fixtures",)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: rule id (``BRS001`` ...).
        path: posix path relative to the lint root.
        line: 1-based line number.
        col: 0-based column offset.
        message: human-readable diagnosis with the fix direction.
        snippet: the stripped source line (for reports and fingerprints).
        fingerprint: content-based identity (see
            :func:`repro.analysis.baseline.fingerprint`).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str
    fingerprint: str

    def to_json(self) -> dict:
        """JSON-serializable view (the JSON reporter's row)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class RawFinding:
    """What a rule emits: a location and a message, nothing derived yet."""

    line: int
    col: int
    message: str


@dataclass
class LintContext:
    """Everything a rule may inspect about one file.

    Attributes:
        path: posix path relative to the lint root (what scope predicates
            match against).
        tree: the parsed module.
        lines: raw source lines (1-based access via ``lines[line - 1]``).
    """

    path: str
    tree: ast.Module
    lines: Sequence[str]

    def snippet(self, line: int) -> str:
        """The stripped source text at ``line`` (empty when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


@dataclass
class LintReport:
    """Outcome of one engine run.

    Attributes:
        findings: violations that survived suppressions and the baseline —
            these fail the build.
        baselined: grandfathered violations that matched the baseline.
        suppressed_count: findings silenced by noqa comments.
        stale_baseline: baseline entries whose finding no longer exists.
        files_scanned: how many files were parsed and checked.
        parse_errors: ``(path, message)`` for files that failed to parse.
    """

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    stale_baseline: List[dict] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing fails the build (parse errors do)."""
        return not self.findings and not self.parse_errors


class LintEngine:
    """Run a rule set over files and directories.

    Args:
        rules: rule instances (see :mod:`repro.analysis.rules`).
        root: directory relative paths are computed from; defaults to the
            current working directory.  Scope predicates and baseline
            fingerprints both use these relative paths, so lint results do
            not depend on where the checkout lives.
        excludes: path fragments to skip (posix, substring match against
            the relative path); defaults to :data:`DEFAULT_EXCLUDES`.
    """

    def __init__(
        self,
        rules: Sequence,
        root: Optional[pathlib.Path] = None,
        excludes: Optional[Sequence[str]] = None,
    ) -> None:
        self.rules = list(rules)
        self.root = (root or pathlib.Path.cwd()).resolve()
        self.excludes = tuple(
            DEFAULT_EXCLUDES if excludes is None else excludes
        )

    # -- discovery -------------------------------------------------------

    def _relpath(self, path: pathlib.Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def discover(self, paths: Iterable) -> List[pathlib.Path]:
        """Expand files/directories into the sorted list of lintable files.

        Raises:
            FileNotFoundError: when a requested path does not exist.
        """
        out: List[pathlib.Path] = []
        for raw in paths:
            p = pathlib.Path(raw)
            if not p.exists():
                raise FileNotFoundError(f"no such file or directory: {raw}")
            if p.is_dir():
                out.extend(sorted(p.rglob("*.py")))
            else:
                out.append(p)
        seen = set()
        unique: List[pathlib.Path] = []
        for p in out:
            rel = self._relpath(p)
            if rel in seen or any(frag in rel for frag in self.excludes):
                continue
            seen.add(rel)
            unique.append(p)
        return unique

    # -- linting ---------------------------------------------------------

    def lint_paths(
        self, paths: Iterable, baseline: Optional[Baseline] = None
    ) -> LintReport:
        """Lint files/directories and filter through ``baseline``."""
        report = LintReport()
        baseline = baseline or Baseline()
        all_findings: List[Finding] = []
        for path in self.discover(paths):
            file_findings, error = self._lint_file(path)
            report.files_scanned += 1
            if error is not None:
                report.parse_errors.append((self._relpath(path), error))
                continue
            kept, n_suppressed = file_findings
            report.suppressed_count += n_suppressed
            all_findings.extend(kept)
        for finding in all_findings:
            if baseline.contains(finding.fingerprint):
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        report.stale_baseline = baseline.stale_entries(
            f.fingerprint for f in all_findings
        )
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report

    def _lint_file(self, path: pathlib.Path):
        """Lint one file: ``((kept_findings, suppressed_count), error)``."""
        rel = self._relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return None, f"unreadable: {exc}"
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return None, f"syntax error: {exc.msg} (line {exc.lineno})"
        suppressions = parse_suppressions(source)
        ctx = LintContext(path=rel, tree=tree, lines=source.splitlines())
        kept, n_suppressed = [], 0
        raw_by_rule: Dict[str, List[RawFinding]] = {}
        for rule in self.rules:
            if not rule.applies_to(rel):
                continue
            raw_by_rule[rule.id] = list(rule.check(ctx))
        for rule_id, raws in raw_by_rule.items():
            for finding in self._finalize(rule_id, ctx, raws, suppressions):
                if finding is None:
                    n_suppressed += 1
                else:
                    kept.append(finding)
        return (kept, n_suppressed), None

    def _finalize(
        self,
        rule_id: str,
        ctx: LintContext,
        raws: Sequence[RawFinding],
        suppressions: SuppressionIndex,
    ) -> Iterator[Optional[Finding]]:
        """Attach snippets and occurrence-indexed fingerprints; apply noqa."""
        occurrence: Dict[str, int] = defaultdict(int)
        for raw in sorted(raws, key=lambda r: (r.line, r.col)):
            snippet = ctx.snippet(raw.line)
            normalized = " ".join(snippet.split())
            index = occurrence[normalized]
            occurrence[normalized] += 1
            if suppressions.is_suppressed(rule_id, raw.line):
                yield None
                continue
            yield Finding(
                rule=rule_id,
                path=ctx.path,
                line=raw.line,
                col=raw.col,
                message=raw.message,
                snippet=snippet,
                fingerprint=fingerprint(rule_id, ctx.path, snippet, index),
            )
