"""BRS004/BRS005 — the error taxonomy and the ban on bare ``except``.

The CLI and the serving layer map failure *families* to exit codes and
HTTP statuses by catching the :class:`repro.runtime.errors.BRSError`
taxonomy.  A solver raising a stray ``RuntimeError`` (or an
``AssertionError`` doing validation work) escapes that mapping and
surfaces as an internal error with the wrong exit code.  Bare ``except:``
is worse in the other direction: it swallows ``KeyboardInterrupt`` and
``SystemExit`` and turns cooperative budget expiry into a hang.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.engine import LintContext, RawFinding
from repro.analysis.rules.base import Rule
from repro.analysis.rules._util import terminal_name

#: The sanctioned taxonomy (repro.runtime.errors) plus exceptions whose
#: use is conventional rather than a failure report.
_ALLOWED_RAISES = {
    "BRSError",
    "InvalidQueryError",
    "BudgetExceededError",
    "EvaluationError",
    "AdmissionRejectedError",
    "InternalInvariantError",
    "WorkerFailureError",
    "IngestError",
    "LogCorruptionError",
    "NotImplementedError",  # abstract-method convention
    "StopIteration",  # generator protocol
    "SystemExit",  # CLI entry points
}

#: Heuristic: a raised name that looks like an exception class.
_EXCEPTION_CLASS_RE = re.compile(r"^[A-Z]\w*(Error|Exception|Exit|Interrupt)$")


class ErrorTaxonomyRule(Rule):
    """Solver modules raise only the BRSError taxonomy."""

    id = "BRS004"
    name = "error-taxonomy"
    rationale = (
        "The CLI and serve layer map BRSError families to exit codes and "
        "HTTP statuses; a stray ValueError/AssertionError in a solver "
        "escapes that mapping."
    )
    scope_re = re.compile(r"(^|/)repro/(core|cover|parallel|ingest)/")

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_class(node.exc)
            if name is None or name in _ALLOWED_RAISES:
                continue
            yield RawFinding(
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"solver modules must raise the BRSError taxonomy, not "
                    f"{name}; use InvalidQueryError for bad arguments and "
                    "InternalInvariantError for violated internal invariants"
                ),
            )

    @staticmethod
    def _raised_class(exc: ast.AST) -> Optional[str]:
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = terminal_name(target)
        if name is None or not _EXCEPTION_CLASS_RE.match(name):
            return None  # re-raise of a bound variable, or not a class name
        return name


class BareExceptRule(Rule):
    """No bare ``except:`` anywhere."""

    id = "BRS005"
    name = "bare-except"
    rationale = (
        "Bare except swallows KeyboardInterrupt/SystemExit and turns "
        "cooperative budget expiry into a hang; name the exception family."
    )
    scope_re = re.compile(r"")  # every linted file

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield RawFinding(
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "bare 'except:' catches KeyboardInterrupt and "
                        "SystemExit; catch BRSError (or the concrete "
                        "exception) instead"
                    ),
                )
