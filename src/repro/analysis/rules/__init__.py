"""The rule catalogue.

Each rule module encodes one project invariant; ``docs/static-analysis.md``
is the human-readable side of this registry.  To add a rule: subclass
:class:`~repro.analysis.rules.base.Rule` in a new module here, add it to
:data:`RULE_CLASSES`, document it, and give it fixture tests under
``tests/analysis/fixtures/``.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional

from repro.analysis.rules.base import Rule
from repro.analysis.rules.clock_rules import WallClockRule
from repro.analysis.rules.error_rules import BareExceptRule, ErrorTaxonomyRule
from repro.analysis.rules.geometry_rules import OpenRectangleComparisonRule
from repro.analysis.rules.lock_rules import HeldLockBlockingRule
from repro.analysis.rules.loop_rules import ScalarLoopRule
from repro.analysis.rules.metric_rules import MetricNameRule
from repro.analysis.rules.rng_rules import UnseededRngRule
from repro.analysis.rules.scope_rules import ScopeDisciplineRule

#: Every shipped rule class, in id order.
RULE_CLASSES = (
    OpenRectangleComparisonRule,  # BRS001
    WallClockRule,  # BRS002
    UnseededRngRule,  # BRS003
    ErrorTaxonomyRule,  # BRS004
    BareExceptRule,  # BRS005
    ScopeDisciplineRule,  # BRS006
    HeldLockBlockingRule,  # BRS007
    MetricNameRule,  # BRS008
    ScalarLoopRule,  # BRS009
)


def default_rules(root: Optional[pathlib.Path] = None) -> List[Rule]:
    """Instantiate the full rule set for a checkout rooted at ``root``.

    ``root`` locates ``docs/observability.md`` for the metric-name rule;
    when omitted (or when the doc is absent) that rule degrades to the
    snake_case convention check only.
    """
    rules: List[Rule] = []
    for cls in RULE_CLASSES:
        if cls is MetricNameRule:
            doc = root / "docs" / "observability.md" if root else None
            rules.append(MetricNameRule(doc_path=doc))
        else:
            rules.append(cls())
    return rules


__all__ = ["Rule", "RULE_CLASSES", "default_rules"]
