"""BRS008 — metric names: snake_case and documented in the registry doc.

The metrics registry hands out counters by *name*, get-or-create, so a
typo does not fail — it silently splits one logical counter into two
series that dashboards and the benchmark JSON never reconcile.  Every
literal metric name must therefore (a) follow the Prometheus snake_case
convention with a unit suffix and (b) appear in the metric tables of
``docs/observability.md``, which this rule parses (expanding
``brs_{slicebrs,coverbrs}_solves_total``-style brace groups).  Names
built dynamically (f-strings) are out of lexical reach and are skipped.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Iterator, Optional, Set

from repro.analysis.engine import LintContext, RawFinding
from repro.analysis.rules.base import Rule

#: Registry factory methods whose first argument is a metric name.
_FACTORY_METHODS = {"counter", "gauge", "histogram"}

#: Prometheus-style snake_case, at least two segments (name + unit/noun).
_SNAKE_CASE_RE = re.compile(r"^[a-z][a-z0-9]*(_[a-z0-9]+)+$")

#: Backtick-quoted tokens in the doc that look like metric names,
#: possibly with one ``{a,b,c}`` brace group.
_DOC_TOKEN_RE = re.compile(r"`([a-z0-9_]*\{[a-z0-9_,]+\}[a-z0-9_]*|[a-z][a-z0-9_]+)`")

_BRACE_RE = re.compile(r"^(.*)\{([a-z0-9_,]+)\}(.*)$")


def parse_documented_names(text: str) -> Set[str]:
    """Metric names declared in the observability doc's backtick tokens."""
    names: Set[str] = set()
    for token in _DOC_TOKEN_RE.findall(text):
        match = _BRACE_RE.match(token)
        expanded = (
            [f"{match.group(1)}{alt}{match.group(3)}"
             for alt in match.group(2).split(",")]
            if match
            else [token]
        )
        for name in expanded:
            if _SNAKE_CASE_RE.match(name):
                names.add(name)
    return names


class MetricNameRule(Rule):
    """Literal metric names off-convention or missing from the doc."""

    id = "BRS008"
    name = "metric-naming"
    rationale = (
        "The registry is get-or-create by name: a typo silently forks a "
        "counter into two series; undocumented names rot out of the "
        "observability doc."
    )
    scope_re = re.compile(r"(^|/)repro/")

    def __init__(self, doc_path: Optional[pathlib.Path] = None) -> None:
        self._doc_path = doc_path
        self._documented: Optional[Set[str]] = None

    def documented_names(self) -> Optional[Set[str]]:
        """The allowed-name set, or ``None`` when no doc is available."""
        if self._documented is None and self._doc_path is not None:
            if self._doc_path.exists():
                self._documented = parse_documented_names(
                    self._doc_path.read_text()
                )
        return self._documented

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        documented = self.documented_names()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                not isinstance(node.func, ast.Attribute)
                or node.func.attr not in _FACTORY_METHODS
                or not node.args
            ):
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(
                first.value, str
            ):
                continue
            name = first.value
            if not _SNAKE_CASE_RE.match(name):
                yield RawFinding(
                    line=first.lineno,
                    col=first.col_offset,
                    message=(
                        f"metric name {name!r} violates the snake_case "
                        "registry convention (lowercase segments joined by "
                        "'_', with a unit suffix such as _total/_seconds)"
                    ),
                )
            elif documented is not None and name not in documented:
                yield RawFinding(
                    line=first.lineno,
                    col=first.col_offset,
                    message=(
                        f"metric name {name!r} is not documented in "
                        "docs/observability.md; add it to the metric tables "
                        "so dashboards can rely on the catalogue"
                    ),
                )
