"""BRS003 — no unseeded global RNG draws; randomness must be injectable.

Every experiment in EXPERIMENTS.md is reproducible because every sampling
path (datasets, RIS sampling, MaxRS sampling) threads an explicitly
seeded generator.  A single ``random.random()`` or ``np.random.rand()``
drawing from hidden global state — or an unseeded ``random.Random()`` /
``np.random.default_rng()`` default — silently breaks that: reruns stop
being comparable and flaky tests follow.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import LintContext, RawFinding
from repro.analysis.rules.base import Rule
from repro.analysis.rules._util import dotted_name, import_aliases

#: ``random.<fn>`` draws that consume the hidden module-global state.
_GLOBAL_DRAWS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

#: Constructors that are fine *seeded* but non-reproducible bare.
_SEEDABLE_CTORS = {"random.Random", "numpy.random.default_rng"}


class UnseededRngRule(Rule):
    """Global-state or unseeded randomness in library code."""

    id = "BRS003"
    name = "unseeded-rng"
    rationale = (
        "Reproducibility: all randomness is drawn from explicitly seeded, "
        "injectable generators, never from hidden module-global state."
    )
    scope_re = re.compile(r"(^|/)repro/")

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = dotted_name(node.func, aliases)
            if canonical is None:
                continue
            message = self._diagnose(canonical, node)
            if message is not None:
                yield RawFinding(
                    line=node.lineno, col=node.col_offset, message=message
                )

    @staticmethod
    def _diagnose(canonical: str, node: ast.Call):
        if canonical in _SEEDABLE_CTORS:
            if not node.args and not node.keywords:
                return (
                    f"unseeded {canonical}(); pass an explicit seed (or "
                    "accept an injected generator) so runs are reproducible"
                )
            return None
        parts = canonical.split(".")
        if parts[0] == "random" and len(parts) == 2 and parts[1] in _GLOBAL_DRAWS:
            return (
                f"{canonical}() draws from the hidden module-global RNG; "
                "use an explicitly seeded random.Random instance"
            )
        if canonical.startswith("numpy.random.") and len(parts) == 3:
            if parts[2] not in ("default_rng", "Generator", "SeedSequence"):
                return (
                    f"legacy {canonical}() uses numpy's global RNG state; "
                    "use numpy.random.default_rng(seed)"
                )
        return None
