"""BRS002 — wall-clock reads belong to ``repro.runtime`` and ``repro.obs``.

Deadline discipline: budgets (`repro.runtime.budget.Budget`) own "how much
time is left" and traces (`repro.obs.trace`) own "when did this happen".
Any other module reading the wall clock invents its own notion of time
that the budget machinery cannot see — exactly how deadline bugs (sleeps
that outlive the deadline, ad-hoc timeouts that disagree with the
ambient budget) creep in.  Duration measurement with
``time.perf_counter()`` stays allowed everywhere: it is not a wall clock
and is useless for deadlines shared across components.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import LintContext, RawFinding
from repro.analysis.rules.base import Rule
from repro.analysis.rules._util import dotted_name, import_aliases

#: Canonical dotted names of forbidden clock reads.
_FORBIDDEN = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.monotonic": "time.monotonic()",
    "time.monotonic_ns": "time.monotonic_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


class WallClockRule(Rule):
    """Raw clock reads outside the runtime/observability layers."""

    id = "BRS002"
    name = "wall-clock-discipline"
    rationale = (
        "Budgets own deadlines and traces own timestamps; ad-hoc wall-clock "
        "reads elsewhere disagree with the ambient budget and cause "
        "deadline bugs."
    )
    scope_re = re.compile(r"(^|/)repro/")
    exclude_re = re.compile(r"(^|/)repro/(runtime|obs)/")

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = dotted_name(node.func, aliases)
            if canonical is None:
                continue
            spelled = _FORBIDDEN.get(canonical)
            if spelled is None:
                continue
            yield RawFinding(
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{spelled} outside repro.runtime/repro.obs; thread a "
                    "runtime Budget for deadlines or use time.perf_counter() "
                    "for durations"
                ),
            )
