"""BRS001 — strict-inside containment must not use ``==``/``<=``/``>=``.

Definition 2 of the paper makes query rectangles *open*: an object on the
boundary is outside.  The MaxRS literature (Choi et al., arXiv:1208.0073)
shows tie-breaking at rectangle boundaries silently changes answers, so a
single ``<=`` slipped into a containment predicate is a wrong-answer bug
no test with generic random points will catch.  This rule flags
boundary-inclusive comparisons on coordinates inside containment-shaped
functions in ``repro/geometry/`` and ``repro/core/``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from repro.analysis.engine import LintContext, RawFinding
from repro.analysis.rules.base import Rule

#: Function names treated as containment predicates.
_CONTAINMENT_NAME_RE = re.compile(
    r"contains|inside|in_region|in_rect|strictly_within"
)

#: Identifiers that read as point/rectangle coordinates.
_COORD_NAMES: Set[str] = {
    "x", "y", "px", "py", "cx", "cy",
    "x_min", "x_max", "y_min", "y_max",
    "x_lo", "x_hi", "y_lo", "y_hi",
}

_OP_SPELLING = {ast.Eq: "==", ast.LtE: "<=", ast.GtE: ">="}


def _is_coordinate(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _COORD_NAMES
    if isinstance(node, ast.Name):
        return node.id in _COORD_NAMES
    return False


class OpenRectangleComparisonRule(Rule):
    """Boundary-inclusive coordinate comparisons in containment paths."""

    id = "BRS001"
    name = "open-rect-comparison"
    rationale = (
        "Query rectangles are open (paper Definition 2): containment "
        "predicates must compare coordinates strictly, or boundary objects "
        "silently change answers."
    )
    scope_re = re.compile(r"(^|/)repro/(geometry|core)/")

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _CONTAINMENT_NAME_RE.search(node.name):
                continue
            yield from self._check_function(node)

    def _check_function(self, fn: ast.AST) -> Iterator[RawFinding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                spelling = _OP_SPELLING.get(type(op))
                if spelling is None:
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_coordinate(left) or _is_coordinate(right):
                    yield RawFinding(
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"boundary-inclusive '{spelling}' on a coordinate "
                            "inside a containment predicate; open-rectangle "
                            "semantics require strict '<'/'>' (suppress with "
                            "a justification if closed semantics are "
                            "deliberate here)"
                        ),
                    )
