"""The rule interface: a scope predicate plus an AST check."""

from __future__ import annotations

import re
from typing import Iterator, Optional

from repro.analysis.engine import LintContext, RawFinding


class Rule:
    """One invariant checker.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        id: stable identifier used in reports, noqa comments, and the
            baseline (``BRS001`` ...).
        name: short kebab-case mnemonic.
        rationale: one-sentence statement of the invariant the rule
            protects (surfaced by ``--list-rules`` and the docs).
        scope_re: files the rule applies to, matched with ``re.search``
            against the posix relative path.  An empty pattern means
            every linted file.
        exclude_re: files exempted even when ``scope_re`` matches.
    """

    id: str = "BRS000"
    name: str = "abstract-rule"
    rationale: str = ""
    scope_re: re.Pattern = re.compile(r"")
    exclude_re: Optional[re.Pattern] = None

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the file at ``path`` (posix, relative)."""
        if not self.scope_re.search(path):
            return False
        if self.exclude_re is not None and self.exclude_re.search(path):
            return False
        return True

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        """Yield the rule's findings for one parsed file."""
        raise NotImplementedError
