"""BRS009 — columnar kernels must not fall back to per-element loops.

The whole point of :mod:`repro.columnar` is that inner loops run inside
NumPy, not the interpreter: one scalar ``for i in range(len(xs)):`` over
a column silently turns a vectorized kernel back into the object path it
was built to replace, at 100-1000x the cost — and nothing fails, the
answer is still right, so only a profiler (or this lint) notices.  The
rule is *lexical* and deliberately narrow: it flags the two idioms that
are unambiguous scalar iteration — index loops shaped
``range(len(x))`` / ``range(x.size)`` / ``range(x.shape[i])`` — and the
NumPy helpers that are interpreter loops in disguise
(``np.vectorize``, ``np.apply_along_axis``, ``np.nditer``).  Loops over
Python containers, batch lists, or slab orderings stay legal; a
legitimate scalar loop (one-time facade materialization, a tiny
fixed-size walk) carries a ``# brs: noqa[BRS009]`` with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

import re

from repro.analysis.engine import LintContext, RawFinding
from repro.analysis.rules.base import Rule
from repro.analysis.rules._util import dotted_name, import_aliases

#: NumPy entry points that iterate elementwise in the interpreter.
_LOOPY_NUMPY = {
    "numpy.vectorize",
    "numpy.apply_along_axis",
    "numpy.nditer",
}


def _index_loop_reason(iterable: ast.AST) -> Optional[str]:
    """Why ``for ... in <iterable>`` is a scalar index loop, or ``None``.

    Matches ``range(len(x))``, ``range(x.size)``, and
    ``range(x.shape[...])`` — including the two- and three-argument
    ``range`` forms with the length in any position.
    """
    if not (
        isinstance(iterable, ast.Call)
        and isinstance(iterable.func, ast.Name)
        and iterable.func.id == "range"
    ):
        return None
    for arg in iterable.args:
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id == "len"
        ):
            return "range(len(...))"
        if isinstance(arg, ast.Attribute) and arg.attr == "size":
            return "range(<array>.size)"
        if (
            isinstance(arg, ast.Subscript)
            and isinstance(arg.value, ast.Attribute)
            and arg.value.attr == "shape"
        ):
            return "range(<array>.shape[...])"
    return None


class ScalarLoopRule(Rule):
    """Per-element Python loops inside the columnar kernels."""

    id = "BRS009"
    name = "columnar-scalar-loop"
    rationale = (
        "A scalar index loop over a column runs the kernel at interpreter "
        "speed; express it as a vectorized NumPy operation or noqa a "
        "deliberate one-time materialization."
    )
    scope_re = re.compile(r"(^|/)repro/columnar/")

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                reason = _index_loop_reason(node.iter)
                if reason is not None:
                    yield RawFinding(
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"scalar index loop over {reason} in a columnar "
                            "kernel; replace with a vectorized operation "
                            "(searchsorted/reduceat/cumsum/fancy indexing)"
                        ),
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    reason = _index_loop_reason(gen.iter)
                    if reason is not None:
                        # Anchor on the generator itself so a noqa on the
                        # ``for ... in range(...)`` line suppresses it.
                        yield RawFinding(
                            line=gen.iter.lineno,
                            col=gen.iter.col_offset,
                            message=(
                                f"scalar index comprehension over {reason} "
                                "in a columnar kernel; replace with a "
                                "vectorized operation"
                            ),
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func, aliases)
                if name in _LOOPY_NUMPY:
                    yield RawFinding(
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{name} is an interpreter loop in disguise; "
                            "columnar kernels need true vectorized NumPy "
                            "operations"
                        ),
                    )
