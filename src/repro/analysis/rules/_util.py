"""Shared AST helpers for rules: import tracking and name resolution.

Rules match *canonical* dotted names (``time.monotonic``,
``numpy.random.default_rng``) so aliasing cannot dodge them:
``import time as t; t.monotonic()`` and
``from time import monotonic; monotonic()`` both resolve to
``time.monotonic``.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

#: ``from datetime import datetime`` binds a *class*; map the bare class
#: names to their canonical homes so attribute calls resolve fully.
_FROM_IMPORT_CANONICAL = {
    ("datetime", "datetime"): "datetime.datetime",
    ("datetime", "date"): "datetime.date",
}


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map every locally bound import alias to its canonical dotted name.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from time import monotonic as m`` yields ``{"m": "time.monotonic"}``.
    Star imports are ignored (nothing to resolve).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never shadow stdlib modules
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                canonical = _FROM_IMPORT_CANONICAL.get(
                    (node.module, alias.name),
                    f"{node.module}.{alias.name}",
                )
                aliases[local] = canonical
    return aliases


def dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to a canonical dotted name.

    Returns ``None`` when the chain hangs off something that is not a
    plain name (a call result, a subscript, ...), which rules treat as
    "cannot tell — stay quiet" rather than guessing.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a call target: ``a.b.c`` -> ``c``, ``f`` -> ``f``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
