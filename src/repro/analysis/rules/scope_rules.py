"""BRS006 — ambient scopes are entered with ``with``, never by hand.

``budget_scope`` / ``metrics_scope`` / ``trace_scope`` / ``profile_scope``
install a ContextVar for a dynamic extent and *must* restore it on every
exit path, including ``BudgetExceededError`` unwinds.  Calling one and
discarding the result does nothing; calling ``__enter__`` by hand leaks
the ambient value into unrelated queries when an exception skips the
matching ``__exit__`` — a cross-request contamination bug in the serving
layer.  ``contextlib.ExitStack.enter_context(...)`` is the sanctioned
programmatic form and stays allowed.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from repro.analysis.engine import LintContext, RawFinding
from repro.analysis.rules.base import Rule
from repro.analysis.rules._util import terminal_name

#: The ambient scope constructors this rule guards.
_SCOPE_FNS = {"budget_scope", "metrics_scope", "trace_scope", "profile_scope"}


class ScopeDisciplineRule(Rule):
    """Ambient scope objects used outside a ``with`` statement."""

    id = "BRS006"
    name = "scope-discipline"
    rationale = (
        "Ambient scopes must restore their ContextVar on every exit path; "
        "manual __enter__ or a discarded scope call leaks state across "
        "queries."
    )
    scope_re = re.compile(r"")  # every linted file

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        sanctioned = self._sanctioned_calls(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name in _SCOPE_FNS and id(node) not in sanctioned:
                    yield RawFinding(
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{name}(...) outside a 'with' statement; enter "
                            "ambient scopes via 'with' (or "
                            "ExitStack.enter_context) so the ContextVar is "
                            "restored on every exit path"
                        ),
                    )
                # Manual protocol calls on a scope object are never OK,
                # even on a sanctioned call expression.
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("__enter__", "__exit__")
                    and isinstance(node.func.value, ast.Call)
                    and terminal_name(node.func.value.func) in _SCOPE_FNS
                ):
                    yield RawFinding(
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"manual {node.func.attr} on "
                            f"{terminal_name(node.func.value.func)}(...); "
                            "use a 'with' block"
                        ),
                    )

    @staticmethod
    def _sanctioned_calls(tree: ast.Module) -> Set[int]:
        """Node ids of scope calls in sanctioned positions."""
        sanctioned: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        sanctioned.add(id(item.context_expr))
            elif (
                isinstance(node, ast.Call)
                and terminal_name(node.func) == "enter_context"
            ):
                for arg in node.args:
                    if isinstance(arg, ast.Call):
                        sanctioned.add(id(arg))
        return sanctioned
