"""BRS007 — never block while holding a lock in the serving layer.

The serve pipeline shares small locks (planner table, cache LRU, dataset
store, admission counter) between HTTP handler threads, the dispatcher,
and the worker pool.  Every existing ``with self._lock:`` body does a few
dict operations and exits.  A solver call, a sleep, a ``Future.result()``
or a queue wait inside such a body would serialize the entire engine — or
deadlock it outright when the blocked work needs the same lock.  This is
a *lexical* lint: it flags calls syntactically inside a ``with <lock>:``
body, skipping nested function definitions (those run later, not under
the lock).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import LintContext, RawFinding
from repro.analysis.rules.base import Rule
from repro.analysis.rules._util import terminal_name

#: Method/function names that block the calling thread.
_BLOCKING_NAMES = {
    "accept", "acquire", "getresponse", "join", "recv", "result",
    "serve_forever", "sleep", "urlopen", "wait",
}

#: Solver entry points: unbounded CPU work, never under a lock.
_SOLVER_ENTRIES = {
    "best_region", "coarse_grid_scan", "oe_maxrs", "solve", "topk_regions",
}

#: ``.get``/``.put`` only count when the receiver looks like a queue.
_QUEUE_METHODS = {"get", "put", "get_nowait", "put_nowait"}

_LOCKISH_RE = re.compile(r"lock|mutex|cond", re.IGNORECASE)


def _is_lockish(expr: ast.AST) -> bool:
    """Does a ``with`` context expression read as acquiring a lock?"""
    if isinstance(expr, ast.Call):
        name = terminal_name(expr.func)
        return name in ("Lock", "RLock", "Condition", "Semaphore")
    name = terminal_name(expr)
    return name is not None and bool(_LOCKISH_RE.search(name))


class HeldLockBlockingRule(Rule):
    """Blocking or solver calls lexically inside a ``with <lock>:`` body."""

    id = "BRS007"
    name = "held-lock-blocking"
    rationale = (
        "Serve locks guard a few dict ops; a solver call, sleep, or "
        "future/queue wait inside one serializes or deadlocks the worker "
        "pool."
    )
    scope_re = re.compile(r"(^|/)repro/serve/")

    def check(self, ctx: LintContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(_is_lockish(item.context_expr) for item in node.items):
                continue
            for stmt in node.body:
                yield from self._scan(stmt)

    def _scan(self, node: ast.AST) -> Iterator[RawFinding]:
        """Flag blocking calls under ``node``, skipping deferred bodies."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # runs later, not while the lock is held
        if isinstance(node, ast.Call):
            message = self._diagnose(node)
            if message is not None:
                yield RawFinding(
                    line=node.lineno, col=node.col_offset, message=message
                )
        for child in ast.iter_child_nodes(node):
            yield from self._scan(child)

    @staticmethod
    def _diagnose(node: ast.Call):
        name = terminal_name(node.func)
        if name is None:
            return None
        receiver = (
            node.func.value if isinstance(node.func, ast.Attribute) else None
        )
        # ``", ".join(...)`` and friends: string methods are not blocking.
        if isinstance(receiver, (ast.Constant, ast.JoinedStr)):
            return None
        if name in _SOLVER_ENTRIES:
            return (
                f"solver entry point {name}() called while holding a lock; "
                "release the lock before unbounded CPU work"
            )
        if name in _BLOCKING_NAMES:
            return (
                f"blocking call {name}() while holding a lock can deadlock "
                "the serve worker pool; move it outside the 'with <lock>:' "
                "body"
            )
        if name in _QUEUE_METHODS and receiver is not None:
            recv_name = terminal_name(receiver)
            if recv_name is not None and "queue" in recv_name.lower():
                return (
                    f"queue operation {recv_name}.{name}() can block while "
                    "the lock is held; drain the queue outside the lock"
                )
        return None
