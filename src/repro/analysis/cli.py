"""The lint front end: ``repro-brs lint`` / ``python -m repro.analysis``.

Exit codes are distinct so CI and scripts can branch on the failure
family without parsing output:

* :data:`EXIT_CLEAN` (0) — no new findings (baselined ones are fine).
* :data:`EXIT_FINDINGS` (1) — at least one new finding or parse error.
* :data:`EXIT_USAGE` (2) — bad invocation (unknown rule, missing path,
  malformed baseline).  Matches argparse's own usage-error code.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.concurrency import INTERPROCEDURAL_RULES, run_interprocedural
from repro.analysis.engine import LintEngine, LintReport
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import default_rules

#: Exit code: no new findings.
EXIT_CLEAN = 0
#: Exit code: new findings (or files that failed to parse).
EXIT_FINDINGS = 1
#: Exit code: the invocation itself was invalid.
EXIT_USAGE = 2

#: Baseline committed at the repository root.
DEFAULT_BASELINE = ".brs-lint-baseline.json"

#: Rule ids that only exist in the interprocedural pass.
INTERPROCEDURAL_IDS = tuple(rid for rid, _, _ in INTERPROCEDURAL_RULES)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-brs lint`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-brs lint",
        description=(
            "AST-based invariant linter for the BRS codebase; rule "
            "catalogue in docs/static-analysis.md"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--root", default=".",
        help="project root for relative paths, docs, and the baseline",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the report to PATH (useful as a CI artifact)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report grandfathered findings too",
    )
    parser.add_argument(
        "--select", metavar="RULE", nargs="+", default=None,
        help="run only these rule ids (e.g. BRS002 BRS007)",
    )
    parser.add_argument(
        "--exclude", metavar="FRAGMENT", nargs="+", default=None,
        help="extra path fragments to skip (fixtures are always skipped)",
    )
    parser.add_argument(
        "--interprocedural", action="store_true",
        help=(
            "also run the whole-program concurrency rules (BRS010-BRS012) "
            "over the repro package"
        ),
    )
    parser.add_argument(
        "--graph-out", metavar="PATH", default=None,
        help=(
            "dump the resolved call graph + lock graph as JSON to PATH "
            "(implies building the interprocedural view)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="per-rule counts and stale-baseline details in the summary",
    )
    return parser


def _select_rules(
    rules: List,
    select: Optional[Sequence[str]],
    extra_known: Sequence[str] = (),
) -> List:
    if select is None:
        return rules
    wanted = {s.upper() for s in select}
    known = {r.id for r in rules} | set(extra_known)
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {sorted(unknown)}; known: {sorted(known)}"
        )
    return [r for r in rules if r.id in wanted]


def run_lint(
    paths: Sequence[str],
    root: pathlib.Path,
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
    excludes: Optional[Sequence[str]] = None,
    interprocedural: bool = False,
    graph_out: Optional[pathlib.Path] = None,
) -> LintReport:
    """Programmatic entry point: lint ``paths`` with the default rule set.

    Relative paths are resolved against ``root``, so ``repro-brs lint
    --root <checkout>`` lints that checkout regardless of the current
    directory.  Used by the benchmark driver to time analysis cost and by
    the test suite; equivalent to the CLI minus reporting.

    With ``interprocedural`` the whole-program concurrency rules
    (BRS010–BRS012) run over the ``repro`` package under ``root`` and
    their findings merge into the same report: the baseline ratchet,
    suppression counts, and stale-entry detection treat both passes as
    one rule set.  ``graph_out`` writes the resolved call graph + lock
    graph JSON (and builds the graph even without ``interprocedural``).
    """
    extra = INTERPROCEDURAL_IDS if interprocedural else ()
    rules = _select_rules(default_rules(root), select, extra_known=extra)
    engine = LintEngine(rules, root=root, excludes=None)
    if excludes:
        engine.excludes = engine.excludes + tuple(excludes)
    resolved = [
        p if p.is_absolute() else root / p
        for p in (pathlib.Path(raw) for raw in paths)
    ]
    report = engine.lint_paths(resolved, baseline=baseline)
    if interprocedural or graph_out is not None:
        inter_findings, inter_suppressed, payload = run_interprocedural(root)
        if graph_out is not None:
            pathlib.Path(graph_out).write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        if interprocedural:
            bl = baseline or Baseline()
            wanted = {s.upper() for s in select} if select else None
            for finding in inter_findings:
                if wanted is not None and finding.rule not in wanted:
                    continue
                if bl.contains(finding.fingerprint):
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)
            report.suppressed_count += inter_suppressed
            report.stale_baseline = bl.stale_entries(
                f.fingerprint for f in report.findings + report.baselined
            )
            report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; see module docstring for the exit-code contract."""
    args = build_parser().parse_args(argv)
    root = pathlib.Path(args.root).resolve()

    if args.list_rules:
        for rule in default_rules(root):
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.rationale}")
        for rid, name, description in INTERPROCEDURAL_RULES:
            print(f"{rid}  {name}  [--interprocedural]")
            print(f"    {description}")
        return EXIT_CLEAN

    baseline_path = (
        pathlib.Path(args.baseline)
        if args.baseline is not None
        else root / DEFAULT_BASELINE
    )
    try:
        baseline = (
            Baseline() if args.no_baseline else Baseline.load(baseline_path)
        )
        started = time.perf_counter()
        report = run_lint(
            args.paths,
            root=root,
            baseline=baseline,
            select=args.select,
            excludes=args.exclude,
            interprocedural=args.interprocedural,
            graph_out=(
                pathlib.Path(args.graph_out) if args.graph_out else None
            ),
        )
        elapsed = time.perf_counter() - started
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.update_baseline:
        merged = Baseline.from_findings(report.findings + report.baselined)
        merged.save(baseline_path)
        print(
            f"baseline: wrote {len(merged)} entr"
            f"{'y' if len(merged) == 1 else 'ies'} to {baseline_path}"
        )
        return EXIT_CLEAN

    rendered = (
        render_json(report)
        if args.format == "json"
        else render_text(report, verbose=args.verbose)
    )
    sys.stdout.write(rendered)
    if args.output:
        pathlib.Path(args.output).write_text(rendered)
    if args.verbose:
        print(f"[lint {elapsed:.2f}s]", file=sys.stderr)
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS
