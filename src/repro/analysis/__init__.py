"""AST-based invariant linter for the BRS codebase (`repro-brs lint`).

The solver stack's correctness rests on conventions that ordinary tests
cannot see: open-rectangle containment must never compare coordinates
with ``==``/``<=``, deadline discipline forbids wall-clock reads outside
``repro.runtime``/``repro.obs``, the serve worker pool must never block
while holding a lock.  This package makes those contracts machine-checked
so refactors cannot silently regress them.

Architecture (one module per concern):

* :mod:`repro.analysis.engine` — walks files, parses ASTs, runs rules,
  applies suppressions and the baseline.
* :mod:`repro.analysis.rules` — the rule catalogue; each rule is a small
  ``ast`` visitor scoped to the subpackages whose invariant it protects.
* :mod:`repro.analysis.suppressions` — ``# brs: noqa[RULE]`` per-line and
  ``# brs: noqa-file[RULE]`` per-file escape hatches.
* :mod:`repro.analysis.baseline` — grandfathered findings, fingerprinted
  by content (not line number) so unrelated edits do not churn it.
* :mod:`repro.analysis.reporting` — text and JSON reporters.
* :mod:`repro.analysis.cli` — the ``repro-brs lint`` /
  ``python -m repro.analysis`` front end with distinct exit codes.

Whole-program layer (``repro-brs lint --interprocedural``):

* :mod:`repro.analysis.callgraph` — resolves a project-wide call graph
  (method dispatch, import aliases, inferred attribute types, lock
  acquisition sites).
* :mod:`repro.analysis.concurrency` — interprocedural rules BRS010
  (lock-order cycles), BRS011 (blocking reachable under a held lock),
  BRS012 (unbudgeted serve→solver paths).
* :mod:`repro.analysis.sanitizer` — runtime lock-order sanitizer that
  confirms or refutes the static findings under real execution.

The rule catalogue and the workflow are documented in
``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.cli import main
from repro.analysis.concurrency import INTERPROCEDURAL_RULES, run_interprocedural
from repro.analysis.engine import Finding, LintEngine, LintReport
from repro.analysis.rules import Rule, default_rules
from repro.analysis.sanitizer import (
    LockOrderSanitizer,
    SanitizedLock,
    instrument_locks,
)

__all__ = [
    "Baseline",
    "CallGraph",
    "Finding",
    "INTERPROCEDURAL_RULES",
    "LintEngine",
    "LintReport",
    "LockOrderSanitizer",
    "Rule",
    "SanitizedLock",
    "build_callgraph",
    "default_rules",
    "instrument_locks",
    "main",
    "run_interprocedural",
]
