"""Baseline files: grandfathered findings that do not fail the build.

A baseline lets the linter land with the codebase imperfect: existing
findings are recorded once (``--update-baseline``) and subsequent runs
only fail on *new* findings.  The ratchet only tightens — fixing a
grandfathered finding makes its entry stale, and stale entries are
reported so the baseline shrinks over time instead of rotting.

Entries are matched by **fingerprint**, a hash of the rule id, the file's
path, the whitespace-normalized source line, and the occurrence index of
that line among the file's identical findings.  Line numbers are
deliberately excluded: inserting a docstring above a grandfathered line
must not churn the baseline, while editing the offending line itself must
surface the finding again.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Union

#: Schema version written to (and required of) baseline files.
BASELINE_VERSION = 1


def fingerprint(rule_id: str, path: str, snippet: str, occurrence: int) -> str:
    """Stable identity of one finding (see module docstring for the why).

    Args:
        rule_id: the rule that fired.
        path: posix-style path relative to the lint root.
        snippet: the source line the finding points at.
        occurrence: 0-based index among findings of the same rule with the
            same normalized snippet in the same file, so duplicated lines
            get distinct fingerprints.
    """
    normalized = " ".join(snippet.split())
    payload = f"{rule_id}\x00{path}\x00{normalized}\x00{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """An in-memory baseline: fingerprints of grandfathered findings.

    Attributes:
        entries: fingerprint -> the recorded entry (rule, path, message —
            kept for human review of the baseline file).
    """

    entries: Dict[str, dict] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def contains(self, fp: str) -> bool:
        """True when ``fp`` is grandfathered."""
        return fp in self.entries

    def stale_entries(self, seen_fingerprints: Iterable[str]) -> List[dict]:
        """Entries whose finding no longer exists (candidates to drop)."""
        seen = set(seen_fingerprints)
        return [
            entry
            for fp, entry in sorted(self.entries.items())
            if fp not in seen
        ]

    # -- serialization ---------------------------------------------------

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline.

        Raises:
            ValueError: on a malformed file or unknown schema version.
        """
        p = pathlib.Path(path)
        if not p.exists():
            return cls()
        try:
            payload = json.loads(p.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {p} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(f"baseline {p} lacks a 'findings' list")
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {p} has version {payload.get('version')!r}; "
                f"this linter understands version {BASELINE_VERSION}"
            )
        entries: Dict[str, dict] = {}
        for entry in payload["findings"]:
            if "fingerprint" not in entry:
                raise ValueError(f"baseline {p} entry lacks a fingerprint")
            entries[entry["fingerprint"]] = dict(entry)
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable) -> "Baseline":
        """Build a baseline grandfathering every finding in ``findings``."""
        entries: Dict[str, dict] = {}
        for f in findings:
            entries[f.fingerprint] = {
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
        return cls(entries=entries)

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Write the baseline file (sorted, pretty-printed, trailing \\n)."""
        rows = sorted(
            self.entries.values(),
            key=lambda e: (e.get("path", ""), e.get("rule", ""), e["fingerprint"]),
        )
        payload = {"version": BASELINE_VERSION, "findings": rows}
        pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
