"""Interprocedural concurrency rules: BRS010, BRS011, BRS012.

These rules run on the whole-program view built by
:mod:`repro.analysis.callgraph`; they are what the per-file rules
(BRS001–BRS009) structurally cannot express:

* **BRS010 lock-order-cycle** — build the static lock-acquisition graph
  (an edge ``A -> B`` means some execution path acquires ``B`` while
  holding ``A``, possibly through several calls) and report every cycle
  as a potential deadlock, with a witness path for each edge.
* **BRS011 held-lock-interprocedural-blocking** — generalize BRS007: a
  lock held at a call site whose *transitive callees* can block on I/O
  (``os.fsync``), ``Queue.get``/``put``, ``Future.result``, ``wait``,
  or ``time.sleep``.  Direct blocking calls under a lock stay BRS007's
  business; BRS011 fires only when the blocking is at least one internal
  call away, which is exactly what a per-file rule cannot see.
* **BRS012 unbudgeted-serve-path** — every solver function reachable
  from ``ServeEngine`` execution must pass through a ``runtime.Budget``
  check somewhere on the path (``budget.expired()``, ``Budget.of(...)``,
  or forwarding a ``budget=`` argument), or carry an explicit
  ``# brs: unbudgeted-ok`` annotation on its ``def`` line.

Findings re-use the engine's machinery end to end: content fingerprints
(so the baseline ratchet grandfathers them), ``# brs: noqa[BRS01x]``
line suppressions (parsed per file, applied at the reported line), and
the :class:`~repro.analysis.engine.Finding` shape (so both reporters
render them unchanged).
"""

from __future__ import annotations

import pathlib
import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import fingerprint
from repro.analysis.callgraph import CallGraph, CallSite, FunctionNode, build_callgraph
from repro.analysis.engine import Finding
from repro.analysis.suppressions import SuppressionIndex, parse_suppressions

#: Rule catalogue for ``--list-rules`` and the docs table.
INTERPROCEDURAL_RULES: Tuple[Tuple[str, str, str], ...] = (
    (
        "BRS010",
        "lock-order-cycle",
        "cycle in the static lock-acquisition graph (potential deadlock)",
    ),
    (
        "BRS011",
        "held-lock-interprocedural-blocking",
        "lock held across a call whose transitive callees can block",
    ),
    (
        "BRS012",
        "unbudgeted-serve-path",
        "solver reachable from ServeEngine without a runtime.Budget check",
    ),
)

#: Paths the lock rules (BRS010/BRS011) apply to.
_CONCURRENCY_SCOPE = re.compile(r"(^|/)repro/(serve|ingest|parallel|obs)/")

#: Terminal callable names that block unconditionally.
_ALWAYS_BLOCKING = {
    "accept",
    "fdatasync",
    "fsync",
    "getresponse",
    "recv",
    "serve_forever",
    "sleep",
    "urlopen",
    "wait",
}

#: ``x.join()`` blocks only when the receiver reads as a thread/worker —
#: otherwise it is ``os.path.join`` or ``str.join`` noise.
_JOINABLE_RECEIVER = re.compile(
    r"thread|worker|proc|pool|dispatch|drain", re.IGNORECASE
)

#: ``x.get()``/``x.put()`` block only on queue-ish receivers.
_QUEUE_RECEIVER = re.compile(r"queue|fifo|mailbox|inbox", re.IGNORECASE)

#: ``x.acquire()`` blocks on lock/semaphore-ish receivers.
_ACQUIRABLE_RECEIVER = re.compile(r"lock|sem|cond|mutex", re.IGNORECASE)

#: ``x.result()`` blocks on future-ish receivers (Executor.submit+result).
_FUTURE_RECEIVER = re.compile(r"fut|task|promise|pending|job", re.IGNORECASE)

#: Solver entry points the budget discipline (BRS012) protects.  This is
#: BRS007's `_SOLVER_ENTRIES` plus the sharded driver.
_SOLVER_NAMES = {
    "best_region",
    "coarse_grid_scan",
    "oe_maxrs",
    "solve",
    "solve_partitioned",
    "topk_regions",
}

#: Annotation (see callgraph._ANNOTATION_RE) that opts a solver out of
#: the budget requirement.
_UNBUDGETED_OK = "unbudgeted-ok"


def blocking_reason(site: CallSite) -> Optional[str]:
    """Why an *external* call site blocks, or None if it does not.

    Only summarized (unresolved) calls are classified here — a call that
    resolved to a project function is handled by the fixpoint instead.
    """
    if site.callee is not None or site.kind != "call":
        return None
    name = (site.external or site.raw).rsplit(".", 1)[-1]
    receiver = site.receiver or ""
    if name in _ALWAYS_BLOCKING:
        return site.external or site.raw
    if name == "join" and _JOINABLE_RECEIVER.search(receiver):
        return site.raw
    if name in {"get", "put"} and _QUEUE_RECEIVER.search(receiver):
        return site.raw
    if name == "acquire" and _ACQUIRABLE_RECEIVER.search(receiver):
        return site.raw
    if name == "result" and _FUTURE_RECEIVER.search(receiver):
        return site.raw
    return None


# -- fixpoints ---------------------------------------------------------------


@dataclass(frozen=True)
class _BlockWhy:
    """Why a function may block: a primitive here, or via a callee."""

    kind: str  # "external" | "call"
    detail: str  # primitive name, or callee qualname
    line: int


@dataclass(frozen=True)
class _AcquireWhy:
    """How a function comes to hold a lock: directly, or via a callee."""

    kind: str  # "direct" | "call"
    detail: str  # "" for direct, callee qualname for call
    line: int


def _call_edges(node: FunctionNode) -> Iterable[CallSite]:
    """Real (synchronous) call edges — ``ref`` edges run on other threads,
    so they never propagate "blocks *now*" or "holds this lock *now*"."""
    for site in node.calls:
        if site.kind == "call" and site.callee is not None:
            yield site


def compute_may_block(graph: CallGraph) -> Dict[str, _BlockWhy]:
    """Fixpoint: which functions can block, with a witness next-hop."""
    why: Dict[str, _BlockWhy] = {}
    for qual, node in graph.functions.items():
        for site in node.calls:
            reason = blocking_reason(site)
            if reason is not None:
                why[qual] = _BlockWhy("external", reason, site.line)
                break
    changed = True
    while changed:
        changed = False
        for qual, node in graph.functions.items():
            if qual in why:
                continue
            for site in _call_edges(node):
                if site.callee in why:
                    why[qual] = _BlockWhy("call", site.callee, site.line)
                    changed = True
                    break
    return why


def block_chain(graph: CallGraph, why: Dict[str, _BlockWhy], qual: str) -> List[str]:
    """Human-readable witness chain from ``qual`` to the blocking primitive."""
    chain: List[str] = []
    seen: Set[str] = set()
    while qual in why and qual not in seen:
        seen.add(qual)
        entry = why[qual]
        node = graph.functions.get(qual)
        loc = f"{node.path}:{entry.line}" if node else str(entry.line)
        if entry.kind == "external":
            chain.append(f"{qual} ({loc}) blocks on {entry.detail}")
            break
        chain.append(f"{qual} ({loc}) calls {entry.detail}")
        qual = entry.detail
    return chain


def compute_may_acquire(
    graph: CallGraph,
) -> Dict[str, Dict[str, _AcquireWhy]]:
    """Fixpoint: which locks each function's execution can acquire."""
    acq: Dict[str, Dict[str, _AcquireWhy]] = defaultdict(dict)
    for qual, node in graph.functions.items():
        for acquire in node.acquires:
            acq[qual].setdefault(
                acquire.lock_id, _AcquireWhy("direct", "", acquire.line)
            )
    changed = True
    while changed:
        changed = False
        for qual, node in graph.functions.items():
            mine = acq[qual]
            for site in _call_edges(node):
                for lock_id in acq.get(site.callee, {}):
                    if lock_id not in mine:
                        mine[lock_id] = _AcquireWhy(
                            "call", site.callee, site.line
                        )
                        changed = True
    return dict(acq)


def acquire_chain(
    graph: CallGraph,
    acq: Dict[str, Dict[str, _AcquireWhy]],
    qual: str,
    lock_id: str,
) -> List[str]:
    """Witness chain from ``qual`` down to the acquisition of ``lock_id``."""
    chain: List[str] = []
    seen: Set[str] = set()
    while qual not in seen:
        seen.add(qual)
        entry = acq.get(qual, {}).get(lock_id)
        if entry is None:
            break
        node = graph.functions.get(qual)
        loc = f"{node.path}:{entry.line}" if node else str(entry.line)
        if entry.kind == "direct":
            chain.append(f"{qual} ({loc}) acquires {lock_id}")
            break
        chain.append(f"{qual} ({loc}) calls {entry.detail}")
        qual = entry.detail
    return chain


# -- the lock-order graph ----------------------------------------------------


@dataclass(frozen=True)
class LockEdge:
    """``held -> acquired``: somewhere, ``acquired`` is taken under ``held``."""

    held: str
    acquired: str
    function: str
    path: str
    line: int
    witness: Tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "held": self.held,
            "acquired": self.acquired,
            "function": self.function,
            "path": self.path,
            "line": self.line,
            "witness": list(self.witness),
        }


def build_lock_graph(
    graph: CallGraph, acq: Dict[str, Dict[str, _AcquireWhy]]
) -> Dict[Tuple[str, str], LockEdge]:
    """Every ``held -> acquired`` pair, keeping one witness per edge.

    Two edge sources: a nested ``with`` inside one function, and a call
    made while holding a lock into a function whose execution acquires
    more locks.  Self-edges (re-entrant acquisition) are dropped — they
    are RLock idiom, not ordering information.
    """
    edges: Dict[Tuple[str, str], LockEdge] = {}

    def add(held: str, acquired: str, node: FunctionNode, line: int, witness: List[str]) -> None:
        if held == acquired or (held, acquired) in edges:
            return
        edges[(held, acquired)] = LockEdge(
            held=held,
            acquired=acquired,
            function=node.qualname,
            path=node.path,
            line=line,
            witness=tuple(witness),
        )

    for qual, node in graph.functions.items():
        for acquire in node.acquires:
            for held in acquire.held_locks:
                add(
                    held,
                    acquire.lock_id,
                    node,
                    acquire.line,
                    [f"{qual} ({node.path}:{acquire.line}) acquires "
                     f"{acquire.lock_id} while holding {held}"],
                )
        for site in _call_edges(node):
            if not site.held_locks:
                continue
            for lock_id in acq.get(site.callee, {}):
                for held in site.held_locks:
                    witness = [
                        f"{qual} ({node.path}:{site.line}) holds {held} and "
                        f"calls {site.callee}"
                    ] + acquire_chain(graph, acq, site.callee, lock_id)
                    add(held, lock_id, node, site.line, witness)
    return edges


def find_cycles(edges: Dict[Tuple[str, str], LockEdge]) -> List[List[str]]:
    """Every elementary cycle in the lock graph, deduped by lock set.

    The graphs here are tiny (a handful of locks), so a DFS from every
    node with an explicit path stack is plenty.
    """
    adjacency: Dict[str, List[str]] = defaultdict(list)
    for held, acquired in edges:
        adjacency[held].append(acquired)
    for targets in adjacency.values():
        targets.sort()
    cycles: List[List[str]] = []
    seen_sets: Set[frozenset] = set()

    def dfs(start: str, current: str, path: List[str], on_path: Set[str]) -> None:
        for nxt in adjacency.get(current, ()):
            if nxt == start:
                key = frozenset(path)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(list(path))
            elif nxt not in on_path and nxt > start:
                # Only walk nodes ordered after `start`: each cycle is
                # then discovered exactly once, from its smallest node.
                path.append(nxt)
                on_path.add(nxt)
                dfs(start, nxt, path, on_path)
                on_path.remove(nxt)
                path.pop()

    for node in sorted(adjacency):
        dfs(node, node, [node], {node})
    return cycles


# -- the rules ---------------------------------------------------------------


class _FindingBuilder:
    """Finding construction with engine-compatible fingerprints and noqa."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._occurrence: Dict[Tuple[str, str, str], int] = defaultdict(int)
        self._suppressions: Dict[str, SuppressionIndex] = {}
        self.findings: List[Finding] = []
        self.suppressed = 0

    def _suppression_index(self, path: str) -> SuppressionIndex:
        if path not in self._suppressions:
            lines = self.graph.sources.get(path, [])
            self._suppressions[path] = parse_suppressions("\n".join(lines))
        return self._suppressions[path]

    def emit(self, rule: str, path: str, line: int, col: int, message: str) -> None:
        snippet = self.graph.snippet(path, line)
        normalized = " ".join(snippet.split())
        key = (rule, path, normalized)
        index = self._occurrence[key]
        self._occurrence[key] += 1
        if self._suppression_index(path).is_suppressed(rule, line):
            self.suppressed += 1
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=path,
                line=line,
                col=col,
                message=message,
                snippet=snippet,
                fingerprint=fingerprint(rule, path, snippet, index),
            )
        )


def _check_lock_order(
    builder: _FindingBuilder,
    edges: Dict[Tuple[str, str], LockEdge],
) -> None:
    """BRS010: report each lock-order cycle once, with every edge witnessed."""
    for cycle in find_cycles(edges):
        cycle_edges = [
            edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
            for i in range(len(cycle))
        ]
        anchor = min(cycle_edges, key=lambda e: (e.path, e.line))
        if not _CONCURRENCY_SCOPE.search(anchor.path):
            continue
        order = " -> ".join(cycle + [cycle[0]])
        witnesses = "; ".join(
            f"[{i + 1}] " + " -> ".join(edge.witness)
            for i, edge in enumerate(cycle_edges)
        )
        builder.emit(
            "BRS010",
            anchor.path,
            anchor.line,
            0,
            f"lock-order cycle {order} is a potential deadlock; "
            f"witnesses: {witnesses}. Acquire locks in the canonical "
            f"order (docs/static-analysis.md) or collapse to one lock.",
        )


def _check_held_lock_blocking(
    builder: _FindingBuilder,
    graph: CallGraph,
    may_block: Dict[str, _BlockWhy],
) -> None:
    """BRS011: lock held across a call whose transitive callees block."""
    for qual, node in graph.functions.items():
        if not _CONCURRENCY_SCOPE.search(node.path):
            continue
        for site in _call_edges(node):
            if not site.held_locks:
                continue
            why = may_block.get(site.callee)
            if why is None:
                continue
            chain = block_chain(graph, may_block, site.callee)
            primitive = chain[-1].rsplit("blocks on ", 1)[-1] if chain else "?"
            builder.emit(
                "BRS011",
                node.path,
                site.line,
                site.col,
                f"lock {site.held_locks[-1]} is held across the call to "
                f"{site.callee}, whose execution can block on {primitive} "
                f"(path: {' -> '.join(chain)}); move the blocking work "
                f"outside the critical section or make it deferred.",
            )


def _check_unbudgeted_paths(
    builder: _FindingBuilder,
    graph: CallGraph,
) -> None:
    """BRS012: solver reachable from a serve engine with no budget check.

    Entry points are the methods of both serve front ends — the threaded
    ``ServeEngine`` and the asyncio ``AsyncServeEngine`` — since either
    can drive a solver on behalf of a request.
    """
    entries = [
        node
        for node in graph.functions.values()
        if node.class_name in ("ServeEngine", "AsyncServeEngine")
    ]
    reported: Set[str] = set()
    for entry in entries:
        # BFS over (function, budget-seen-on-path); ref edges count —
        # work handed to the pool is still serve execution.
        start_state = (entry.qualname, entry.checks_budget)
        queue: List[Tuple[str, bool]] = [start_state]
        parents: Dict[Tuple[str, bool], Tuple[str, bool]] = {}
        visited: Set[Tuple[str, bool]] = {start_state}
        while queue:
            qual, budgeted = queue.pop(0)
            node = graph.functions.get(qual)
            if node is None:
                continue
            if (
                node.name in _SOLVER_NAMES
                and not budgeted
                and not node.checks_budget
                and _UNBUDGETED_OK not in node.annotations
                and qual not in reported
            ):
                reported.add(qual)
                path_names = _bfs_path(parents, (qual, budgeted))
                builder.emit(
                    "BRS012",
                    node.path,
                    node.line,
                    0,
                    f"solver {qual} is reachable from {entry.qualname} "
                    f"(path: {' -> '.join(path_names)}) without passing a "
                    f"runtime.Budget check; thread a budget through the "
                    f"call chain or annotate the def with "
                    f"`# brs: unbudgeted-ok`.",
                )
            for site in node.calls:
                if site.callee is None:
                    continue
                callee = graph.functions.get(site.callee)
                if callee is None:
                    continue
                state = (site.callee, budgeted or callee.checks_budget)
                if state not in visited:
                    visited.add(state)
                    parents[state] = (qual, budgeted)
                    queue.append(state)


def _bfs_path(
    parents: Dict[Tuple[str, bool], Tuple[str, bool]],
    state: Tuple[str, bool],
) -> List[str]:
    names = [state[0]]
    while state in parents:
        state = parents[state]
        names.append(state[0])
    names.reverse()
    return names


# -- entry point -------------------------------------------------------------


def default_package(root: pathlib.Path) -> pathlib.Path:
    """Where the analyzed package lives under ``root``."""
    for candidate in (root / "src" / "repro", root / "repro"):
        if candidate.is_dir():
            return candidate
    return root


def run_interprocedural(
    root: pathlib.Path,
    paths: Optional[Sequence[pathlib.Path]] = None,
) -> Tuple[List[Finding], int, dict]:
    """Run BRS010–BRS012 over the project rooted at ``root``.

    Args:
        root: lint root (paths in findings are relative to it).
        paths: explicit files/dirs to analyze; defaults to the ``repro``
            package under ``root`` (``src/repro`` or ``repro``).

    Returns:
        ``(findings, suppressed_count, graph_payload)`` — findings are
        unfiltered by any baseline (the caller owns the ratchet), and
        ``graph_payload`` is the ``--graph-out`` JSON document.
    """
    root = pathlib.Path(root).resolve()
    targets = list(paths) if paths else [default_package(root)]
    graph = build_callgraph(root, targets)
    may_block = compute_may_block(graph)
    may_acquire = compute_may_acquire(graph)
    lock_edges = build_lock_graph(graph, may_acquire)

    builder = _FindingBuilder(graph)
    _check_lock_order(builder, lock_edges)
    _check_held_lock_blocking(builder, graph, may_block)
    _check_unbudgeted_paths(builder, graph)
    builder.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    payload = graph.to_json()
    payload["lock_graph"] = {
        "edges": [
            edge.to_json()
            for _, edge in sorted(lock_edges.items())
        ],
        "locks": sorted(
            {lock for pair in lock_edges for lock in pair}
            | {
                a.lock_id
                for node in graph.functions.values()
                for a in node.acquires
            }
        ),
    }
    payload["may_block"] = sorted(may_block)
    return builder.findings, builder.suppressed, payload
