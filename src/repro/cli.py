"""Command-line interface: generate datasets, run queries, inspect files.

Installed as ``repro-brs``::

    repro-brs generate yelp_like --out yelp.json
    repro-brs info yelp.json
    repro-brs solve yelp.json --k 10 --method cover --c 0.3333
    repro-brs solve yelp.json --k 5 --aspect 2.0 --topk 3
    repro-brs solve yelp.json --timeout 0.05 --max-evals 10000
    repro-brs solve yelp.json --trace run.jsonl --metrics-out run.prom --profile
    repro-brs serve yelp.json meetup.json --port 8331
    repro-brs obs record --status status.json --ledger perf-ledger.jsonl
    repro-brs obs compare --baseline base.jsonl --current perf-ledger.jsonl
    repro-brs obs breakdown --trace run.jsonl
    repro-brs lint --format json --output lint.json

The solve command prints the region center, score, object count and search
statistics — enough to drive the exploratory refine-and-rerun loop the
paper motivates from a shell.  With ``--timeout``/``--max-evals`` the
answer is anytime: a status line says whether the result is exact,
degraded, or a best-so-far timeout answer, and the optimality gap is
printed alongside the score.

Errors never escape as raw tracebacks; each failure family maps to its own
exit code (:data:`EXIT_BAD_INPUT`, :data:`EXIT_TIMEOUT`,
:data:`EXIT_INTERNAL`).
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import ExitStack
from typing import Optional, Sequence

from repro.core.brs import best_region
from repro.core.topk import topk_regions
from repro.datasets.registry import DATASET_BUILDERS, DiversityDataset, load
from repro.io.json_io import load_dataset, save_dataset
from repro.obs.export import write_metrics
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.obs.profile import profile_scope
from repro.obs.trace import JsonlTraceWriter, Tracer, trace_scope
from repro.runtime.budget import Budget
from repro.runtime.errors import (
    BRSError,
    BudgetExceededError,
    EvaluationError,
    IngestError,
    InvalidQueryError,
    LogCorruptionError,
)

#: Exit codes: malformed input / dataset.
EXIT_BAD_INPUT = 2
#: Exit codes: an execution budget expired with no anytime answer to give.
EXIT_TIMEOUT = 3
#: Exit codes: an internal or evaluation failure.
EXIT_INTERNAL = 4


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = load(args.dataset)
    save_dataset(dataset, args.out)
    print(f"wrote {args.dataset} ({len(dataset.points)} objects) to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.file)
    kind = "diversity" if isinstance(dataset, DiversityDataset) else "influence"
    print(f"name:    {dataset.name}")
    print(f"kind:    {kind}")
    print(f"objects: {len(dataset.points)}")
    space = dataset.space
    print(f"space:   [{space.x_min}, {space.x_max}] x [{space.y_min}, {space.y_max}]")
    if kind == "diversity":
        n_tags = len({t for tags in dataset.tag_sets for t in tags})
        print(f"tags:    {n_tags} distinct")
    else:
        print(f"users:   {dataset.graph.n_users}")
        print(f"checkins:{dataset.checkins.n_checkins}")
        print(f"edges:   {dataset.graph.n_edges}")
    return 0


def _score_function(dataset):
    if isinstance(dataset, DiversityDataset):
        return dataset.score_function()
    return dataset.score_function(n_rr_sets=2000, seed=0)


def _cmd_solve(args: argparse.Namespace) -> int:
    total_start = time.perf_counter()
    dataset = load_dataset(args.file)
    fn = _score_function(dataset)
    a, b = dataset.query(args.k, aspect=args.aspect)
    print(f"query: {a:.2f} x {b:.2f} ({args.k}q, method={args.method})")
    budget = Budget.of(timeout=args.timeout, max_evals=args.max_evals)

    registry: Optional[MetricsRegistry] = None
    with ExitStack() as stack:
        if args.trace:
            writer = stack.enter_context(JsonlTraceWriter(args.trace))
            stack.enter_context(trace_scope(Tracer(writer)))
        if args.metrics_out:
            registry = MetricsRegistry()
            stack.enter_context(metrics_scope(registry))
        if args.profile:
            stack.enter_context(profile_scope())

        if args.topk > 1:
            solve_start = time.perf_counter()
            results = topk_regions(
                dataset.points, fn, a, b, k=args.topk, theta=args.theta,
                budget=budget,
            )
            solve_elapsed = time.perf_counter() - solve_start
            for rank, result in enumerate(results, 1):
                flag = "" if result.status == "ok" else f" [{result.status}]"
                print(
                    f"#{rank}: center=({result.point.x:.2f}, {result.point.y:.2f}) "
                    f"score={result.score:.2f} objects={len(result.object_ids)}{flag}"
                )
            if budget is not None and len(results) < args.topk:
                print(f"note: returned {len(results)}/{args.topk} regions")
        else:
            solve_start = time.perf_counter()
            if args.workers and args.workers > 1:
                # Imported here so serial solves never pay for the
                # multiprocessing stack.
                from repro.parallel import solve_partitioned

                result = solve_partitioned(
                    dataset.points, fn, a, b, n_parts=args.parts,
                    theta=args.theta, workers=args.workers, budget=budget,
                )
            else:
                result = best_region(
                    dataset.points, fn, a, b, method=args.method,
                    theta=args.theta, c=args.c, budget=budget,
                )
            solve_elapsed = time.perf_counter() - solve_start
            print(f"center:  ({result.point.x:.2f}, {result.point.y:.2f})")
            print(f"score:   {result.score:.2f}")
            print(f"objects: {len(result.object_ids)}")
            if budget is not None or result.status != "ok":
                print(f"status:  {result.status}")
                if result.upper_bound is not None:
                    print(
                        f"gap:     <= {result.gap:.2f} "
                        f"(optimum <= {result.upper_bound:.2f})"
                    )
            s = result.stats
            print(
                f"stats:   slices={s.n_slices} scanned={s.n_slices_scanned} "
                f"slabs={s.n_slabs} searched={s.n_slabs_searched} "
                f"candidates={s.n_candidates}"
            )
            if result.cover_stats:
                cs = result.cover_stats
                print(f"cover:   |O|={cs.n_original} |T|={cs.n_cover} level={cs.level}")

    if registry is not None:
        write_metrics(registry, args.metrics_out)
        print(f"metrics: {args.metrics_out}")
    if args.trace:
        print(f"trace:   {args.trace}")
    # Load/setup time is the total minus the solver; reported separately so
    # slow dataset parsing is never mistaken for slow search.
    total_elapsed = time.perf_counter() - total_start
    print(f"[solve {solve_elapsed:.2f}s, total {total_elapsed:.2f}s]")
    return 0


def _load_tenants(path: Optional[str]):
    """``--tenants`` JSON file → a populated TenantRegistry (or None)."""
    if path is None:
        return None
    import json as _json

    from repro.serve.tenancy import TenantRegistry, TenantSpec

    with open(path, "r", encoding="utf-8") as fh:
        docs = _json.load(fh)
    if not isinstance(docs, list):
        raise InvalidQueryError("--tenants file must hold a JSON list")
    registry = TenantRegistry()
    for doc in docs:
        if not isinstance(doc, dict) or "id" not in doc:
            raise InvalidQueryError(
                "each --tenants entry must be an object with an 'id'"
            )
        datasets = doc.get("datasets")
        registry.register(
            TenantSpec(
                id=str(doc["id"]),
                weight=float(doc.get("weight", 1.0)),
                quota=int(doc.get("quota", 16)),
                datasets=frozenset(datasets) if datasets else None,
            )
        )
    return registry


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so `repro-brs generate/solve` never pay for the
    # serving stack.
    from repro.serve import DatasetStore, ResultCache

    store = DatasetStore()
    for path in args.data:
        entry = store.add_file(path)
        print(f"serving {entry.id}: {len(entry.points)} objects ({entry.kind})")
    if args.threaded:
        from repro.serve import BRSServer, ServeEngine

        engine = ServeEngine(
            store,
            cache=ResultCache(max_entries=args.cache_entries),
            workers=args.workers,
            shards=args.shards,
            queue_capacity=args.queue_capacity,
            default_timeout=args.default_timeout,
            backend=args.backend,
            process_workers=args.process_workers,
        )
        server = BRSServer(engine, host=args.host, port=args.port)
    else:
        from repro.serve.aio import AsyncBRSServer, AsyncServeEngine

        aengine = AsyncServeEngine(
            store,
            cache=ResultCache(max_entries=args.cache_entries),
            tenants=_load_tenants(args.tenants),
            workers=args.workers,
            shards=args.shards,
            queue_capacity=args.queue_capacity,
            default_timeout=args.default_timeout,
            backend=args.backend,
            process_workers=args.process_workers,
        )
        server = AsyncBRSServer(aengine, host=args.host, port=args.port)
        # Bind on the background loop first so the real URL (ephemeral
        # ports included) is printable before we block.
        server.start()
    # SIGTERM/SIGINT flush attached pipelines and stop the listener; the
    # blocking call below returns once the handler thread closes it.
    server.install_signal_handlers()
    mode = "threaded" if args.threaded else "async"
    print(f"[{mode}] listening on {server.url} (SIGTERM/Ctrl-C to stop)")
    try:
        if args.threaded:
            server.serve_forever()
        else:
            server.wait()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import DatasetStore
    from repro.serve.loadgen import WorkloadMix, saturation_sweep

    def make_store() -> "DatasetStore":
        store = DatasetStore()
        if args.data:
            for path in args.data:
                store.add_file(path)
            return store
        from repro.datasets.registry import scalability_dataset

        store.add_dataset(
            "demo", scalability_dataset(args.objects, seed=args.seed)
        )
        return store

    if args.data:
        probe = DatasetStore()
        dataset_id = probe.add_file(args.data[0]).id
    else:
        dataset_id = "demo"
    mixes = (
        WorkloadMix(tenant="alpha", share=2.0, dataset=dataset_id,
                    timeout=args.timeout),
        WorkloadMix(tenant="beta", share=1.0, dataset=dataset_id,
                    timeout=args.timeout),
    )
    engines = ("async", "thread") if args.engine == "both" else (args.engine,)
    out: dict = {}
    for kind in engines:
        if kind == "async":
            from repro.serve.aio import AsyncServeEngine

            def make_submit():
                engine = AsyncServeEngine(
                    make_store(), cache=None, workers=args.workers,
                    queue_capacity=args.queue_capacity,
                )
                engine.start_background()
                return (
                    lambda req, tenant: engine.submit_threadsafe(
                        req, tenant=tenant
                    ),
                    engine.close,
                )
        else:
            from repro.serve import ServeEngine

            def make_submit():
                engine = ServeEngine(
                    make_store(), cache=None, workers=args.workers,
                    queue_capacity=args.queue_capacity,
                )
                return (
                    lambda req, tenant: engine.submit(req),
                    engine.close,
                )

        reports = saturation_sweep(
            make_submit, mixes, qps_points=args.qps,
            duration=args.duration, seed=args.seed,
        )
        rows = [r.row() for r in reports]
        out[kind] = rows
        print(f"engine={kind}")
        print(f"  {'qps':>7} {'p50ms':>8} {'p99ms':>9} "
              f"{'shed':>6} {'goodput':>8}")
        for row in rows:
            print(
                f"  {row['target_qps']:>7.0f} {row['p50_ms']:>8.2f} "
                f"{row['p99_ms']:>9.2f} {row['shed_rate']:>6.3f} "
                f"{row['goodput_qps']:>8.2f}"
            )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            _json.dump(out, fh, indent=2, sort_keys=True)
        print(f"sweep written to {args.json_out}")
    return 0


def _parse_insert(spec: str):
    """``x,y`` or ``x,y,tag+tag+...`` → an Insert event."""
    from repro.ingest import Insert

    parts = spec.split(",")
    if len(parts) not in (2, 3):
        raise InvalidQueryError(
            f"--insert wants 'x,y' or 'x,y,tag+tag', got {spec!r}"
        )
    payload = None
    if len(parts) == 3 and parts[2]:
        payload = sorted(parts[2].split("+"))
    return Insert(x=float(parts[0]), y=float(parts[1]), payload=payload)


def _load_events(args: argparse.Namespace):
    """Collect the events of one ``ingest append`` invocation."""
    import json as _json

    from repro.ingest import Delete, event_from_json

    events = []
    if args.events:
        with open(args.events, "r", encoding="utf-8") as fh:
            docs = _json.load(fh)
        if not isinstance(docs, list):
            raise InvalidQueryError("--events file must hold a JSON list")
        events.extend(event_from_json(doc) for doc in docs)
    events.extend(_parse_insert(spec) for spec in args.insert or ())
    events.extend(Delete(obj_id) for obj_id in args.delete or ())
    return events


def _ingest_pipeline(args: argparse.Namespace):
    """Base dataset + WAL → a standalone (storeless) recovered pipeline."""
    from repro.ingest import IngestLog, IngestPipeline, live_from_diversity

    dataset = load_dataset(args.data)
    live = live_from_diversity(dataset)
    return IngestPipeline(live, IngestLog(args.log))


def _cmd_ingest_append(args: argparse.Namespace) -> int:
    events = _load_events(args)
    if not events:
        raise InvalidQueryError(
            "nothing to append; give --events, --insert, or --delete"
        )
    with _ingest_pipeline(args) as pipe:
        batch = pipe.append(events, batch_id=args.batch_id)
        status = pipe.batch_status(batch.batch_id)
        print(
            f"batch {batch.batch_id} seq={batch.seq}: {status.state} "
            f"({len(events)} events, {pipe.live.n_alive} objects alive)"
        )
        return 0 if status.state == "visible" else EXIT_INTERNAL


def _cmd_ingest_status(args: argparse.Namespace) -> int:
    from repro.ingest import read_log

    replay = read_log(args.log)
    counts = {"pending": 0, "applied": 0, "failed": 0}
    for rb in replay.batches:
        counts[rb.state] += 1
    print(f"log {args.log}: {len(replay.batches)} batches, last seq "
          f"{replay.last_seq}")
    for state, n in counts.items():
        print(f"  {state}: {n}")
    if replay.truncated_tail:
        print("  (torn tail truncated)")
    return 0


def _cmd_ingest_replay(args: argparse.Namespace) -> int:
    with _ingest_pipeline(args) as pipe:
        status = pipe.status()
        print(
            f"replayed {status['replayed']} batches "
            f"(last seq {status['last_seq']}); "
            f"{status['alive_objects']} objects alive"
        )
        if args.out:
            points, ids, _fn = pipe.live.snapshot()
            tag_sets = [
                frozenset(pipe.live.payload_of(i) or ()) for i in ids
            ]
            recovered = DiversityDataset(
                name="recovered", points=points, tag_sets=tag_sets,
                space=pipe.live.quadtree.space,
            )
            save_dataset(recovered, args.out)
            print(f"wrote recovered dataset to {args.out}")
    return 0


def _cmd_obs_record(args: argparse.Namespace) -> int:
    import json as _json

    # Imported here so solver commands never pay for the ledger stack.
    from repro.obs.ledger import Ledger, record_from_status

    with open(args.status, "r", encoding="utf-8") as fh:
        rows = _json.load(fh)
    if not isinstance(rows, list):
        raise InvalidQueryError(
            "--status file must hold a JSON list of run_all.py status rows"
        )
    record = record_from_status(rows, label=args.label or "")
    Ledger(args.ledger).append(record)
    print(
        f"recorded run {record.run_id} "
        f"({len(record.experiments)} experiments, git {record.git_rev[:12]}) "
        f"to {args.ledger}"
    )
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.ledger import Ledger

    records = Ledger(args.ledger).read()
    if not records:
        print(f"ledger {args.ledger}: no records")
        return 0
    print(
        f"{'run_id':<16} {'when (UTC)':<16} {'git':<12} "
        f"{'label':<12} {'exps':>4} {'total(s)':>9}"
    )
    for record in records:
        when = time.strftime(
            "%Y-%m-%d %H:%M", time.gmtime(record.created_epoch)
        )
        total = sum(
            row["seconds"]
            for row in record.experiments
            if isinstance(row.get("seconds"), (int, float))
        )
        print(
            f"{record.run_id:<16} {when:<16} {record.git_rev[:12]:<12} "
            f"{record.label:<12} {len(record.experiments):>4} {total:>9.3f}"
        )
    return 0


def _cmd_obs_compare(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.ledger import Ledger, compare

    baseline = Ledger(args.baseline).latest(label=args.label)
    if baseline is None:
        raise InvalidQueryError(
            f"no baseline record in {args.baseline}"
            + (f" with label {args.label!r}" if args.label else "")
        )
    current = Ledger(args.current).latest(label=args.label)
    if current is None:
        raise InvalidQueryError(
            f"no current record in {args.current}"
            + (f" with label {args.label!r}" if args.label else "")
        )
    report = compare(baseline, current, tolerance=args.tolerance)
    print(
        f"baseline {baseline.run_id} (git {baseline.git_rev[:12]}) vs "
        f"current {current.run_id} (git {current.git_rev[:12]})"
    )
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            _json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        print(f"report written to {args.json_out}")
    if report.ok:
        return 0
    if args.warn_only:
        print("warn-only: regressions reported but not failing the run")
        return 0
    return 1


def _cmd_obs_breakdown(args: argparse.Namespace) -> int:
    if args.locks is not None:
        from repro.analysis.sanitizer import render_lock_summary, summarize_witness

        summary = summarize_witness(args.locks)
        print(render_lock_summary(summary))
        return 0 if summary["clean"] else 1
    if args.trace is None:
        print("error: one of --trace or --locks is required", file=sys.stderr)
        return 2
    from repro.obs.analyze import render_breakdown, span_breakdown
    from repro.obs.trace import read_trace

    events = read_trace(args.trace)
    print(render_breakdown(span_breakdown(events)))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported here so the solver commands never pay for the linter.
    from repro.analysis.cli import main as lint_main

    return lint_main(args.lint_args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.experiments import ALL_EXPERIMENTS

    selected = args.only or list(ALL_EXPERIMENTS)
    for key in selected:
        if key not in ALL_EXPERIMENTS:
            print(f"unknown experiment {key!r}; one of {list(ALL_EXPERIMENTS)}",
                  file=sys.stderr)
            return 2
        for table in ALL_EXPERIMENTS[key]():
            print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-brs`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-brs", description="Best region search toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset analog")
    gen.add_argument("dataset", choices=sorted(DATASET_BUILDERS))
    gen.add_argument("--out", required=True, help="output JSON path")
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="describe a dataset file")
    info.add_argument("file")
    info.set_defaults(func=_cmd_info)

    solve = sub.add_parser("solve", help="run a best-region query")
    solve.add_argument("file")
    solve.add_argument("--k", type=float, default=10.0, help="query scale (k*q)")
    solve.add_argument("--aspect", type=float, default=None, help="a/b ratio")
    solve.add_argument(
        "--method", choices=("slice", "cover", "naive", "columnar"),
        default="slice"
    )
    solve.add_argument("--c", type=float, default=None, help="cover parameter")
    solve.add_argument("--theta", type=float, default=1.0, help="slice width / b")
    solve.add_argument("--topk", type=int, default=1, help="return k disjoint regions")
    solve.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock budget in seconds; answer degrades instead of overrunning",
    )
    solve.add_argument(
        "--max-evals", type=int, default=None, dest="max_evals",
        help="cap on score-function evaluations",
    )
    solve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL span trace of the solve to PATH",
    )
    solve.add_argument(
        "--metrics-out", default=None, dest="metrics_out", metavar="PATH",
        help="write collected metrics to PATH "
             "(.prom/.txt: Prometheus text, else JSON)",
    )
    solve.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the hottest functions to stderr",
    )
    solve.add_argument(
        "--workers", type=int, default=None,
        help="solve x-windows across a process pool of this size "
             "(> 1; implies the partitioned exact solver)",
    )
    solve.add_argument(
        "--parts", type=int, default=4,
        help="x-window count for --workers (see plan_shards)",
    )
    solve.set_defaults(func=_cmd_solve)

    serve = sub.add_parser("serve", help="run the HTTP query server")
    serve.add_argument("data", nargs="+", help="dataset JSON files to serve")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8331, help="TCP port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2, help="solver worker threads")
    serve.add_argument("--shards", type=int, default=4, help="x-windows per solve")
    serve.add_argument(
        "--queue-capacity", type=int, default=64, dest="queue_capacity",
        help="open queries before admission control rejects (backpressure)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=2048, dest="cache_entries",
        help="result-cache bound (LRU entries)",
    )
    serve.add_argument(
        "--default-timeout", type=float, default=None, dest="default_timeout",
        help="per-query deadline in seconds for requests without their own",
    )
    serve.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="shard execution backend: in-thread, or the multiprocessing "
             "shard backend for large unfocused queries",
    )
    serve.add_argument(
        "--process-workers", type=int, default=2, dest="process_workers",
        help="pool size for --backend process",
    )
    mode = serve.add_mutually_exclusive_group()
    mode.add_argument(
        "--async", action="store_false", dest="threaded",
        help="asyncio multi-tenant server (the default)",
    )
    mode.add_argument(
        "--threaded", action="store_true", dest="threaded",
        help="legacy threaded server (kept for differential testing)",
    )
    serve.add_argument(
        "--tenants", default=None, metavar="PATH",
        help="JSON list of tenant specs "
             "({id, weight, quota, datasets}); async mode only",
    )
    serve.set_defaults(func=_cmd_serve, threaded=False)

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load generator / saturation sweep",
    )
    loadgen.add_argument(
        "data", nargs="*",
        help="dataset JSON files (default: a synthetic diversity dataset)",
    )
    loadgen.add_argument(
        "--objects", type=int, default=400,
        help="synthetic dataset size when no files are given",
    )
    loadgen.add_argument(
        "--engine", choices=("async", "thread", "both"), default="async",
        help="engine(s) to drive",
    )
    loadgen.add_argument(
        "--qps", type=float, nargs="+", default=[25.0, 50.0, 100.0],
        help="target arrival rates, one open-loop run each",
    )
    loadgen.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds of offered load per QPS point",
    )
    loadgen.add_argument(
        "--timeout", type=float, default=1.0,
        help="per-request deadline forwarded with every query",
    )
    loadgen.add_argument("--workers", type=int, default=2,
                         help="solver worker threads")
    loadgen.add_argument(
        "--queue-capacity", type=int, default=64, dest="queue_capacity",
        help="admission capacity of the engine under test",
    )
    loadgen.add_argument("--seed", type=int, default=0,
                         help="arrival-process seed")
    loadgen.add_argument(
        "--json", default=None, dest="json_out", metavar="PATH",
        help="write the sweep rows as JSON to PATH",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    ingest = sub.add_parser(
        "ingest", help="durable mutations against a dataset (WAL-backed)"
    )
    ingest_sub = ingest.add_subparsers(dest="ingest_command", required=True)

    ing_append = ingest_sub.add_parser(
        "append", help="durably append and apply one mutation batch"
    )
    ing_append.add_argument("data", help="base dataset JSON file")
    ing_append.add_argument("--log", required=True, help="write-ahead log path")
    ing_append.add_argument(
        "--events", help="JSON file with a list of event records"
    )
    ing_append.add_argument(
        "--insert", action="append", metavar="X,Y[,TAG+TAG]",
        help="insert an object (repeatable)",
    )
    ing_append.add_argument(
        "--delete", action="append", type=int, metavar="ID",
        help="delete an object by stable id (repeatable)",
    )
    ing_append.add_argument("--batch-id", help="explicit batch id")
    ing_append.set_defaults(func=_cmd_ingest_append)

    ing_status = ingest_sub.add_parser(
        "status", help="summarize a write-ahead log"
    )
    ing_status.add_argument("--log", required=True, help="write-ahead log path")
    ing_status.set_defaults(func=_cmd_ingest_status)

    ing_replay = ingest_sub.add_parser(
        "replay", help="recover: base dataset + log replay"
    )
    ing_replay.add_argument("data", help="base dataset JSON file")
    ing_replay.add_argument("--log", required=True, help="write-ahead log path")
    ing_replay.add_argument(
        "--out", help="write the recovered dataset to this JSON file"
    )
    ing_replay.set_defaults(func=_cmd_ingest_replay)

    obs = sub.add_parser(
        "obs", help="telemetry tooling: run ledger and trace analysis"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_record = obs_sub.add_parser(
        "record", help="append a run_all.py --json snapshot to a ledger"
    )
    obs_record.add_argument(
        "--status", required=True,
        help="status JSON written by benchmarks/run_all.py --json",
    )
    obs_record.add_argument(
        "--ledger", required=True, help="ledger JSONL path (appended)"
    )
    obs_record.add_argument(
        "--label", default="", help="free-form label (e.g. 'nightly', 'ci')"
    )
    obs_record.set_defaults(func=_cmd_obs_record)

    obs_report = obs_sub.add_parser(
        "report", help="print a ledger's run history"
    )
    obs_report.add_argument(
        "--ledger", required=True, help="ledger JSONL path"
    )
    obs_report.set_defaults(func=_cmd_obs_report)

    obs_compare = obs_sub.add_parser(
        "compare",
        help="regression-compare the latest records of two ledgers",
    )
    obs_compare.add_argument(
        "--baseline", required=True, help="baseline ledger JSONL path"
    )
    obs_compare.add_argument(
        "--current", required=True, help="current ledger JSONL path"
    )
    obs_compare.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed wall-time growth before an experiment regresses "
             "(0.2 = 20%%)",
    )
    obs_compare.add_argument(
        "--label", default=None,
        help="compare only records carrying this label",
    )
    obs_compare.add_argument(
        "--json-out", default=None, dest="json_out", metavar="PATH",
        help="also write the regression report as JSON to PATH",
    )
    obs_compare.add_argument(
        "--warn-only", action="store_true", dest="warn_only",
        help="report regressions but exit 0 (CI soft gate)",
    )
    obs_compare.set_defaults(func=_cmd_obs_compare)

    obs_breakdown = obs_sub.add_parser(
        "breakdown",
        help=(
            "per-phase time attribution of a JSONL trace, or lock "
            "contention from a sanitizer witness (--locks)"
        ),
    )
    obs_breakdown.add_argument(
        "--trace", default=None, help="JSONL trace written by --trace"
    )
    obs_breakdown.add_argument(
        "--locks", default=None, metavar="PATH",
        help=(
            "summarize a lock-sanitizer witness JSONL "
            "(see repro.analysis.sanitizer) instead of a trace"
        ),
    )
    obs_breakdown.set_defaults(func=_cmd_obs_breakdown)

    bench = sub.add_parser("bench", help="regenerate paper tables/figures")
    bench.add_argument("--only", nargs="+", help="experiment ids")
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant linter (see docs/static-analysis.md)",
        add_help=False,
    )
    lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments for the linter; `repro-brs lint --help` lists them",
    )
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point.

    Failures print a one-line diagnosis instead of a traceback and map to
    distinct exit codes: bad input (:data:`EXIT_BAD_INPUT`), budget expiry
    with nothing to return (:data:`EXIT_TIMEOUT`), evaluation or internal
    errors (:data:`EXIT_INTERNAL`).
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # Handed off before argparse: the linter owns its whole option
        # surface (argparse.REMAINDER drops leading options, so a stub
        # subparser cannot forward `lint --format json` faithfully).
        return _cmd_lint(argparse.Namespace(lint_args=argv[1:]))
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except InvalidQueryError as exc:
        print(f"error: invalid input: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    except LogCorruptionError as exc:
        print(f"error: write-ahead log corrupted: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    except IngestError as exc:
        print(f"error: ingest rejected: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    except BudgetExceededError as exc:
        print(f"error: budget exceeded: {exc}", file=sys.stderr)
        return EXIT_TIMEOUT
    except EvaluationError as exc:
        print(f"error: score evaluation failed: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    except BRSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    except (OSError, ValueError) as exc:
        print(f"error: invalid input: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT


if __name__ == "__main__":
    raise SystemExit(main())
