"""Command-line interface: generate datasets, run queries, inspect files.

Installed as ``repro-brs``::

    repro-brs generate yelp_like --out yelp.json
    repro-brs info yelp.json
    repro-brs solve yelp.json --k 10 --method cover --c 0.3333
    repro-brs solve yelp.json --k 5 --aspect 2.0 --topk 3

The solve command prints the region center, score, object count and search
statistics — enough to drive the exploratory refine-and-rerun loop the
paper motivates from a shell.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.core.brs import best_region
from repro.core.topk import topk_regions
from repro.datasets.registry import DATASET_BUILDERS, DiversityDataset, load
from repro.io.json_io import load_dataset, save_dataset


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = load(args.dataset)
    save_dataset(dataset, args.out)
    print(f"wrote {args.dataset} ({len(dataset.points)} objects) to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.file)
    kind = "diversity" if isinstance(dataset, DiversityDataset) else "influence"
    print(f"name:    {dataset.name}")
    print(f"kind:    {kind}")
    print(f"objects: {len(dataset.points)}")
    space = dataset.space
    print(f"space:   [{space.x_min}, {space.x_max}] x [{space.y_min}, {space.y_max}]")
    if kind == "diversity":
        n_tags = len({t for tags in dataset.tag_sets for t in tags})
        print(f"tags:    {n_tags} distinct")
    else:
        print(f"users:   {dataset.graph.n_users}")
        print(f"checkins:{dataset.checkins.n_checkins}")
        print(f"edges:   {dataset.graph.n_edges}")
    return 0


def _score_function(dataset):
    if isinstance(dataset, DiversityDataset):
        return dataset.score_function()
    return dataset.score_function(n_rr_sets=2000, seed=0)


def _cmd_solve(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.file)
    fn = _score_function(dataset)
    a, b = dataset.query(args.k, aspect=args.aspect)
    print(f"query: {a:.2f} x {b:.2f} ({args.k}q, method={args.method})")

    if args.topk > 1:
        start = time.perf_counter()
        results = topk_regions(dataset.points, fn, a, b, k=args.topk, theta=args.theta)
        elapsed = time.perf_counter() - start
        for rank, result in enumerate(results, 1):
            print(
                f"#{rank}: center=({result.point.x:.2f}, {result.point.y:.2f}) "
                f"score={result.score:.2f} objects={len(result.object_ids)}"
            )
        print(f"[{elapsed:.2f}s]")
        return 0

    start = time.perf_counter()
    result = best_region(
        dataset.points, fn, a, b, method=args.method, theta=args.theta, c=args.c
    )
    elapsed = time.perf_counter() - start
    print(f"center:  ({result.point.x:.2f}, {result.point.y:.2f})")
    print(f"score:   {result.score:.2f}")
    print(f"objects: {len(result.object_ids)}")
    s = result.stats
    print(
        f"stats:   slices={s.n_slices} scanned={s.n_slices_scanned} "
        f"slabs={s.n_slabs} searched={s.n_slabs_searched} "
        f"candidates={s.n_candidates}"
    )
    if result.cover_stats:
        cs = result.cover_stats
        print(f"cover:   |O|={cs.n_original} |T|={cs.n_cover} level={cs.level}")
    print(f"[{elapsed:.2f}s]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.experiments import ALL_EXPERIMENTS

    selected = args.only or list(ALL_EXPERIMENTS)
    for key in selected:
        if key not in ALL_EXPERIMENTS:
            print(f"unknown experiment {key!r}; one of {list(ALL_EXPERIMENTS)}",
                  file=sys.stderr)
            return 2
        for table in ALL_EXPERIMENTS[key]():
            print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-brs`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-brs", description="Best region search toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset analog")
    gen.add_argument("dataset", choices=sorted(DATASET_BUILDERS))
    gen.add_argument("--out", required=True, help="output JSON path")
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="describe a dataset file")
    info.add_argument("file")
    info.set_defaults(func=_cmd_info)

    solve = sub.add_parser("solve", help="run a best-region query")
    solve.add_argument("file")
    solve.add_argument("--k", type=float, default=10.0, help="query scale (k*q)")
    solve.add_argument("--aspect", type=float, default=None, help="a/b ratio")
    solve.add_argument(
        "--method", choices=("slice", "cover", "naive"), default="slice"
    )
    solve.add_argument("--c", type=float, default=None, help="cover parameter")
    solve.add_argument("--theta", type=float, default=1.0, help="slice width / b")
    solve.add_argument("--topk", type=int, default=1, help="return k disjoint regions")
    solve.set_defaults(func=_cmd_solve)

    bench = sub.add_parser("bench", help="regenerate paper tables/figures")
    bench.add_argument("--only", nargs="+", help="experiment ids")
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
