"""Mutation events and batches: the unit of durable streaming ingest.

The paper's motivating workload is a live event stream — check-ins and
incident reports arriving while users explore.  This module defines what
one such change *is* to the rest of the pipeline:

* :class:`Insert` — a new object at ``(x, y)`` with an opaque
  JSON-serializable ``payload`` (e.g. a tag list for diversity datasets);
  the pipeline assigns it a stable external id at apply time.
* :class:`Delete` — removal of an existing object by its stable id.
* :class:`MutationBatch` — an ordered group of events that becomes
  visible *atomically*: readers observe either none or all of it.

Batches move through an explicit state machine::

    pending ──apply──> applied ──flip──> visible
       │ (retries exhausted)
       └────────────────────> failed

``pending`` means durably logged but not yet executed; ``applied`` means
the live dataset and its indexes reflect the batch but readers still see
the previous snapshot; ``visible`` means the snapshot was swapped into
the dataset store and the touched cache region evicted.  ``failed``
batches are recorded in the log so recovery skips them.

Everything here is JSON-round-trippable because the write-ahead log
(:mod:`repro.ingest.wal`) stores records as canonical JSON lines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple, Union

from repro.runtime.errors import IngestError

#: Batch lifecycle states, in forward order (``failed`` is the side exit).
BATCH_STATES = ("pending", "applied", "visible", "failed")


@dataclass(frozen=True)
class Insert:
    """Add one object at ``(x, y)`` carrying an opaque payload.

    Attributes:
        x: object x coordinate (finite).
        y: object y coordinate (finite).
        payload: JSON-serializable per-object data the dataset's function
            builder understands (tag list, weight, ...); ``None`` for
            unweighted workloads.
    """

    x: float
    y: float
    payload: Any = None


@dataclass(frozen=True)
class Delete:
    """Remove the object with stable external id ``obj_id``."""

    obj_id: int


Event = Union[Insert, Delete]


def validate_events(events: Sequence[Event]) -> None:
    """Check the statically checkable event invariants.

    Raises:
        IngestError: on an empty batch, a non-finite coordinate, or a
            negative delete id.  (Whether a delete's target is alive is
            only knowable at apply time; :meth:`LiveDataset.apply` checks
            that.)
    """
    if not events:
        raise IngestError("a mutation batch needs at least one event")
    for i, event in enumerate(events):
        if isinstance(event, Insert):
            if not (math.isfinite(event.x) and math.isfinite(event.y)):
                raise IngestError(
                    f"event {i}: insert coordinates must be finite, "
                    f"got ({event.x!r}, {event.y!r})"
                )
        elif isinstance(event, Delete):
            if not isinstance(event.obj_id, int) or event.obj_id < 0:
                raise IngestError(
                    f"event {i}: delete needs a non-negative integer id, "
                    f"got {event.obj_id!r}"
                )
        else:
            raise IngestError(
                f"event {i}: expected Insert or Delete, got {type(event).__name__}"
            )


def event_to_json(event: Event) -> List[Any]:
    """Compact JSON form: ``["ins", x, y, payload]`` or ``["del", id]``."""
    if isinstance(event, Insert):
        return ["ins", event.x, event.y, event.payload]
    return ["del", event.obj_id]


def event_from_json(doc: Any) -> Event:
    """Inverse of :func:`event_to_json`.

    Raises:
        IngestError: on a malformed event document.
    """
    if not isinstance(doc, list) or not doc:
        raise IngestError(f"malformed event record: {doc!r}")
    if doc[0] == "ins" and len(doc) == 4:
        return Insert(x=float(doc[1]), y=float(doc[2]), payload=doc[3])
    if doc[0] == "del" and len(doc) == 2:
        return Delete(obj_id=int(doc[1]))
    raise IngestError(f"malformed event record: {doc!r}")


@dataclass(frozen=True)
class MutationBatch:
    """One atomically-visible group of mutation events.

    Attributes:
        batch_id: unique id, stable across log replay (the idempotency
            token); assigned by the pipeline from the sequence number
            unless the producer supplies its own.
        seq: position in the dataset's total mutation order.  Apply is
            strictly in ``seq`` order and exactly-once: replay skips any
            batch whose ``seq`` is not past the last applied one.
        events: the ordered events.
    """

    batch_id: str
    seq: int
    events: Tuple[Event, ...]

    def to_json(self) -> dict:
        """JSON document for the write-ahead log."""
        return {
            "batch_id": self.batch_id,
            "seq": self.seq,
            "events": [event_to_json(e) for e in self.events],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "MutationBatch":
        """Rebuild a batch from its log record.

        Raises:
            IngestError: on a malformed document.
        """
        try:
            batch_id = doc["batch_id"]
            seq = int(doc["seq"])
            events = tuple(event_from_json(e) for e in doc["events"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IngestError(f"malformed batch record: {exc}")
        return cls(batch_id=str(batch_id), seq=seq, events=events)
