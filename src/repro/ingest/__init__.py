"""Durable streaming ingest: WAL, crash recovery, incremental indexes.

The paper's exploration setting is interactive, but its data is not
static: check-ins, venues, and incident reports keep arriving while
users explore.  This package makes a served dataset *mutable* without
giving up the serving layer's caching or the paper's exact semantics:

* :mod:`repro.ingest.events` — insert/delete events, atomically-visible
  :class:`~repro.ingest.events.MutationBatch`\\ es, and their state
  machine (``pending → applied → visible``, with ``failed`` as the
  retry-exhausted exit).
* :mod:`repro.ingest.wal` — the append-only, checksummed, fsynced
  write-ahead log; a batch survives any crash once
  :meth:`~repro.ingest.pipeline.IngestPipeline.append` returns.
* :mod:`repro.ingest.live` — the mutable working copy: points, payloads,
  and all three spatial indexes (grid, R-tree, quadtree) maintained
  incrementally, with rollback and differential-tested rebuild
  fallbacks; read views are compacted snapshots with stable external
  ids.
* :mod:`repro.ingest.pipeline` — ties them together and pairs each
  atomic snapshot flip with **regional** cache invalidation: only cached
  answers whose query window touches the batch's bounding box are
  evicted.
* :mod:`repro.ingest.selfcheck` — the crash-recovery differential
  harness CI runs (SIGKILL mid-batch, restart, replay, compare against a
  from-scratch rebuild and the naive oracle).
"""

from repro.ingest.events import (
    BATCH_STATES,
    Delete,
    Event,
    Insert,
    MutationBatch,
    event_from_json,
    event_to_json,
    validate_events,
)
from repro.ingest.live import (
    ApplyResult,
    LiveDataset,
    coverage_fn_builder,
    live_from_diversity,
)
from repro.ingest.pipeline import BatchStatus, IngestPipeline
from repro.ingest.wal import IngestLog, LogReplay, ReplayedBatch, read_log

__all__ = [
    "BATCH_STATES",
    "ApplyResult",
    "BatchStatus",
    "Delete",
    "Event",
    "IngestLog",
    "IngestPipeline",
    "Insert",
    "LiveDataset",
    "LogReplay",
    "MutationBatch",
    "ReplayedBatch",
    "coverage_fn_builder",
    "event_from_json",
    "event_to_json",
    "live_from_diversity",
    "read_log",
    "validate_events",
]
