"""Append-only write-ahead log with record checksums and fsync-on-commit.

The durability contract of the ingest pipeline: **a batch acknowledged by
:meth:`~repro.ingest.pipeline.IngestPipeline.append` survives any crash**.
That reduces to three properties of this file format:

* **Append-only JSONL.**  One record per line, canonical JSON
  (sorted keys, no whitespace), so the log is greppable and diffable.
* **Checksummed.**  Every record carries a CRC32 of its canonical payload
  bytes.  A record that fails its checksum mid-log means the durable
  history itself is damaged → :class:`~repro.runtime.errors.LogCorruptionError`
  (recovery must stop).  A failing *final* record is the expected shape of
  a crash mid-append (torn write) and is silently truncated.
* **fsync on commit.**  Each append flushes and fsyncs before returning
  (configurable off for tests/benchmarks), so an acknowledged batch is on
  the platter, not in the page cache.

Record kinds::

    {"kind": "batch", "batch_id": ..., "seq": ..., "events": [...], "crc": ...}
    {"kind": "mark",  "batch_id": ..., "seq": ..., "state": "applied"|"failed",
     "attempts": ..., "crc": ...}

A ``batch`` record makes the intent durable *before* any state changes; a
``mark`` records the outcome *after* the batch became visible (or
terminally failed).  A crash between the two leaves the batch ``pending``
in the log, and replay applies it — apply is deterministic and recovery
rebuilds in-memory state from scratch, so this is idempotent.

The writer self-repairs torn tails: on an append failure (or when opening
a log whose tail is torn) it truncates back to the last good offset, so a
single crash can never poison later appends into mid-log corruption.

Fault injection: pass ``opener=lambda path: FaultyLogFile(open(path,
"r+b"), plan)`` to exercise torn/short/fsync failures — see
:class:`repro.runtime.faults.DiskFaultPlan`.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.ingest.events import MutationBatch
from repro.obs.metrics import active_registry
from repro.runtime.errors import IngestError, LogCorruptionError

#: Mark states a ``mark`` record may carry.
MARK_STATES = ("applied", "failed")


def _canonical(record: Dict[str, Any]) -> bytes:
    """Canonical payload bytes the CRC covers (everything but ``crc``)."""
    payload = {k: v for k, v in record.items() if k != "crc"}
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _with_crc(record: Dict[str, Any]) -> Dict[str, Any]:
    record = dict(record)
    record["crc"] = zlib.crc32(_canonical(record))
    return record


def _checks_out(record: Dict[str, Any]) -> bool:
    crc = record.get("crc")
    return isinstance(crc, int) and zlib.crc32(_canonical(record)) == crc


def _count(name: str, help: str, n: int = 1) -> None:
    registry = active_registry()
    if registry.enabled and n:
        registry.counter(name, help=help).inc(n)


@dataclass
class ReplayedBatch:
    """One batch as reconstructed from the log.

    Attributes:
        batch: the durable batch record.
        state: ``"applied"``, ``"failed"``, or ``"pending"`` (no mark —
            the batch was acknowledged but its outcome never logged, the
            crash-mid-apply shape).
        attempts: attempts recorded by the mark, 0 when unmarked.
    """

    batch: MutationBatch
    state: str = "pending"
    attempts: int = 0


@dataclass
class LogReplay:
    """Everything recovery needs, parsed from one log file.

    Attributes:
        batches: replayed batches in strict ``seq`` order.
        truncated_tail: True when a torn final record was dropped.
        good_offset: byte offset just past the last valid record (where
            appends should resume after truncating the tail).
    """

    batches: List[ReplayedBatch] = field(default_factory=list)
    truncated_tail: bool = False
    good_offset: int = 0

    @property
    def last_seq(self) -> int:
        """Highest sequence number in the log (-1 for an empty log)."""
        return max((rb.batch.seq for rb in self.batches), default=-1)


def read_log(path: Union[str, pathlib.Path]) -> LogReplay:
    """Parse and verify a write-ahead log.

    A missing file is an empty log.  An invalid final line (torn write)
    is dropped and reported via :attr:`LogReplay.truncated_tail`; an
    invalid line anywhere earlier raises.

    Raises:
        LogCorruptionError: on a bad checksum / malformed record that is
            not the final line, a duplicate or out-of-order sequence
            number, or a mark referencing an unknown batch.
    """
    path = pathlib.Path(path)
    replay = LogReplay()
    if not path.exists():
        return replay
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    # A well-formed log ends with a newline, so the final split element is
    # empty; anything else is a torn tail candidate.
    records: List[Dict[str, Any]] = []
    offset = 0
    n_lines = len(lines)
    for i, line in enumerate(lines):
        is_last = i == n_lines - 1
        if not line:
            if not is_last:
                offset += 1  # a blank interior line is just a separator glitch
            continue
        record: Optional[Dict[str, Any]] = None
        try:
            doc = json.loads(line.decode("utf-8"))
            if isinstance(doc, dict) and _checks_out(doc):
                record = doc
        except (UnicodeDecodeError, json.JSONDecodeError):
            record = None
        if record is None:
            if is_last:
                replay.truncated_tail = True
                _count(
                    "brs_ingest_wal_truncations_total",
                    help="torn log tails dropped during replay",
                )
                break
            raise LogCorruptionError(
                f"log record {len(records)} failed verification "
                f"(byte offset {offset} of {path})",
                record_index=len(records),
            )
        records.append(record)
        offset += len(line) + 1
    replay.good_offset = offset

    by_id: Dict[str, ReplayedBatch] = {}
    last_seq = -1
    for index, record in enumerate(records):
        kind = record.get("kind")
        if kind == "batch":
            batch = MutationBatch.from_json(record)
            if batch.seq <= last_seq:
                raise LogCorruptionError(
                    f"batch {batch.batch_id!r} has non-increasing seq "
                    f"{batch.seq} (last was {last_seq})",
                    record_index=index,
                )
            if batch.batch_id in by_id:
                raise LogCorruptionError(
                    f"duplicate batch id {batch.batch_id!r}", record_index=index
                )
            last_seq = batch.seq
            entry = ReplayedBatch(batch=batch)
            by_id[batch.batch_id] = entry
            replay.batches.append(entry)
        elif kind == "mark":
            batch_id = record.get("batch_id")
            state = record.get("state")
            if state not in MARK_STATES:
                raise LogCorruptionError(
                    f"mark with unknown state {state!r}", record_index=index
                )
            entry = by_id.get(str(batch_id))
            if entry is None:
                raise LogCorruptionError(
                    f"mark for unknown batch {batch_id!r}", record_index=index
                )
            entry.state = state
            entry.attempts = int(record.get("attempts", 0))
        else:
            raise LogCorruptionError(
                f"unknown record kind {kind!r}", record_index=index
            )
    _count(
        "brs_ingest_wal_records_total",
        help="write-ahead-log records parsed during replay",
        n=len(records),
    )
    return replay


class IngestLog:
    """The writer half: append batches and marks durably.

    Opening an existing log verifies it and truncates any torn tail, so
    appends always resume from a clean record boundary.

    Args:
        path: log file location (created on first append).
        sync: fsync after every append (the durability contract); turn
            off only in tests/benchmarks that measure something else.
        opener: file-opening hook for fault injection; receives the path
            and must return a binary file positioned for appending at
            the verified end (the default truncates to
            :attr:`LogReplay.good_offset` and seeks there).

    Raises:
        LogCorruptionError: when the existing log is damaged mid-file.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        sync: bool = True,
        opener: Optional[Callable[[pathlib.Path], Any]] = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.sync = sync
        self._opener = opener
        replay = read_log(self.path)
        self._good_offset = replay.good_offset
        self._last_seq = replay.last_seq
        if replay.truncated_tail:
            self._repair_tail()
        self._file: Optional[Any] = None

    # -- plumbing --------------------------------------------------------

    def _repair_tail(self) -> None:
        with open(self.path, "r+b") as fh:
            fh.truncate(self._good_offset)

    def _open(self) -> Any:
        if self._file is None or getattr(self._file, "closed", False):
            if self._opener is not None:
                self._file = self._opener(self.path)
            else:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = open(self.path, "ab")
        return self._file

    def _append(self, record: Dict[str, Any]) -> None:
        """Write one record, fsync, and advance the good offset.

        Raises:
            IngestError: when the write or fsync fails; the file is
                truncated back to the last good offset first, so the
                failure cannot poison later appends.
        """
        data = (
            json.dumps(_with_crc(record), sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")
        fh = self._open()
        try:
            fh.write(data)
            fh.flush()
            if self.sync:
                os.fsync(fh.fileno())
        except OSError as exc:
            self._recover_writer()
            raise IngestError(
                f"log append failed ({exc}); log repaired to last good record",
                batch_id=record.get("batch_id"),
            )
        self._good_offset += len(data)

    def _recover_writer(self) -> None:
        """Truncate torn bytes and drop the (possibly poisoned) handle."""
        try:
            if self._file is not None:
                self._file.close()
        except OSError:  # a failing close cannot make things worse
            pass
        self._file = None
        if self.path.exists():
            self._repair_tail()

    # -- public API ------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Highest batch sequence number durably logged (-1 when none)."""
        return self._last_seq

    def append_batch(self, batch: MutationBatch) -> None:
        """Durably record a batch (state ``pending``) before it runs.

        Raises:
            IngestError: on a disk failure or a non-increasing seq.
        """
        if batch.seq <= self._last_seq:
            raise IngestError(
                f"batch seq {batch.seq} is not past the last logged "
                f"seq {self._last_seq}",
                batch_id=batch.batch_id,
            )
        record = dict(batch.to_json())
        record["kind"] = "batch"
        self._append(record)
        self._last_seq = batch.seq

    def append_mark(
        self, batch_id: str, seq: int, state: str, attempts: int = 0
    ) -> None:
        """Durably record a batch outcome (``applied`` or ``failed``).

        Raises:
            IngestError: on a disk failure or an unknown state.
        """
        if state not in MARK_STATES:
            raise IngestError(
                f"mark state must be one of {MARK_STATES}, got {state!r}",
                batch_id=batch_id,
            )
        self._append(
            {
                "kind": "mark",
                "batch_id": batch_id,
                "seq": seq,
                "state": state,
                "attempts": attempts,
            }
        )

    def replay(self) -> LogReplay:
        """Re-read the log from disk (reader view of this writer's file)."""
        return read_log(self.path)

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    def __enter__(self) -> "IngestLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
