"""The mutable side of a served dataset: points, payloads, live indexes.

A :class:`LiveDataset` is the ingest pipeline's working copy.  It owns

* the full positional history of points (deleted objects stay as
  tombstones so **stable external ids are never reused**),
* per-object payloads (e.g. tag sets for diversity datasets) feeding a
  deterministic *function builder*, and
* all three spatial indexes (grid, R-tree, quadtree) maintained
  **incrementally** in lockstep: every index assigns ids positionally,
  so LiveDataset ids and index ids are always the same numbers.

Readers never see a LiveDataset.  They see immutable
:class:`~repro.serve.store.ServedDataset` snapshots produced by
:meth:`LiveDataset.snapshot`: alive points *compacted* to a dense
positional list, a freshly built score function over the compacted
payloads, and an ``external_ids`` table mapping compacted positions back
to stable ids — which is what keeps object ids in previously cached
answers meaningful across churn.

Atomicity: :meth:`apply` validates the whole batch up front (dry run over
an alive-set copy), so expected failures (unknown delete id, emptying the
dataset) change nothing.  An *unexpected* mid-batch failure — an index
bug, an injected fault — triggers rollback: appended tombstone slots are
truncated, alive flags restored, and all three indexes rebuilt from the
positional history, which by construction realigns their ids exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.functions.base import SetFunction
from repro.functions.coverage import CoverageFunction
from repro.geometry.point import Point
from repro.geometry.rect import BBox, Rect
from repro.index.grid import GridIndex
from repro.index.quadtree import Quadtree
from repro.index.rtree import RTree
from repro.ingest.events import Delete, Event, Insert, MutationBatch, validate_events
from repro.runtime.errors import IngestError

#: Builds the dataset's score function from (alive points, alive payloads).
#: Must be deterministic: snapshot equality across replays depends on it.
FnBuilder = Callable[[Sequence[Point], Sequence[Any]], SetFunction]


def coverage_fn_builder(
    points: Sequence[Point], payloads: Sequence[Any]
) -> SetFunction:
    """The diversity-application builder: payloads are tag collections."""
    return CoverageFunction([frozenset(p) if p else frozenset() for p in payloads])


def live_from_diversity(dataset: Any) -> "LiveDataset":
    """Wrap a :class:`~repro.datasets.registry.DiversityDataset` for ingest.

    Tag sets become per-object payloads (as sorted lists, so the WAL can
    serialize inserts carrying them) and the coverage builder reproduces
    the dataset's score function on every snapshot.

    Raises:
        IngestError: when ``dataset`` is not a diversity dataset —
            influence datasets own RIS state the event model cannot
            mutate incrementally yet.
    """
    from repro.datasets.registry import DiversityDataset

    if not isinstance(dataset, DiversityDataset):
        raise IngestError(
            f"streaming ingest supports diversity datasets, not "
            f"{type(dataset).__name__}"
        )
    return LiveDataset(
        points=dataset.points,
        payloads=[sorted(tags) for tags in dataset.tag_sets],
        fn_builder=coverage_fn_builder,
        space=dataset.space,
    )


@dataclass(frozen=True)
class ApplyResult:
    """What one successfully applied batch did.

    Attributes:
        seq: the batch's sequence number.
        inserted_ids: stable ids assigned to the batch's inserts, in
            event order.
        n_deletes: delete events executed.
        touched: closed bounding box of every inserted and deleted point —
            the region whose cached answers are now stale.
    """

    seq: int
    inserted_ids: Tuple[int, ...]
    n_deletes: int
    touched: BBox


class LiveDataset:
    """Mutable points + payloads + indexes behind one served dataset.

    Not thread-safe by itself: the pipeline serializes all calls through
    its drain worker.

    Args:
        points: initial object locations (stable ids 0..n-1).
        payloads: per-object payloads, parallel to ``points``; defaults
            to ``None`` payloads.
        fn_builder: deterministic score-function builder; defaults to the
            diversity coverage builder.
        space: indexed space for the quadtree; defaults to a padded
            bounding box (the quadtree self-expands via rebuild when an
            insert lands outside).
        grid_cell: grid cell size; defaults to 1/64 of the larger space
            extent.
        fanout: R-tree fanout.

    Raises:
        IngestError: on empty ``points`` or mismatched ``payloads``.
    """

    def __init__(
        self,
        points: Sequence[Point],
        payloads: Optional[Sequence[Any]] = None,
        fn_builder: FnBuilder = coverage_fn_builder,
        space: Optional[Rect] = None,
        grid_cell: Optional[float] = None,
        fanout: int = 16,
    ) -> None:
        if not points:
            raise IngestError("a live dataset needs at least one object")
        if payloads is None:
            payloads = [None] * len(points)
        if len(payloads) != len(points):
            raise IngestError(
                f"{len(points)} points but {len(payloads)} payloads"
            )
        self._points: List[Point] = list(points)
        self._payloads: List[Any] = list(payloads)
        self._alive: List[bool] = [True] * len(points)
        self._n_alive = len(points)
        self._fn_builder = fn_builder
        self._space = space
        self._grid_cell = grid_cell
        self._fanout = fanout
        self._last_applied_seq = -1
        self._build_indexes(self._points, deleted=())

    # -- index plumbing --------------------------------------------------

    def _build_indexes(
        self, points: Sequence[Point], deleted: Sequence[int]
    ) -> None:
        """(Re)build all three indexes over the positional history.

        Building over the *full* history and then deleting the tombstoned
        ids realigns index ids with LiveDataset ids exactly — the property
        rollback depends on.
        """
        if self._grid_cell is None:
            box = BBox.of_points(points)
            extent = max(box.x_max - box.x_min, box.y_max - box.y_min)
            self._grid_cell = extent / 64.0 if extent > 0 else 1.0
        self.grid = GridIndex(points, cell_size=self._grid_cell)
        self.rtree = RTree(points, fanout=self._fanout)
        self.quadtree = Quadtree(points, space=self._space)
        # Quadtree may expand its space on out-of-space inserts; track the
        # current one so rebuilds don't shrink it back.
        self._space = self.quadtree.space
        for obj_id in deleted:
            self.grid.delete(obj_id)
            self.rtree.delete(obj_id)
            self.quadtree.delete(obj_id)

    def _rollback(self, n_before: int, alive_before: List[bool]) -> None:
        del self._points[n_before:]
        del self._payloads[n_before:]
        self._alive = alive_before
        self._n_alive = sum(alive_before)
        self._build_indexes(
            self._points,
            deleted=[i for i, alive in enumerate(self._alive) if not alive],
        )

    # -- state -----------------------------------------------------------

    @property
    def last_applied_seq(self) -> int:
        """Sequence number of the last applied batch (-1 initially)."""
        return self._last_applied_seq

    @property
    def n_alive(self) -> int:
        """Objects currently alive."""
        return self._n_alive

    @property
    def n_total(self) -> int:
        """Stable ids ever assigned (alive + tombstoned)."""
        return len(self._points)

    def is_alive(self, obj_id: int) -> bool:
        """True iff ``obj_id`` names a live object."""
        return 0 <= obj_id < len(self._points) and self._alive[obj_id]

    def point_of(self, obj_id: int) -> Point:
        """Location of a stable id (alive or tombstoned).

        Raises:
            IngestError: on an id that was never assigned.
        """
        if not 0 <= obj_id < len(self._points):
            raise IngestError(f"unknown object id {obj_id}")
        return self._points[obj_id]

    def payload_of(self, obj_id: int) -> Any:
        """Payload of a stable id (alive or tombstoned).

        Raises:
            IngestError: on an id that was never assigned.
        """
        if not 0 <= obj_id < len(self._points):
            raise IngestError(f"unknown object id {obj_id}")
        return self._payloads[obj_id]

    # -- mutation --------------------------------------------------------

    def _dry_run(self, events: Sequence[Event]) -> None:
        """Validate a batch against current state without changing it.

        Raises:
            IngestError: on a delete of a dead/unknown id (deletes may
                target inserts earlier in the same batch), or on a batch
                that would leave the dataset empty.
        """
        validate_events(events)
        next_id = len(self._points)
        born: Set[int] = set()
        killed: Set[int] = set()
        n_alive = self._n_alive
        for i, event in enumerate(events):
            if isinstance(event, Insert):
                born.add(next_id)
                next_id += 1
                n_alive += 1
            else:
                obj_id = event.obj_id
                alive_now = (
                    obj_id in born
                    or (
                        obj_id < len(self._points)
                        and self._alive[obj_id]
                    )
                ) and obj_id not in killed
                if not alive_now:
                    raise IngestError(
                        f"event {i}: delete of unknown or dead object {obj_id}"
                    )
                killed.add(obj_id)
                n_alive -= 1
        if n_alive <= 0:
            raise IngestError("batch would leave the dataset empty")

    def apply(self, batch: MutationBatch) -> ApplyResult:
        """Execute one batch against points, payloads, and all indexes.

        All-or-nothing: expected failures are caught by an up-front dry
        run; an unexpected mid-batch exception rolls the dataset back to
        its pre-batch state (rebuilding the indexes) before re-raising as
        :class:`~repro.runtime.errors.IngestError`.

        Raises:
            IngestError: on an out-of-order sequence number, a batch that
                fails validation, or a rolled-back mid-batch failure.
        """
        if batch.seq <= self._last_applied_seq:
            raise IngestError(
                f"batch seq {batch.seq} already applied "
                f"(last is {self._last_applied_seq})",
                batch_id=batch.batch_id,
            )
        self._dry_run(batch.events)

        n_before = len(self._points)
        alive_before = list(self._alive)
        inserted: List[int] = []
        touched: Optional[BBox] = None
        try:
            for event in batch.events:
                if isinstance(event, Insert):
                    p = Point(event.x, event.y)
                    obj_id = len(self._points)
                    self._points.append(p)
                    self._payloads.append(event.payload)
                    self._alive.append(True)
                    self._n_alive += 1
                    got = (
                        self.grid.insert(p),
                        self.rtree.insert(p),
                        self.quadtree.insert(p),
                    )
                    if got != (obj_id, obj_id, obj_id):
                        raise IngestError(
                            f"index id drift: expected {obj_id}, got {got}",
                            batch_id=batch.batch_id,
                        )
                    inserted.append(obj_id)
                else:
                    obj_id = event.obj_id
                    p = self._points[obj_id]
                    self.grid.delete(obj_id)
                    self.rtree.delete(obj_id)
                    self.quadtree.delete(obj_id)
                    self._alive[obj_id] = False
                    self._n_alive -= 1
                box = BBox(p.x, p.x, p.y, p.y)
                touched = box if touched is None else touched.union(box)
        except Exception as exc:
            self._rollback(n_before, alive_before)
            if isinstance(exc, IngestError):
                raise
            raise IngestError(
                f"batch failed mid-apply and was rolled back: {exc}",
                batch_id=batch.batch_id,
            )
        self._last_applied_seq = batch.seq
        # The quadtree may have rebuilt itself over an expanded space;
        # keep our record current so a later rollback-rebuild never uses
        # a stale, smaller space.
        self._space = self.quadtree.space
        assert touched is not None  # validate_events rejects empty batches
        return ApplyResult(
            seq=batch.seq,
            inserted_ids=tuple(inserted),
            n_deletes=sum(1 for e in batch.events if isinstance(e, Delete)),
            touched=touched,
        )

    # -- snapshots -------------------------------------------------------

    def columns(self) -> Any:
        """Columnar view of the *alive* objects, cached per applied batch.

        The cache key is :attr:`last_applied_seq`: every successful
        :meth:`apply` bumps it, so mutation invalidates the columns
        without the dataset tracking the cache explicitly.  Positions in
        the returned columns follow :meth:`alive_ids` order (ascending
        stable ids), matching :meth:`snapshot` compaction.

        Returns:
            The :class:`~repro.columnar.dataset.ColumnarDataset` over the
            compacted live points.
        """
        from repro.columnar.dataset import ColumnarDataset

        key = self._last_applied_seq
        cached = getattr(self, "_columns_cache", None)
        if cached is None or cached[0] != key:
            columns = ColumnarDataset.from_points(
                [self._points[i] for i in self.alive_ids()]
            )
            cached = (key, columns)
            self._columns_cache = cached
        return cached[1]

    def alive_ids(self) -> List[int]:
        """Stable ids of the live objects, ascending."""
        return [i for i, alive in enumerate(self._alive) if alive]

    def snapshot(self) -> Tuple[List[Point], List[int], SetFunction]:
        """Compact the live objects into an immutable read view.

        Returns:
            ``(points, external_ids, fn)`` — dense positional points, the
            stable id of each position, and a freshly built score
            function over the compacted payloads.
        """
        ids = self.alive_ids()
        points = [self._points[i] for i in ids]
        payloads = [self._payloads[i] for i in ids]
        return points, ids, self._fn_builder(points, payloads)

    def check_consistency(self, rect: Rect) -> List[int]:
        """Differential check: all three indexes must agree on a query.

        Returns the agreed id list (sorted).

        Raises:
            IngestError: when any two indexes disagree — the signal the
                incremental maintenance broke an invariant.
        """
        from_grid = sorted(self.grid.query_rect(rect))
        from_rtree = sorted(self.rtree.query_rect(rect))
        from_quad = sorted(
            i
            for i in self.quadtree.objects_under(self.quadtree.root)
            if rect.contains_point(self._points[i])
        )
        if not (from_grid == from_rtree == from_quad):
            raise IngestError(
                f"index disagreement on {rect}: grid={from_grid} "
                f"rtree={from_rtree} quadtree={from_quad}"
            )
        return from_grid
