"""Crash-recovery differential check: ``python -m repro.ingest.selfcheck``.

The durability claim under test: **SIGKILL the ingest process anywhere —
mid-append, mid-apply, mid-mark — restart, replay the write-ahead log,
and the recovered dataset is identical to one rebuilt from scratch by
applying the same durably-logged batches in order.**

Each trial (one per ``--trials``, seeds ``--seed + i``):

1. a child process (``--child``) builds the seeded base dataset, opens a
   fresh WAL, and feeds it the seeded mutation workload, pausing a few
   milliseconds per batch so there is always a mid-flight moment to kill;
2. the parent sleeps a seeded-random offset and SIGKILLs the child;
3. the parent recovers: base dataset + WAL replay through the real
   :class:`~repro.ingest.pipeline.IngestPipeline` recovery path;
4. **differential**: a second dataset is rebuilt from scratch by applying
   the logged batches directly; both must have identical alive objects
   (stable id, coordinates, payload — compared by canonical-JSON SHA256)
   and all three indexes must agree on a battery of probe queries;
5. **oracle**: :class:`~repro.core.naive.NaiveBRS` solves seeded queries
   on both snapshots; the optimal scores must match exactly.

A JSON summary plus the last replayed WAL are written to ``--out`` for
artifact upload.  Exit code 0 iff every trial passes.  Stdlib + repro
only; all randomness is seeded.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import random
import shutil
import signal
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.naive import NaiveBRS
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.ingest.events import Delete, Event, Insert
from repro.ingest.live import LiveDataset, coverage_fn_builder
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.wal import IngestLog, read_log

#: The space all workloads live in.
SPACE = Rect(0.0, 10.0, 0.0, 10.0)


def base_points(seed: int, n: int = 40) -> Tuple[List[Point], List[List[int]]]:
    """The seeded base dataset: ``n`` points with small tag payloads."""
    rng = random.Random(seed)
    points = [
        Point(rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5)) for _ in range(n)
    ]
    payloads = [
        sorted(rng.sample(range(25), rng.randint(1, 4))) for _ in range(n)
    ]
    return points, payloads


def seeded_workload(
    seed: int, n_batches: int, n_base: int = 40
) -> List[List[Event]]:
    """A deterministic mutation stream over the seeded base dataset.

    Tracks its own alive-set so deletes always target objects that are
    alive at that point of the stream (and never empty the dataset).
    """
    rng = random.Random(seed * 7919 + 17)
    alive = set(range(n_base))
    next_id = n_base
    batches: List[List[Event]] = []
    for _ in range(n_batches):
        events: List[Event] = []
        for _ in range(rng.randint(1, 5)):
            if rng.random() < 0.6 or len(alive) <= 2:
                events.append(
                    Insert(
                        x=rng.uniform(0.5, 9.5),
                        y=rng.uniform(0.5, 9.5),
                        payload=sorted(rng.sample(range(25), rng.randint(1, 4))),
                    )
                )
                alive.add(next_id)
                next_id += 1
            else:
                victim = rng.choice(sorted(alive))
                events.append(Delete(victim))
                alive.discard(victim)
        batches.append(events)
    return batches


def fingerprint(live: LiveDataset) -> str:
    """SHA256 over the canonical alive-object state (id, x, y, payload)."""
    alive = [
        [i, live.point_of(i).x, live.point_of(i).y, live.payload_of(i)]
        for i in live.alive_ids()
    ]
    blob = json.dumps(alive, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def probe_rects(seed: int, n: int = 6) -> List[Rect]:
    """Seeded probe rectangles for the index differential."""
    rng = random.Random(seed * 31 + 5)
    rects = []
    for _ in range(n):
        x = rng.uniform(0.0, 8.0)
        y = rng.uniform(0.0, 8.0)
        rects.append(Rect(x, x + rng.uniform(0.5, 2.0), y, y + rng.uniform(0.5, 2.0)))
    return rects


def rebuild_from_log(seed: int, wal: pathlib.Path) -> Tuple[LiveDataset, int]:
    """From-scratch reference: base dataset + raw log batches, no pipeline."""
    points, payloads = base_points(seed)
    live = LiveDataset(points, payloads, fn_builder=coverage_fn_builder, space=SPACE)
    replay = read_log(wal)
    n = 0
    for rb in replay.batches:
        if rb.state == "failed":
            continue
        live.apply(rb.batch)
        n += 1
    return live, n


def recover_with_pipeline(seed: int, wal: pathlib.Path) -> LiveDataset:
    """The real recovery path: pipeline replay over a fresh base."""
    points, payloads = base_points(seed)
    live = LiveDataset(points, payloads, fn_builder=coverage_fn_builder, space=SPACE)
    with IngestPipeline(live, IngestLog(wal)):
        pass
    return live


def check_trial(seed: int, wal: pathlib.Path) -> Dict[str, Any]:
    """Recover, rebuild, and compare.  Returns a JSON-able verdict."""
    recovered = recover_with_pipeline(seed, wal)
    reference, n_batches = rebuild_from_log(seed, wal)
    failures: List[str] = []

    fp_rec, fp_ref = fingerprint(recovered), fingerprint(reference)
    if fp_rec != fp_ref:
        failures.append(f"state fingerprint mismatch: {fp_rec} != {fp_ref}")

    for rect in probe_rects(seed):
        ids_rec = recovered.check_consistency(rect)
        ids_ref = reference.check_consistency(rect)
        if ids_rec != ids_ref:
            failures.append(f"probe {rect} mismatch: {ids_rec} != {ids_ref}")

    # Oracle: the recovered snapshot must solve identically to the
    # reference one (exhaustive exact solver — no solver-specific bias).
    rng = random.Random(seed * 13 + 3)
    naive = NaiveBRS()
    for _ in range(2):
        a = rng.uniform(0.8, 2.0)
        b = rng.uniform(0.8, 2.0)
        pts_rec, _, fn_rec = recovered.snapshot()
        pts_ref, _, fn_ref = reference.snapshot()
        score_rec = naive.solve(pts_rec, fn_rec, a, b).score
        score_ref = naive.solve(pts_ref, fn_ref, a, b).score
        if score_rec != score_ref:
            failures.append(
                f"oracle mismatch for {a:.3f}x{b:.3f}: "
                f"{score_rec} != {score_ref}"
            )

    return {
        "seed": seed,
        "replayed_batches": n_batches,
        "alive_objects": recovered.n_alive,
        "fingerprint": fp_rec,
        "failures": failures,
        "ok": not failures,
    }


def run_child(seed: int, wal: pathlib.Path, n_batches: int, pause: float) -> int:
    """Child body: feed the seeded workload through a real pipeline."""
    points, payloads = base_points(seed)
    live = LiveDataset(points, payloads, fn_builder=coverage_fn_builder, space=SPACE)
    pipe = IngestPipeline(live, IngestLog(wal))
    for events in seeded_workload(seed, n_batches):
        pipe.append(events)
        if pause > 0:
            time.sleep(pause)
    pipe.close()
    return 0


def run_trial(
    seed: int, wal: pathlib.Path, n_batches: int, pause: float
) -> Dict[str, Any]:
    """Spawn the child, SIGKILL it at a seeded-random offset, verify."""
    if wal.exists():
        wal.unlink()
    child = subprocess.Popen(
        [
            sys.executable, "-m", "repro.ingest.selfcheck",
            "--child", "--seed", str(seed), "--wal", str(wal),
            "--batches", str(n_batches), "--pause", str(pause),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    # Wait out interpreter startup (first WAL bytes), then kill at a
    # seeded-random offset inside the workload window so different trials
    # die in different protocol states — mid-append, mid-apply, mid-mark.
    deadline = time.perf_counter() + 30.0
    while time.perf_counter() < deadline and child.poll() is None:
        if wal.exists() and wal.stat().st_size > 0:
            break
        time.sleep(0.005)
    rng = random.Random(seed * 104729 + 7)
    time.sleep(rng.uniform(0.0, max(0.05, n_batches * pause)))
    killed = child.poll() is None
    if killed:
        child.send_signal(signal.SIGKILL)
    child.wait(timeout=30)

    verdict = check_trial(seed, wal)
    verdict["killed_midflight"] = killed
    return verdict


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batches", type=int, default=30)
    parser.add_argument("--pause", type=float, default=0.01)
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory for the JSON summary + WAL artifact")
    parser.add_argument("--wal", type=pathlib.Path, default=None,
                        help="(child mode) write-ahead log path")
    parser.add_argument("--child", action="store_true",
                        help="run the workload-feeding child body")
    args = parser.parse_args(argv)

    if args.child:
        if args.wal is None:
            parser.error("--child needs --wal")
        return run_child(args.seed, args.wal, args.batches, args.pause)

    out_dir = args.out
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    wal = (out_dir or pathlib.Path(".")) / "selfcheck-wal.jsonl"

    results = []
    n_killed = 0
    for i in range(args.trials):
        verdict = run_trial(args.seed + i, wal, args.batches, args.pause)
        results.append(verdict)
        n_killed += int(verdict["killed_midflight"])
        state = "ok" if verdict["ok"] else "FAIL"
        print(
            f"trial seed={verdict['seed']}: {state} "
            f"(replayed {verdict['replayed_batches']} batches, "
            f"{verdict['alive_objects']} alive, "
            f"killed={verdict['killed_midflight']})"
        )
        for failure in verdict["failures"]:
            print(f"  {failure}", file=sys.stderr)

    summary = {
        "trials": len(results),
        "killed_midflight": n_killed,
        "passed": sum(1 for r in results if r["ok"]),
        "results": results,
    }
    if out_dir is not None:
        (out_dir / "ingest-selfcheck.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )
        if wal.exists():
            shutil.copy(wal, out_dir / "replayed-wal.jsonl")
    ok = summary["passed"] == summary["trials"]
    print(
        f"{summary['passed']}/{summary['trials']} trials passed "
        f"({n_killed} killed mid-flight)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
