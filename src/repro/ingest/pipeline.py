"""The durable mutation pipeline: WAL → apply → atomic flip → mark.

:class:`IngestPipeline` ties the pieces together.  One batch flows

1. **append** — the batch is validated, assigned the next sequence
   number, and written to the write-ahead log (fsync).  From this moment
   it survives any crash: state ``pending``.
2. **apply** — the drain worker executes it against the
   :class:`~repro.ingest.live.LiveDataset` (points, payloads, all three
   indexes), with capped retry/backoff around transient faults; a batch
   that exhausts its retries is marked ``failed`` in the log so recovery
   skips it.  State ``applied``.
3. **flip** — a compacted snapshot is installed in the
   :class:`~repro.serve.store.DatasetStore` (one dict swap: readers see
   the old dataset or the new one, never a mixture) and the result cache
   is invalidated **regionally** — only entries whose query window
   touches the batch's bounding box are evicted.  State ``visible``.
4. **mark** — an ``applied`` mark is appended to the log.  The mark is
   written *after* visibility, so a crash anywhere in 2–3 leaves the
   batch unmarked (= ``pending``) and recovery simply re-runs it: apply
   is deterministic and recovery starts from the base snapshot, which
   makes replay idempotent and exactly-once.

Recovery is the same code path: constructing a pipeline with ``replay``
(the default) re-runs every non-failed logged batch, in sequence order,
against the base dataset, then installs one snapshot.  Unmarked batches
get their ``applied`` mark completed.

Threading: ``background=True`` starts a daemon drain worker and
:meth:`append` returns after the WAL write (durable, not yet visible);
``background=False`` drains synchronously inside :meth:`append`.  Either
way :meth:`drain` blocks until everything appended so far is visible,
and :meth:`close` (idempotent, SIGTERM-safe) flushes pending batches
before closing the log.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.ingest.events import Event, MutationBatch, validate_events
from repro.ingest.live import ApplyResult, LiveDataset
from repro.ingest.wal import IngestLog, ReplayedBatch
from repro.obs.metrics import MetricsRegistry, active_registry
from repro.obs.trace import Tracer, active_tracer
from repro.runtime.errors import IngestError


@dataclass
class BatchStatus:
    """Where one batch sits in the state machine (see module docstring)."""

    batch_id: str
    seq: int
    state: str = "pending"
    attempts: int = 0
    error: Optional[str] = None


@dataclass
class _QueueEntry:
    batch: MutationBatch
    done: threading.Event = field(default_factory=threading.Event)


class IngestPipeline:
    """Durable ingest for one served dataset.

    Args:
        live: the mutable working copy (base state *before* the log).
        log: the write-ahead log; replayed batches are applied on top of
            ``live`` during construction when ``replay`` is true.
        store: dataset store to flip snapshots into; ``None`` for
            standalone (CLI/replay) use, where the live dataset itself is
            the visible state.
        cache: result cache for regional invalidation; ignored without a
            store.
        dataset_id: id under which snapshots are installed (required with
            a store).
        replay: re-run logged batches during construction (crash
            recovery); turn off only when the caller knows the log is
            empty or already applied.
        background: drain on a worker thread; otherwise :meth:`append`
            drains synchronously before returning.
        max_retries: additional apply attempts per batch.
        backoff: initial retry delay, doubled per attempt.
        sleeper: sleep implementation (injectable for tests).
        registry: metrics registry; the ambient one is captured at
            construction (drain runs on a thread, so the context-local
            registry would not propagate on its own).

    Raises:
        IngestError: on inconsistent arguments or a failed replay.
        LogCorruptionError: when the log is damaged mid-file.
    """

    def __init__(
        self,
        live: LiveDataset,
        log: IngestLog,
        store: Optional[Any] = None,
        cache: Optional[Any] = None,
        dataset_id: Optional[str] = None,
        replay: bool = True,
        background: bool = False,
        max_retries: int = 3,
        backoff: float = 0.01,
        sleeper: Callable[[float], None] = time.sleep,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if store is not None and dataset_id is None:
            raise IngestError("a store needs a dataset_id to install under")
        if max_retries < 0:
            raise IngestError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 0:
            raise IngestError(f"backoff must be >= 0, got {backoff}")
        self.live = live
        self.log = log
        self.store = store
        self.cache = cache
        self.dataset_id = dataset_id
        self.max_retries = max_retries
        self.backoff = backoff
        self._sleeper = sleeper
        self._registry = registry if registry is not None else active_registry()
        self._tracer: Tracer = active_tracer()
        self._statuses: Dict[str, BatchStatus] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[_QueueEntry]]" = queue.Queue()
        self._closed = False
        self.n_replayed = 0
        if replay:
            self._replay()
        self._worker: Optional[threading.Thread] = None
        if background:
            self._worker = threading.Thread(
                target=self._drain_loop, name="brs-ingest-drain", daemon=True
            )
            self._worker.start()

    # -- recovery --------------------------------------------------------

    def _replay(self) -> None:
        """Re-run the log on top of the base state (crash recovery)."""
        replayed = self.log.replay()
        with self._tracer.span(
            "ingest.replay", batches=len(replayed.batches)
        ):
            for rb in replayed.batches:
                status = BatchStatus(
                    batch_id=rb.batch.batch_id,
                    seq=rb.batch.seq,
                    state=rb.state,
                    attempts=rb.attempts,
                )
                self._statuses[rb.batch.batch_id] = status
                if rb.state == "failed":
                    continue
                if rb.batch.seq <= self.live.last_applied_seq:
                    # Base snapshot already contains it (caller persisted a
                    # newer base than the log start); nothing to redo.
                    status.state = "visible"
                    continue
                result = self.live.apply(rb.batch)  # deterministic redo
                self.n_replayed += 1
                if rb.state == "pending":
                    # Complete the interrupted protocol: visibility (the
                    # flip below) precedes the mark, same as live traffic.
                    self.log.append_mark(
                        rb.batch.batch_id, rb.batch.seq, "applied"
                    )
                status.state = "visible"
                del result  # regions are moot: the cache starts empty
        if self.n_replayed and self.store is not None:
            self._flip(regions=[])
        self._count(
            "brs_ingest_replayed_total",
            "logged batches re-applied during recovery",
            self.n_replayed,
        )

    # -- the three stages ------------------------------------------------

    def _apply_with_retry(self, batch: MutationBatch) -> ApplyResult:
        delay = self.backoff
        last_error: Optional[IngestError] = None
        for attempt in range(self.max_retries + 1):
            try:
                with self._tracer.span(
                    "ingest.apply", batch_id=batch.batch_id, attempt=attempt
                ):
                    result = self.live.apply(batch)
                with self._lock:
                    self._statuses[batch.batch_id].attempts = attempt + 1
                return result
            except IngestError as exc:
                last_error = exc
                if attempt == self.max_retries:
                    break
                self._count(
                    "brs_ingest_retries_total", "ingest apply attempts retried"
                )
                if delay > 0:
                    self._sleeper(delay)
                delay *= 2
        assert last_error is not None
        raise last_error

    def _flip(self, regions: Sequence[Any]) -> None:
        """Install a fresh snapshot, then evict the touched cache region."""
        if self.store is None:
            return
        points, external_ids, fn = self.live.snapshot()
        self.store.apply_regional(
            self.dataset_id, points, fn, external_ids
        )
        if self.cache is not None and regions:
            self.cache.invalidate_region(self.dataset_id, list(regions))

    def _process(self, batch: MutationBatch) -> None:
        """Run one pending batch through apply → flip → mark."""
        status = self._statuses[batch.batch_id]
        try:
            result = self._apply_with_retry(batch)
        except IngestError as exc:
            with self._lock:
                status.state = "failed"
                status.attempts = self.max_retries + 1
                status.error = str(exc)
            try:
                self.log.append_mark(
                    batch.batch_id, batch.seq, "failed", status.attempts
                )
            except IngestError:
                # The log refused the mark (disk fault).  The durable state
                # stays "pending"; recovery will re-attempt the batch, which
                # is safe — apply is deterministic, so it will fail (or,
                # with the fault gone, succeed) identically.
                self._count(
                    "brs_ingest_unmarked_total",
                    "batch outcomes that could not be logged",
                )
            self._count(
                "brs_ingest_batches_failed_total",
                "batches that exhausted their apply retries",
            )
            return
        with self._lock:
            status.state = "applied"
        self._flip(regions=[result.touched])
        with self._lock:
            status.state = "visible"
        try:
            self.log.append_mark(
                batch.batch_id, batch.seq, "applied", status.attempts
            )
        except IngestError:
            # Already visible; the missing mark only means recovery will
            # redo this batch, which replay makes idempotent.
            self._count(
                "brs_ingest_unmarked_total",
                "batch outcomes that could not be logged",
            )
        self._count(
            "brs_ingest_batches_applied_total", "batches applied and made visible"
        )
        self._count(
            "brs_ingest_events_total",
            "mutation events applied",
            len(batch.events),
        )

    # -- public API ------------------------------------------------------

    def append(
        self, events: Sequence[Event], batch_id: Optional[str] = None
    ) -> MutationBatch:
        """Durably accept a batch; visibility follows via the drain.

        Returns the batch (with its assigned ``seq``) once the WAL write
        has fsynced — the durability point.  In synchronous mode the
        batch is also fully visible on return.

        Raises:
            IngestError: when closed, on invalid events, or when the WAL
                append fails (nothing was accepted).
        """
        if self._closed:
            raise IngestError("pipeline is closed")
        validate_events(events)
        with self._lock:
            seq = self.log.last_seq + 1
            if batch_id is None:
                batch_id = f"b{seq:08d}"
            if batch_id in self._statuses:
                raise IngestError(
                    f"duplicate batch id {batch_id!r}", batch_id=batch_id
                )
            batch = MutationBatch(
                batch_id=batch_id, seq=seq, events=tuple(events)
            )
            with self._tracer.span(
                "ingest.append", batch_id=batch_id, events=len(events)
            ):
                # The fsync must happen under the lock: seq allocation and
                # the durable append are one atomic step of the ordering
                # contract (a concurrent append may not observe seq N
                # before N-1 is on disk).  Deliberate BRS011 exception.
                self.log.append_batch(batch)  # brs: noqa[BRS011]
            self._statuses[batch_id] = BatchStatus(batch_id=batch_id, seq=seq)
            # Enqueue under the lock: queue order must match seq order or
            # a concurrent producer can enqueue seq N+1 ahead of N and the
            # drain worker rejects N as already applied.  The put never
            # blocks (the queue is unbounded).
            entry = _QueueEntry(batch)
            self._queue.put(entry)
        self._gauge_pending()
        if self._worker is None:
            self._drain_once()
        return batch

    def _drain_once(self) -> None:
        """Process everything currently queued (synchronous mode)."""
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                return
            if entry is None:
                continue
            try:
                self._process(entry.batch)
            finally:
                entry.done.set()
                self._gauge_pending()

    def _drain_loop(self) -> None:
        """Background worker: drain until the shutdown sentinel."""
        while True:
            entry = self._queue.get()
            if entry is None:
                return
            try:
                self._process(entry.batch)
            finally:
                entry.done.set()
                self._gauge_pending()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every batch appended so far left ``pending``.

        Returns False on timeout (background mode only).
        """
        if self._worker is None:
            self._drain_once()
            return True
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        while True:
            with self._lock:
                pending = [
                    s for s in self._statuses.values() if s.state == "pending"
                ]
            if not pending:
                return True
            if deadline is not None and time.perf_counter() > deadline:
                return False
            self._sleeper(0.001)

    def status(self) -> Dict[str, Any]:
        """JSON-friendly summary: per-state counts plus sequence frontier."""
        with self._lock:
            counts = {"pending": 0, "applied": 0, "visible": 0, "failed": 0}
            for s in self._statuses.values():
                counts[s.state] += 1
        return {
            "states": counts,
            "last_seq": self.log.last_seq,
            "last_applied_seq": self.live.last_applied_seq,
            "alive_objects": self.live.n_alive,
            "replayed": self.n_replayed,
        }

    def batch_status(self, batch_id: str) -> BatchStatus:
        """The state-machine position of one batch.

        Raises:
            IngestError: on an unknown batch id.
        """
        with self._lock:
            status = self._statuses.get(batch_id)
        if status is None:
            raise IngestError(f"unknown batch {batch_id!r}", batch_id=batch_id)
        return status

    def close(self, flush: bool = True) -> None:
        """Stop accepting batches, optionally flush, and close the log.

        Idempotent and safe to call from a SIGTERM handler thread: with
        ``flush`` every already-accepted batch is driven to a terminal
        state before the log closes, so a clean shutdown leaves nothing
        pending.
        """
        if self._closed:
            return
        self._closed = True
        if self._worker is not None:
            if flush:
                self.drain()
            self._queue.put(None)  # sentinel: stop after queued work
            self._worker.join(timeout=5.0)
            self._worker = None
        elif flush:
            self._drain_once()
        self.log.close()

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- metrics ---------------------------------------------------------

    def _count(self, name: str, help: str, n: int = 1) -> None:
        if self._registry.enabled and n:
            self._registry.counter(name, help=help).inc(n)

    def _gauge_pending(self) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            pending = sum(
                1 for s in self._statuses.values() if s.state == "pending"
            )
        self._registry.gauge(
            "brs_ingest_pending_batches", help="batches accepted but not visible"
        ).set(pending)
