"""repro — Best Region Search for Data Exploration (SIGMOD 2016 reproduction).

Given spatial objects, a submodular monotone score function, and a query
rectangle size, find the region placement maximizing the score of the
enclosed objects.  Quick start::

    from repro import CoverageFunction, Point, best_region

    points = [Point(0.0, 0.0), Point(0.5, 0.2), Point(5.0, 5.0)]
    tags = [{"cafe"}, {"museum"}, {"cafe"}]
    result = best_region(points, CoverageFunction(tags), a=2.0, b=2.0)
    print(result.point, result.score)

Subpackages: :mod:`repro.core` (algorithms), :mod:`repro.functions`
(submodular scores), :mod:`repro.geometry`, :mod:`repro.index`,
:mod:`repro.cover`, :mod:`repro.influence`, :mod:`repro.network`,
:mod:`repro.datasets`, :mod:`repro.io`, :mod:`repro.bench`,
:mod:`repro.runtime` (budgets, fault injection, error taxonomy),
:mod:`repro.obs` (metrics, tracing, profiling), :mod:`repro.serve`
(batched query serving with result caching and admission control),
:mod:`repro.parallel` (multiprocessing shard-solve backend),
:mod:`repro.columnar` (NumPy columnar data plane with vectorized
solver kernels).
"""

from repro.columnar import (
    ColumnarDataset,
    columnar_best_region,
    columnar_grid_scan,
    columnar_oe_maxrs,
    columnar_slicebrs,
)
from repro.core import (
    BRSResult,
    CoverBRS,
    ExplorationSession,
    NaiveBRS,
    SliceBRS,
    best_region,
    coarse_grid_scan,
    oe_maxrs,
    partitioned_best_region,
    sampled_maxrs,
    slicebrs_maxrs,
    topk_regions,
)
from repro.functions import (
    CoverageFunction,
    SetFunction,
    SumFunction,
    check_submodular_monotone,
)
from repro.geometry import Point, Rect
from repro.parallel import solve_partitioned
from repro.obs import (
    JsonlTraceWriter,
    MetricsRegistry,
    Tracer,
    metrics_scope,
    profile_scope,
    to_prometheus_text,
    trace_scope,
    write_metrics,
)
from repro.serve import (
    BRSServer,
    DatasetStore,
    QueryRequest,
    QueryResponse,
    ResultCache,
    ServeClient,
    ServeEngine,
)
from repro.runtime import (
    BRSError,
    Budget,
    BudgetExceededError,
    EvaluationError,
    FaultPlan,
    FaultyFunction,
    InternalInvariantError,
    InvalidQueryError,
    RetryingFunction,
    budget_scope,
)

__version__ = "1.2.0"

__all__ = [
    "BRSError",
    "BRSResult",
    "BRSServer",
    "Budget",
    "BudgetExceededError",
    "ColumnarDataset",
    "CoverBRS",
    "CoverageFunction",
    "DatasetStore",
    "EvaluationError",
    "FaultPlan",
    "FaultyFunction",
    "InternalInvariantError",
    "InvalidQueryError",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "NaiveBRS",
    "Point",
    "QueryRequest",
    "QueryResponse",
    "Rect",
    "ResultCache",
    "RetryingFunction",
    "ServeClient",
    "ServeEngine",
    "SetFunction",
    "SliceBRS",
    "SumFunction",
    "Tracer",
    "ExplorationSession",
    "best_region",
    "budget_scope",
    "coarse_grid_scan",
    "columnar_best_region",
    "columnar_grid_scan",
    "columnar_oe_maxrs",
    "columnar_slicebrs",
    "metrics_scope",
    "partitioned_best_region",
    "check_submodular_monotone",
    "oe_maxrs",
    "profile_scope",
    "sampled_maxrs",
    "slicebrs_maxrs",
    "solve_partitioned",
    "to_prometheus_text",
    "topk_regions",
    "trace_scope",
    "write_metrics",
    "__version__",
]
