"""``searchsorted``-based rectangular range counting.

A :class:`SortedRangeCounter` answers "how many / which objects lie
strictly inside this rectangle" from one x-sorted view: two binary
searches bound the open x-slab, and a vectorized comparison filters the
slab's y column.  O(log n + k) per query with k the slab population — the
columnar replacement for the per-point Python loop of
:meth:`repro.index.grid.GridIndex.query_rect` on static snapshots, and
the fast path behind :meth:`GridIndex.count_rect` on large indexes.
"""

from __future__ import annotations

from typing import Any, List

import numpy as np

from repro.columnar.dataset import ColumnarDataset, as_columnar


class SortedRangeCounter:
    """Open-rectangle range counting over a static point snapshot.

    Boundary semantics match the paper's open regions (and BRS001): a
    point *on* the rectangle edge is outside.  Ids are positions in the
    snapshot the counter was built from.
    """

    def __init__(self, data: Any) -> None:
        """Args:
        data: a :class:`ColumnarDataset`, an object with ``columns()``,
            or a point sequence.
        """
        ds = as_columnar(data)
        self._ds = ds
        # Touch the cached sorted views eagerly so queries never pay the
        # sort (and so a shared dataset builds them once).
        ds.xs_sorted
        self._ys_by_x = ds.ys[ds.order_x]

    @property
    def n_objects(self) -> int:
        """Number of indexed objects."""
        return self._ds.n

    @classmethod
    def from_dataset(cls, ds: ColumnarDataset) -> "SortedRangeCounter":
        """Build over an existing columnar dataset (shares its views)."""
        return cls(ds)

    def _slab(self, x_min: float, x_max: float) -> slice:
        xs = self._ds.xs_sorted
        lo = int(np.searchsorted(xs, x_min, side="right"))
        hi = int(np.searchsorted(xs, x_max, side="left"))
        return slice(lo, hi)

    def count(
        self, x_min: float, x_max: float, y_min: float, y_max: float
    ) -> int:
        """Number of objects strictly inside the open rectangle."""
        sl = self._slab(x_min, x_max)
        if sl.start >= sl.stop:
            return 0
        ys = self._ys_by_x[sl]
        return int(np.count_nonzero((ys > y_min) & (ys < y_max)))

    def ids(
        self, x_min: float, x_max: float, y_min: float, y_max: float
    ) -> List[int]:
        """Ids strictly inside the open rectangle, ascending."""
        sl = self._slab(x_min, x_max)
        if sl.start >= sl.stop:
            return []
        ys = self._ys_by_x[sl]
        hit = self._ds.order_x[sl][(ys > y_min) & (ys < y_max)]
        return [int(i) for i in np.sort(hit)]
