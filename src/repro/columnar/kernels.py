"""Vectorized sweep kernels over columnar SIRI rectangles.

Every kernel here is the array transliteration of one object-path inner
loop (:mod:`repro.core.sweep`, :meth:`SliceBRS._cut_into_slices`).  The
shared primitive is :func:`grouped_sweep`: events are concatenated into
flat arrays, stably sorted, grouped into coordinate batches with
``reduceat``, and the per-batch aggregates the object sweeps maintain
incrementally (had-insert / has-remove flags, active weight) fall out of
``np.logical_or.reduceat`` + ``np.cumsum`` — no per-event Python loop.

The trigger rule is identical to the object sweeps: the open interval
between batch ``k`` and batch ``k + 1`` is emitted when batch ``k``
contained insertions and batch ``k + 1`` contains removals, with the
active weight *after* batch ``k`` as the interval's (sound) upper bound.

Floating-point note: the cumulative active weights accumulate in sweep
order, which is a different summation order than the object evaluators
use.  Kernel outputs are therefore treated as *bounds and ranks*; the
solvers in :mod:`repro.columnar.solvers` recompute every reported score
from the exact member-id set so results stay comparable bit-for-bit with
the object path on exactly-representable weights.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Tuple

import numpy as np

from repro.runtime.errors import InvalidQueryError


class SweepBatches(NamedTuple):
    """Per-batch aggregates of one grouped event sweep.

    Attributes:
        coords: distinct event coordinates, ascending (one per batch).
        has_insert: whether the batch contains at least one insertion.
        has_remove: whether the batch contains at least one removal.
        active_after: total active weight after applying the batch — the
            weight alive in the open interval ``(coords[k], coords[k+1])``.
    """

    coords: np.ndarray
    has_insert: np.ndarray
    has_remove: np.ndarray
    active_after: np.ndarray


class SlabSet(NamedTuple):
    """Maximal open intervals emitted by a sweep, with upper bounds.

    Attributes:
        lo: interval lower coordinates.
        hi: interval upper coordinates.
        bound: active weight inside each interval (Lemma 7 upper bound;
            accumulated in sweep order, see module note).
    """

    lo: np.ndarray
    hi: np.ndarray
    bound: np.ndarray


def validate_extent(a: float, b: float) -> None:
    """Reject non-positive or non-finite query rectangles.

    Mirrors the checks of :func:`repro.core.siri.build_siri_rows`.

    Raises:
        InvalidQueryError: when ``a`` or ``b`` is not positive and finite.
    """
    if not (a > 0 and math.isfinite(a)):
        raise InvalidQueryError(f"query height a must be positive and finite, got {a}")
    if not (b > 0 and math.isfinite(b)):
        raise InvalidQueryError(f"query width b must be positive and finite, got {b}")


def siri_intervals(
    centers: np.ndarray, extent: float
) -> Tuple[np.ndarray, np.ndarray]:
    """One axis of the SIRI reduction: centers -> (lo, hi) edge arrays.

    ``lo = centers - extent / 2`` and ``hi = centers + extent / 2``, the
    same arithmetic as :func:`repro.core.siri.build_siri_rows`, so edge
    coordinates (and their exact float ties) match the object path.
    """
    half = extent / 2.0
    return centers - half, centers + half


def grouped_sweep(
    lo: np.ndarray, hi: np.ndarray, weights: np.ndarray
) -> SweepBatches:
    """Sweep the intervals' endpoint events, grouped by coordinate.

    Each interval contributes an insertion event at ``lo[i]`` carrying
    ``+weights[i]`` and a removal event at ``hi[i]`` carrying
    ``-weights[i]``.  Events sharing a coordinate form one batch, exactly
    like the object sweeps' inner ``while events[i][0] == y`` loop.

    Args:
        lo: interval lower endpoints (insertion coordinates).
        hi: interval upper endpoints (removal coordinates), same length.
        weights: per-interval weights, same length.

    Returns:
        The per-batch aggregates; empty arrays for empty input.
    """
    n = int(lo.size)
    if n == 0:
        empty_f = np.empty(0, dtype=np.float64)
        empty_b = np.empty(0, dtype=bool)
        return SweepBatches(empty_f, empty_b, empty_b.copy(), empty_f.copy())
    coords = np.concatenate((lo, hi))
    delta = np.concatenate((weights, -weights))
    is_insert = np.zeros(2 * n, dtype=bool)
    is_insert[:n] = True

    order = np.argsort(coords, kind="stable")
    coords = coords[order]
    delta = delta[order]
    is_insert = is_insert[order]

    starts = np.flatnonzero(
        np.concatenate((np.ones(1, dtype=bool), coords[1:] != coords[:-1]))
    )
    batch_coords = coords[starts]
    has_insert = np.logical_or.reduceat(is_insert, starts)
    has_remove = np.logical_or.reduceat(~is_insert, starts)
    active_after = np.cumsum(np.add.reduceat(delta, starts))
    return SweepBatches(batch_coords, has_insert, has_remove, active_after)


def maximal_intervals(
    lo: np.ndarray, hi: np.ndarray, weights: np.ndarray
) -> SlabSet:
    """Vectorized *ScanSlab* / *SearchMR* trigger over one axis.

    Returns every open interval ``(coords[k], coords[k+1])`` where batch
    ``k`` had an insertion and batch ``k + 1`` has a removal — the maximal
    slabs of Definition 6 when swept in y, the candidate x-gaps of
    *SearchMR* when swept in x — with the active weight as bound.
    """
    batches = grouped_sweep(lo, hi, weights)
    if batches.coords.size < 2:
        empty = np.empty(0, dtype=np.float64)
        return SlabSet(empty, empty.copy(), empty.copy())
    trigger = batches.has_insert[:-1] & batches.has_remove[1:]
    idx = np.flatnonzero(trigger)
    return SlabSet(
        batches.coords[idx],
        batches.coords[idx + 1],
        batches.active_after[idx],
    )


def spanning_mask(
    y_min: np.ndarray, y_max: np.ndarray, slab_lo: float, slab_hi: float
) -> np.ndarray:
    """Rows whose y-extent covers the (open) slab interior.

    The array form of :func:`repro.core.sweep.rows_spanning_slab`: a
    maximal slab contains no horizontal edge, so intersecting its interior
    means spanning it end to end.
    """
    return (y_min <= slab_lo) & (y_max >= slab_hi)


def ids_active_at(
    lo: np.ndarray, hi: np.ndarray, coord: float
) -> np.ndarray:
    """Indices of the intervals whose *open* interior contains ``coord``.

    Used with a gap midpoint: no event coordinate lies strictly inside a
    gap, so the intervals strictly containing the midpoint are exactly the
    sweep's active set in that gap.
    """
    return np.flatnonzero((lo < coord) & (hi > coord))


class SliceAssignment(NamedTuple):
    """Rows replicated into the vertical slices they intersect.

    Rows are ordered by slice (ascending), preserving input row order
    within each slice — the same per-bucket order the object path's
    ``_cut_into_slices`` produces.

    Attributes:
        row_ids: original row index of each replica.
        slice_ids: slice index of each replica.
        clipped_lo: replica x-interval lower edge, clipped to the slice.
        clipped_hi: replica x-interval upper edge, clipped to the slice.
        slice_starts: offsets of each occupied slice's first replica; the
            replicas of occupied slice ``j`` are
            ``[slice_starts[j], slice_starts[j + 1])``.
        n_slices: the slice-grid size (occupied or not).
    """

    row_ids: np.ndarray
    slice_ids: np.ndarray
    clipped_lo: np.ndarray
    clipped_hi: np.ndarray
    slice_starts: np.ndarray
    n_slices: int


def assign_slices(
    x_min: np.ndarray, x_max: np.ndarray, width: float
) -> SliceAssignment:
    """Vectorized slicing rule of Section 4.5.

    Replicates each row into every slice of the ``width``-wide grid it
    intersects, clips the replica in x, and drops zero-width clippings —
    the exact arithmetic of ``SliceBRS._cut_into_slices`` (grid origin at
    the minimum left edge, ``//`` binning, clip to ``[0, n_slices - 1]``).

    Raises:
        InvalidQueryError: when ``width`` is not positive and finite.
    """
    if not (width > 0 and math.isfinite(width)):
        raise InvalidQueryError(
            f"slice width must be positive and finite, got {width}"
        )
    x_lo = float(x_min.min())
    x_hi = float(x_max.max())
    n_slices = max(1, math.ceil((x_hi - x_lo) / width))

    first = np.clip(((x_min - x_lo) // width).astype(np.int64), 0, n_slices - 1)
    last = np.clip(((x_max - x_lo) // width).astype(np.int64), 0, n_slices - 1)
    counts = last - first + 1
    total = int(counts.sum())

    row_ids = np.repeat(np.arange(x_min.size, dtype=np.int64), counts)
    # Replica r of row i lands in slice first[i] + (r - first replica of i).
    offsets = np.cumsum(counts) - counts
    slice_ids = np.repeat(first, counts) + (
        np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    )
    s_lo = x_lo + slice_ids * width
    clipped_lo = np.maximum(x_min[row_ids], s_lo)
    clipped_hi = np.minimum(x_max[row_ids], s_lo + width)

    keep = clipped_lo < clipped_hi
    row_ids = row_ids[keep]
    slice_ids = slice_ids[keep]
    clipped_lo = clipped_lo[keep]
    clipped_hi = clipped_hi[keep]

    order = np.argsort(slice_ids, kind="stable")
    row_ids = row_ids[order]
    slice_ids = slice_ids[order]
    clipped_lo = clipped_lo[order]
    clipped_hi = clipped_hi[order]

    starts = np.flatnonzero(
        np.concatenate(
            (np.ones(min(1, slice_ids.size), dtype=bool), slice_ids[1:] != slice_ids[:-1])
        )
    )
    return SliceAssignment(
        row_ids, slice_ids, clipped_lo, clipped_hi, starts, n_slices
    )


def grid_cells(
    xs: np.ndarray, ys: np.ndarray, cell_w: float, cell_h: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized grid binning for the coarse grid scan.

    Snaps objects to the ``cell_w x cell_h`` grid anchored at the data
    minimum (matching :func:`repro.core.gridscan.coarse_grid_scan`) and
    returns the occupied cells ordered by descending population, ties
    broken by first occurrence — the order ``Counter.most_common`` yields
    for insertion-ordered counts.

    Returns:
        ``(cell_xy, order_members, member_starts, cell_order)`` where
        ``cell_xy`` is an ``(n_cells, 2)`` int array of occupied cell
        coordinates (in first-occurrence order), ``order_members`` holds
        object ids grouped by cell, ``member_starts`` delimits cell ``j``'s
        members as ``order_members[member_starts[j]:member_starts[j+1]]``,
        and ``cell_order`` walks cells in scan (population) order.
    """
    x0 = float(xs.min())
    y0 = float(ys.min())
    ix = ((xs - x0) // cell_w).astype(np.int64)
    iy = ((ys - y0) // cell_h).astype(np.int64)
    pairs = np.stack((ix, iy), axis=1)
    uniq, first_pos, inverse, counts = np.unique(
        pairs, axis=0, return_index=True, return_inverse=True, return_counts=True
    )
    inverse = inverse.reshape(-1)
    # Re-rank cells by first occurrence so downstream order matches the
    # object path's insertion-ordered Counter.
    appearance = np.argsort(first_pos, kind="stable")
    rank_of_uniq = np.empty_like(appearance)
    rank_of_uniq[appearance] = np.arange(appearance.size)
    cell_of_obj = rank_of_uniq[inverse]
    cell_xy = uniq[appearance]
    cell_counts = counts[appearance]

    member_order = np.argsort(cell_of_obj, kind="stable")
    member_starts = np.concatenate(
        (
            np.zeros(1, dtype=np.int64),
            np.cumsum(np.bincount(cell_of_obj, minlength=appearance.size)),
        )
    )
    # Population-descending with first-occurrence tie-break == most_common.
    cell_order = np.lexsort((np.arange(appearance.size), -cell_counts))
    return cell_xy, member_order, member_starts, cell_order
