"""Columnar SliceBRS and MaxRS solvers built on the vectorized kernels.

Both solvers answer the same queries as their object-path counterparts
(:class:`repro.core.slicebrs.SliceBRS`, :func:`repro.core.maxrs.oe_maxrs`)
and return the same :class:`~repro.core.result.BRSResult` type, but spend
their inner loops inside NumPy instead of per-event Python:

* :func:`columnar_slicebrs` — slicing, ScanSlab, and SearchMR as array
  sweeps, with the same best-first bound pruning (processed in descending
  bound order, which visits exactly the entries a shared heap would).
* :func:`columnar_oe_maxrs` — the OE pass as one global ScanSlab followed
  by bound-descending per-slab prefix-sum sweeps (the "prefix-max sweep"
  replacement for the segment tree).

Modular (SUM) scores only: a sweep's active weight is then a plain running
sum, which is what vectorizes.  General submodular functions stay on the
object path — :func:`columnar_best_region` dispatches and falls back.

Every *reported* score (incumbent updates included) is recomputed from
the candidate's exact member-id set with ``f.value``, never read off the
kernel's cumulative sums, so columnar and object answers agree exactly
whenever the weights' partial sums are exactly representable and to float
rounding otherwise.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Sequence

import numpy as np

from repro.columnar.dataset import ColumnarDataset, as_columnar
from repro.columnar.kernels import (
    assign_slices,
    ids_active_at,
    maximal_intervals,
    siri_intervals,
    spanning_mask,
    validate_extent,
)
from repro.core.result import BRSResult
from repro.core.stats import SearchStats
from repro.functions.base import SetFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget, effective_budget
from repro.runtime.errors import BudgetExceededError, InvalidQueryError


def _weights_array(f: SumFunction, n: int) -> np.ndarray:
    """The SUM function's weights as a float64 array."""
    weights = np.ascontiguousarray(f.weights, dtype=np.float64)
    if weights.size != n:
        raise InvalidQueryError(
            f"score function covers {weights.size} objects but the dataset "
            f"has {n}"
        )
    return weights


def _exact_value(f: SetFunction, ids: np.ndarray) -> float:
    """Recompute a candidate's score from its exact member-id set."""
    return float(f.value([int(i) for i in np.sort(ids)]))


def _finish(
    ds: ColumnarDataset,
    f: SetFunction,
    a: float,
    b: float,
    best_point: Optional[Point],
    best_value: float,
    stats: SearchStats,
    status: str,
    remaining_upper: float,
) -> BRSResult:
    """Fallback handling and result assembly shared by both solvers."""
    if best_point is None:
        # Every candidate scored f(emptyset) (or nothing beat the caller's
        # initial_best); any object's own location is then a valid answer
        # reported with its true score, as on the object path.
        best_point = Point(float(ds.xs[0]), float(ds.ys[0]))
        best_value = f.value(ds.ids_in_region(best_point.x, best_point.y, a, b))
    object_ids = ds.ids_in_region(best_point.x, best_point.y, a, b)
    return BRSResult(
        point=best_point,
        score=best_value,
        object_ids=object_ids,
        a=a,
        b=b,
        stats=stats,
        status=status,
        upper_bound=(
            None if status == "ok" else max(best_value, remaining_upper)
        ),
    )


def columnar_slicebrs(
    data: Any,
    f: SumFunction,
    a: float,
    b: float,
    theta: float = 1.0,
    initial_best: float = 0.0,
    budget: Optional[Budget] = None,
) -> BRSResult:
    """Exact SliceBRS for modular scores, vectorized end to end.

    The search is the paper's: slice the space (width ``theta * b``),
    bound each slice by its total weight, scan surviving slices into
    maximal slabs (*ScanSlab*), and sweep surviving slabs (*SearchMR*) —
    but each stage is one array kernel, and entries are processed in
    descending bound order, which prunes exactly where the object path's
    shared best-first heap does.

    Args:
        data: a :class:`ColumnarDataset`, an object with a ``columns()``
            accessor, or a plain point sequence.
        f: the modular score; must be a :class:`SumFunction`.
        a: query-rectangle height.
        b: query-rectangle width.
        theta: slice width as a multiple of ``b``.
        initial_best: known-achievable lower bound on the optimum.
        budget: optional cooperative budget (falls back to the ambient
            scope); charged per slice bound, slab found, and candidate
            batch, like the object solver.  On expiry the best-so-far
            answer is returned with ``status="timeout"`` and a sound
            ``upper_bound``.

    Raises:
        InvalidQueryError: on an empty instance, a bad rectangle or theta,
            or a non-SUM score function (use :func:`columnar_best_region`
            to fall back to the object path instead).
    """
    if not isinstance(f, SumFunction):
        raise InvalidQueryError(
            "columnar_slicebrs vectorizes modular (SumFunction) scores only; "
            "use columnar_best_region to dispatch other functions to the "
            "object path"
        )
    validate_extent(a, b)
    if not (theta > 0 and np.isfinite(theta)):
        raise InvalidQueryError(f"theta must be positive and finite, got {theta}")
    ds = as_columnar(data)
    weights = _weights_array(f, ds.n)
    budget = effective_budget(budget)
    registry = active_registry()
    tracer = active_tracer()
    start_time = time.perf_counter()
    evals_before = budget.evals if budget is not None else 0

    stats = SearchStats(n_objects=ds.n)
    best_value = max(0.0, initial_best)
    best_point: Optional[Point] = None
    status = "ok"
    remaining_upper = 0.0

    with tracer.span(
        "columnar.slicebrs", n_objects=ds.n, theta=theta
    ):
        x_min, x_max = siri_intervals(ds.xs, b)
        y_min, y_max = siri_intervals(ds.ys, a)
        sl = assign_slices(x_min, x_max, theta * b)
        n_occupied = int(sl.slice_starts.size)
        stats.n_slices = n_occupied

        bounds = np.empty(0, dtype=np.float64)
        try:
            if budget is not None:
                budget.charge(n_occupied)
            if sl.row_ids.size:
                ends = np.append(sl.slice_starts[1:], sl.row_ids.size)
                bounds = np.add.reduceat(weights[sl.row_ids], sl.slice_starts)
        except BudgetExceededError:
            # No slice bound was paid for; f of everything soundly covers
            # all unexplored work (monotonicity).
            status = "timeout"
            remaining_upper = f.value(range(ds.n))

        if status == "ok":
            order = np.argsort(-bounds, kind="stable")
            try:
                for j in order:
                    slice_bound = float(bounds[j])
                    remaining_upper = slice_bound
                    # Descending order: once a bound is prunable (or zero)
                    # every remaining one is too.
                    if slice_bound <= 0.0 or slice_bound < best_value:
                        tracer.event(
                            "columnar.prune_stop",
                            bound=slice_bound,
                            best=best_value,
                        )
                        break
                    lo = int(sl.slice_starts[j])
                    hi = int(ends[j])
                    rid = sl.row_ids[lo:hi]
                    ymin_s = y_min[rid]
                    ymax_s = y_max[rid]
                    w_s = weights[rid]
                    stats.n_slices_scanned += 1
                    stats.n_pushes += int(rid.size)

                    slabs = maximal_intervals(ymin_s, ymax_s, w_s)
                    n_slabs = int(slabs.lo.size)
                    stats.n_slabs += n_slabs
                    if budget is not None:
                        budget.charge(n_slabs)
                    slab_order = np.argsort(-slabs.bound, kind="stable")
                    for k in slab_order:
                        slab_bound = float(slabs.bound[k])
                        remaining_upper = max(slab_bound, slice_bound)
                        if slab_bound <= 0.0 or slab_bound < best_value:
                            break
                        slab_lo = float(slabs.lo[k])
                        slab_hi = float(slabs.hi[k])
                        span = spanning_mask(ymin_s, ymax_s, slab_lo, slab_hi)
                        gx_lo = sl.clipped_lo[lo:hi][span]
                        gx_hi = sl.clipped_hi[lo:hi][span]
                        gw = w_s[span]
                        stats.n_slabs_searched += 1
                        stats.n_pushes += int(gw.size)

                        gaps = maximal_intervals(gx_lo, gx_hi, gw)
                        n_gaps = int(gaps.lo.size)
                        stats.n_candidates += n_gaps
                        if budget is not None:
                            budget.charge(n_gaps)
                        if n_gaps == 0:
                            continue
                        top = int(np.argmax(gaps.bound))
                        mx = (float(gaps.lo[top]) + float(gaps.hi[top])) / 2.0
                        member_ids = rid[span][ids_active_at(gx_lo, gx_hi, mx)]
                        exact = _exact_value(f, member_ids)
                        if exact > best_value:
                            best_value = exact
                            best_point = Point(mx, (slab_lo + slab_hi) / 2.0)
                else:
                    # Exhausted without a prune stop: nothing unexplored.
                    remaining_upper = 0.0
            except BudgetExceededError:
                # Bound-descending processing: the entry in flight caps
                # everything still unprocessed.
                status = "timeout"

    stats.publish(registry, "columnar_slicebrs")
    if registry.enabled:
        registry.histogram(
            "brs_columnar_solve_seconds", help="columnar solve wall time"
        ).observe(time.perf_counter() - start_time)
        if budget is not None:
            registry.counter(
                "brs_budget_evals_total",
                help="score evaluations charged to budgets",
            ).inc(budget.evals - evals_before)
        if status != "ok":
            registry.counter(
                "brs_timeout_results_total",
                help="solves that returned a non-ok anytime answer",
            ).inc()
    return _finish(
        ds, f, a, b, best_point, best_value, stats, status, remaining_upper
    )


def columnar_oe_maxrs(
    data: Any,
    a: float,
    b: float,
    weights: Optional[Sequence[float]] = None,
) -> BRSResult:
    """Exact MaxRS as a global ScanSlab plus per-slab prefix-sum sweeps.

    The Optimal Enclosure baseline maintains a lazy segment tree along one
    bottom-up sweep; here the same optimum comes from the maximal-slab
    decomposition: one vectorized y-sweep finds every maximal slab with
    its weight bound, and slabs are swept in x (best bound first) until
    the incumbent beats every remaining bound — usually after a handful
    of slabs.

    Without slicing, dense instances defeat slab pruning — almost every
    maximal slab's weight bound beats the incumbent and the search goes
    quadratic — so the sweep runs inside the sliced engine of
    :func:`columnar_slicebrs` with ``theta = 1`` (the Appendix C.2
    structure, which :func:`repro.core.maxrs.slicebrs_maxrs` also uses):
    slice bounds amortize the pruning and each surviving slab is still
    one prefix-sum sweep.  The optimum is identical either way; only the
    work changes.

    Args:
        data: a :class:`ColumnarDataset`, an object with a ``columns()``
            accessor, or a plain point sequence.
        a: query-rectangle height.
        b: query-rectangle width.
        weights: non-negative per-object weights; when omitted, the
            dataset's own weight column (all ones if it has none).

    Raises:
        InvalidQueryError: on an empty instance or bad rectangle.
        ValueError: on a weight-count mismatch or negative weight.
    """
    validate_extent(a, b)
    ds = as_columnar(data)
    if weights is None and ds.weights is not None:
        weights = ds.weights
    f = SumFunction(ds.n, None if weights is None else list(weights))
    with active_tracer().span("columnar.oe_maxrs", n_objects=ds.n):
        return columnar_slicebrs(ds, f, a, b, theta=1.0)


def columnar_best_region(
    data: Any,
    f: SetFunction,
    a: float,
    b: float,
    theta: float = 1.0,
    initial_best: float = 0.0,
    budget: Optional[Budget] = None,
) -> BRSResult:
    """Solve BRS on the columnar plane when possible, object path otherwise.

    Modular (:class:`SumFunction`) scores run :func:`columnar_slicebrs`;
    any other score function falls back to the object-path
    :class:`~repro.core.slicebrs.SliceBRS` on the dataset's materialized
    points (counted by ``brs_columnar_fallbacks_total``), so callers can
    use this entry point unconditionally.
    """
    if isinstance(f, SumFunction):
        return columnar_slicebrs(
            data, f, a, b, theta=theta, initial_best=initial_best, budget=budget
        )
    registry = active_registry()
    if registry.enabled:
        registry.counter(
            "brs_columnar_fallbacks_total",
            help="columnar dispatches that fell back to the object path",
        ).inc()
    from repro.core.slicebrs import SliceBRS

    ds = as_columnar(data)
    return SliceBRS(theta=theta).solve(
        ds.points(), f, a, b, initial_best=initial_best, budget=budget
    )
