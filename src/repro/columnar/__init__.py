"""repro.columnar — the NumPy columnar data plane.

Every hot path in the reproduction historically iterated over per-object
:class:`~repro.geometry.point.Point` / :class:`~repro.geometry.rect.Rect`
Python objects.  This subsystem stores the same data as a handful of
contiguous NumPy arrays (:class:`~repro.columnar.dataset.ColumnarDataset`)
and rewrites the solver inner loops as vectorized sweeps:

* :func:`~repro.columnar.solvers.columnar_slicebrs` — the exact SliceBRS
  search for modular (SUM) score functions, with event-array *ScanSlab*
  and prefix-sum *SearchMR* kernels;
* :func:`~repro.columnar.solvers.columnar_oe_maxrs` — the exact MaxRS
  pass, replacing the per-edge segment-tree loop with a prefix-sum sweep
  over maximal slabs;
* :func:`~repro.columnar.gridscan.columnar_grid_scan` — the degradation
  ladder's grid scan with vectorized binning and batched score
  evaluation (:meth:`~repro.functions.base.SetFunction.batch_value`);
* :class:`~repro.columnar.rangecount.SortedRangeCounter` —
  ``searchsorted``-based rectangular range counting over the sorted
  coordinate views.

The object API stays the facade: datasets expose a lazily built, cached
``columns()`` accessor and every existing solver keeps working on Point
sequences.  See ``docs/columnar.md`` for the layout and the kernel
authoring guide.
"""

from __future__ import annotations

import numpy as _np

#: Minimum NumPy release the kernels are tested against (declared in
#: pyproject.toml as ``numpy>=1.24``).  Older releases predate the dtype
#: promotion and ``reduceat`` semantics the kernels rely on.
NUMPY_FLOOR = (1, 24)


def _check_numpy_floor() -> None:
    """Fail fast, with a clear message, on a NumPy older than the floor.

    Raises:
        ImportError: when the installed NumPy predates ``NUMPY_FLOOR``.
    """
    parts = _np.__version__.split(".")
    try:
        found = (int(parts[0]), int(parts[1]))
    except (IndexError, ValueError):  # exotic dev builds: let them through
        return
    if found < NUMPY_FLOOR:
        floor = ".".join(str(v) for v in NUMPY_FLOOR)
        raise ImportError(
            f"repro.columnar requires numpy>={floor} but found "
            f"{_np.__version__}; upgrade numpy or stay on the object-path "
            f"solvers (repro.core), which have no version floor"
        )


_check_numpy_floor()

from repro.columnar.dataset import ColumnarDataset
from repro.columnar.gridscan import columnar_grid_scan
from repro.columnar.rangecount import SortedRangeCounter
from repro.columnar.solvers import (
    columnar_best_region,
    columnar_oe_maxrs,
    columnar_slicebrs,
)

__all__ = [
    "ColumnarDataset",
    "NUMPY_FLOOR",
    "SortedRangeCounter",
    "columnar_best_region",
    "columnar_grid_scan",
    "columnar_oe_maxrs",
    "columnar_slicebrs",
]
