"""The columnar object store: coordinates, weights, and tag ids as arrays.

A :class:`ColumnarDataset` is the array-of-structs → struct-of-arrays
transposition of a BRS instance.  Object ``i`` is row ``i`` across all
columns — the same positional-id convention the object API uses — so a
columnar solver and an object-path solver given the same dataset talk
about the same object ids.

Columns are frozen at construction (the arrays are marked read-only):
mutation happens in :class:`~repro.ingest.live.LiveDataset`, which
rebuilds its cached columns when its mutation sequence moves.  Freezing
is what makes the cached sorted-index views and zero-copy slices safe to
share between solvers, worker processes, and the serve tier.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.runtime.errors import InvalidQueryError


def _as_frozen_f64(values: Any, name: str) -> np.ndarray:
    """Return ``values`` as a read-only contiguous float64 1-D array.

    Raises:
        InvalidQueryError: on a non-1-D input or non-finite entries.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise InvalidQueryError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise InvalidQueryError(
            f"{name}[{bad}] is non-finite ({arr[bad]}); columnar datasets "
            "reject NaN/inf up front, like the object-path validators"
        )
    arr.flags.writeable = False
    return arr


class ColumnarDataset:
    """A BRS instance as contiguous NumPy columns.

    Attributes:
        xs: object x coordinates, float64, read-only.
        ys: object y coordinates, float64, read-only.
        weights: per-object weights (``None`` when the instance carries no
            modular weights; solvers then treat every weight as 1).
        tag_codes: CSR-encoded tag ids — ``tag_codes[tag_indptr[i]:
            tag_indptr[i+1]]`` are the vocabulary codes of object ``i``
            (``None`` when the instance carries no tags).
        tag_indptr: CSR row pointers for ``tag_codes``.
        tag_vocab: vocabulary, ``tag_vocab[code]`` is the original label.
    """

    def __init__(
        self,
        xs: Any,
        ys: Any,
        weights: Optional[Any] = None,
        tag_sets: Optional[Sequence[Sequence[Hashable]]] = None,
    ) -> None:
        """Build a dataset from coordinate (and optional payload) arrays.

        Args:
            xs: x coordinates (anything ``np.asarray`` accepts).
            ys: y coordinates, same length.
            weights: optional non-negative per-object weights.
            tag_sets: optional per-object label collections; encoded into
                a CSR (``tag_indptr``/``tag_codes``) layout over a sorted
                vocabulary.

        Raises:
            InvalidQueryError: on an empty instance, length mismatches,
                non-finite values, or negative weights.
        """
        self.xs = _as_frozen_f64(xs, "xs")
        self.ys = _as_frozen_f64(ys, "ys")
        if self.xs.size == 0:
            raise InvalidQueryError("BRS requires at least one spatial object")
        if self.xs.shape != self.ys.shape:
            raise InvalidQueryError(
                f"coordinate columns disagree: {self.xs.size} xs vs "
                f"{self.ys.size} ys"
            )
        self.weights: Optional[np.ndarray] = None
        if weights is not None:
            warr = _as_frozen_f64(weights, "weights")
            if warr.shape != self.xs.shape:
                raise InvalidQueryError(
                    f"expected {self.xs.size} weights, got {warr.size}"
                )
            if warr.size and float(warr.min()) < 0:
                raise InvalidQueryError("negative weights break monotonicity")
            self.weights = warr

        self.tag_indptr: Optional[np.ndarray] = None
        self.tag_codes: Optional[np.ndarray] = None
        self.tag_vocab: Optional[np.ndarray] = None
        if tag_sets is not None:
            if len(tag_sets) != self.xs.size:
                raise InvalidQueryError(
                    f"expected {self.xs.size} tag sets, got {len(tag_sets)}"
                )
            self._encode_tags(tag_sets)

        # Lazily built caches; all derived from the frozen columns.
        self._order_x: Optional[np.ndarray] = None
        self._order_y: Optional[np.ndarray] = None
        self._xs_sorted: Optional[np.ndarray] = None
        self._ys_sorted: Optional[np.ndarray] = None
        self._points: Optional[List[Point]] = None

    def _encode_tags(self, tag_sets: Sequence[Sequence[Hashable]]) -> None:
        """Encode label collections into the CSR columns."""
        lengths = np.fromiter(
            (len(set(tags)) for tags in tag_sets), dtype=np.int64,
            count=len(tag_sets),
        )
        indptr = np.zeros(len(tag_sets) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        flat: List[Hashable] = []
        for tags in tag_sets:
            flat.extend(sorted(set(tags), key=repr))
        try:
            vocab, codes = np.unique(np.asarray(flat, dtype=object), return_inverse=True)
        except TypeError as exc:  # unorderable mixed-type labels
            raise InvalidQueryError(
                f"tag labels must be mutually orderable to build a columnar "
                f"vocabulary ({exc}); keep such functions on the object path"
            ) from exc
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        codes.flags.writeable = False
        indptr.flags.writeable = False
        vocab.flags.writeable = False
        self.tag_indptr = indptr
        self.tag_codes = codes
        self.tag_vocab = vocab

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_points(
        cls,
        points: Sequence[Point],
        weights: Optional[Sequence[float]] = None,
        tag_sets: Optional[Sequence[Sequence[Hashable]]] = None,
    ) -> "ColumnarDataset":
        """Transpose an object-path point sequence into columns."""
        n = len(points)
        xs = np.fromiter((p.x for p in points), dtype=np.float64, count=n)
        ys = np.fromiter((p.y for p in points), dtype=np.float64, count=n)
        return cls(xs, ys, weights=weights, tag_sets=tag_sets)

    # -- basic views -----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of objects."""
        return int(self.xs.size)

    def __len__(self) -> int:
        return self.n

    @property
    def order_x(self) -> np.ndarray:
        """Object ids sorted by x (stable; built lazily, cached)."""
        if self._order_x is None:
            order = np.argsort(self.xs, kind="stable")
            order.flags.writeable = False
            self._order_x = order
        return self._order_x

    @property
    def order_y(self) -> np.ndarray:
        """Object ids sorted by y (stable; built lazily, cached)."""
        if self._order_y is None:
            order = np.argsort(self.ys, kind="stable")
            order.flags.writeable = False
            self._order_y = order
        return self._order_y

    @property
    def xs_sorted(self) -> np.ndarray:
        """x coordinates in ``order_x`` order (cached)."""
        if self._xs_sorted is None:
            arr = self.xs[self.order_x]
            arr.flags.writeable = False
            self._xs_sorted = arr
        return self._xs_sorted

    @property
    def ys_sorted(self) -> np.ndarray:
        """y coordinates in ``order_y`` order (cached)."""
        if self._ys_sorted is None:
            arr = self.ys[self.order_y]
            arr.flags.writeable = False
            self._ys_sorted = arr
        return self._ys_sorted

    def points(self) -> List[Point]:
        """Materialize the object-path :class:`Point` list (lazily, once).

        This is the facade boundary: generators and ingest build columns
        natively and only pay for Python objects when an object-path
        consumer actually asks.
        """
        if self._points is None:
            self._points = [
                Point(float(x), float(y)) for x, y in zip(self.xs, self.ys)
            ]
        return self._points

    def tag_sets(self) -> List[frozenset]:
        """Decode the CSR tag columns back into per-object frozensets.

        Raises:
            InvalidQueryError: when the dataset carries no tag columns.
        """
        if self.tag_codes is None or self.tag_indptr is None or self.tag_vocab is None:
            raise InvalidQueryError("this columnar dataset carries no tags")
        vocab = self.tag_vocab
        indptr = self.tag_indptr
        codes = self.tag_codes
        return [
            frozenset(vocab[c] for c in codes[indptr[i]:indptr[i + 1]])
            for i in range(self.n)
        ]

    # -- slab slicing and range queries ----------------------------------

    def slab_x(self, x_lo: float, x_hi: float) -> np.ndarray:
        """Object ids with ``x_lo < x < x_hi``, as a zero-copy slice.

        The returned array is a *view* into :attr:`order_x` (no copy):
        ``searchsorted`` finds the open interval's bounds in the sorted
        coordinate column.  Ids come back in x order, not id order.
        """
        lo = int(np.searchsorted(self.xs_sorted, x_lo, side="right"))
        hi = int(np.searchsorted(self.xs_sorted, x_hi, side="left"))
        return self.order_x[lo:hi]

    def slab_y(self, y_lo: float, y_hi: float) -> np.ndarray:
        """Object ids with ``y_lo < y < y_hi``, as a zero-copy slice."""
        lo = int(np.searchsorted(self.ys_sorted, y_lo, side="right"))
        hi = int(np.searchsorted(self.ys_sorted, y_hi, side="left"))
        return self.order_y[lo:hi]

    def ids_in_region(self, cx: float, cy: float, a: float, b: float) -> List[int]:
        """Ids strictly inside the ``a x b`` rectangle centered at ``(cx, cy)``.

        Matches :func:`repro.core.siri.objects_in_region` exactly — open
        rectangle, ids ascending — so columnar results report the same
        object sets as the object path.
        """
        half_a = a / 2.0
        half_b = b / 2.0
        cand = self.slab_x(cx - half_b, cx + half_b)
        if cand.size == 0:
            return []
        ys = self.ys[cand]
        inside = cand[(ys > cy - half_a) & (ys < cy + half_a)]
        inside = np.sort(inside)
        return [int(i) for i in inside]

    def count_in_rect(
        self, x_min: float, x_max: float, y_min: float, y_max: float
    ) -> int:
        """Count objects strictly inside the open rectangle."""
        cand = self.slab_x(x_min, x_max)
        if cand.size == 0:
            return 0
        ys = self.ys[cand]
        return int(np.count_nonzero((ys > y_min) & (ys < y_max)))

    # -- interop ---------------------------------------------------------

    def subset(self, ids: Sequence[int]) -> "ColumnarDataset":
        """A new dataset holding rows ``ids`` (new positional ids 0..k-1)."""
        idx = np.asarray(ids, dtype=np.int64)
        tag_sets = None
        if self.tag_codes is not None:
            all_tags = self.tag_sets()
            tag_sets = [all_tags[int(i)] for i in idx]
        return ColumnarDataset(
            self.xs[idx],
            self.ys[idx],
            weights=None if self.weights is None else self.weights[idx],
            tag_sets=tag_sets,
        )

    def coords(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(xs, ys)`` pair — cheap to pickle across process bounds."""
        return self.xs, self.ys


def as_columnar(data: Any) -> ColumnarDataset:
    """Coerce solver input into a :class:`ColumnarDataset`.

    Accepts a dataset (returned as-is), anything exposing a ``columns()``
    facade accessor, or a plain :class:`Point` sequence (transposed).
    """
    if isinstance(data, ColumnarDataset):
        return data
    columns = getattr(data, "columns", None)
    if callable(columns):
        got = columns()
        if isinstance(got, ColumnarDataset):
            return got
    return ColumnarDataset.from_points(data)
