"""Columnar coarse grid scan — the degradation ladder's last rung, batched.

Same contract as :func:`repro.core.gridscan.coarse_grid_scan` (anytime,
near-linear, population-ordered cells, ``degraded``/``timeout`` status)
with the two hot steps vectorized: objects are binned with one pass of
array arithmetic (:func:`repro.columnar.kernels.grid_cells`) and every
occupied cell's score is computed in one
:meth:`~repro.functions.base.SetFunction.batch_value` call instead of one
``f.value`` call per cell.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.columnar.dataset import as_columnar
from repro.columnar.kernels import grid_cells, validate_extent
from repro.core.result import BRSResult
from repro.core.stats import SearchStats
from repro.functions.base import SetFunction
from repro.geometry.point import Point
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.budget import Budget, effective_budget
from repro.runtime.errors import BudgetExceededError


def columnar_grid_scan(
    data: Any,
    f: SetFunction,
    a: float,
    b: float,
    budget: Optional[Budget] = None,
    initial_best: float = 0.0,
) -> BRSResult:
    """Best region among grid-cell centers, on the columnar plane.

    Args:
        data: a :class:`~repro.columnar.dataset.ColumnarDataset`, an
            object with a ``columns()`` accessor, or a point sequence.
        f: monotone aggregate score over object ids.
        a: query-rectangle height.
        b: query-rectangle width.
        budget: optional execution budget; one evaluation charged per cell
            examined, exactly like the object-path scan, so anytime
            behavior (which cells get considered) is unchanged.
        initial_best: known-achievable score to beat.

    Returns:
        A ``BRSResult`` with ``status="degraded"`` when every occupied
        cell was examined, ``"timeout"`` when the budget cut the scan
        short; ``upper_bound`` is ``f`` of all objects either way.

    Raises:
        InvalidQueryError: on an empty instance or a bad rectangle.
    """
    validate_extent(a, b)
    ds = as_columnar(data)
    budget = effective_budget(budget)
    tracer = active_tracer()
    registry = active_registry()
    start_time = time.perf_counter()

    cell_xy, member_order, member_starts, cell_order = grid_cells(
        ds.xs, ds.ys, b, a
    )
    x0 = float(ds.xs.min())
    y0 = float(ds.ys.min())
    n_cells = int(cell_order.size)

    stats = SearchStats(n_objects=ds.n, n_slices=n_cells, n_pushes=ds.n)
    best_value = max(0.0, initial_best)
    best_point: Optional[Point] = None
    status = "degraded"
    with tracer.span("gridscan.solve", n_objects=ds.n, n_cells=n_cells):
        values = f.batch_value(member_order, member_starts)
        try:
            for c in cell_order:
                if budget is not None:
                    budget.charge()
                stats.n_candidates += 1
                stats.n_slices_scanned += 1
                value = float(values[c])
                if value > best_value:
                    best_value = value
                    cx, cy = cell_xy[c]
                    best_point = Point(
                        x0 + (float(cx) + 0.5) * b, y0 + (float(cy) + 0.5) * a
                    )
        except BudgetExceededError:
            status = "timeout"

    if best_point is None:
        best_point = Point(float(ds.xs[0]), float(ds.ys[0]))
        best_value = f.value(ds.ids_in_region(best_point.x, best_point.y, a, b))

    stats.publish(registry, "gridscan")
    if registry.enabled:
        registry.histogram(
            "brs_gridscan_solve_seconds", help="grid-scan solve wall time"
        ).observe(time.perf_counter() - start_time)

    object_ids = ds.ids_in_region(best_point.x, best_point.y, a, b)
    return BRSResult(
        point=best_point,
        score=f.value(object_ids),
        object_ids=object_ids,
        a=a,
        b=b,
        stats=stats,
        status=status,
        upper_bound=max(best_value, f.value(range(ds.n))),
    )
