"""Deterministic profiling hooks (cProfile) for the solver stack.

Traces and counters say *what* happened; when a hot path needs a
function-level answer to *where the time went*, wrap the call in
:func:`profile_scope`.  cProfile ships with CPython, so this costs no
dependency — but unlike the metrics/tracing machinery it is emphatically
not low-overhead, which is why it is a separate opt-in (the CLI's
``--profile``) rather than part of the ambient scopes.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO


@contextmanager
def profile_scope(
    top_n: int = 25,
    stream: Optional[TextIO] = None,
    sort: str = "cumulative",
) -> Iterator[cProfile.Profile]:
    """Profile the enclosed block and print the hottest functions on exit.

    Args:
        top_n: number of rows of the stats table to print.
        stream: destination for the report; defaults to ``sys.stderr`` so
            profiles never corrupt machine-read stdout.
        sort: a :mod:`pstats` sort key (``"cumulative"``, ``"tottime"``,
            ``"calls"``, ...).

    Yields:
        The live :class:`cProfile.Profile`, should the caller want to dump
        raw stats (``yielded.dump_stats(path)``) as well.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        # pstats writes as it formats; buffer so a crash mid-format cannot
        # leave a half-printed table on the real stream.
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats(sort).print_stats(top_n)
        (stream or sys.stderr).write(buffer.getvalue())
