"""Exporters: Prometheus text exposition and JSON snapshots.

Two consumers, two formats:

* scrapers and dashboards read the `Prometheus text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
  (:func:`to_prometheus_text`);
* the benchmark driver and tests embed machine-readable
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dicts into JSON
  (:func:`write_metrics` with a ``.json`` path).

Metric names already follow Prometheus conventions (``snake_case`` with
``_total``/``_seconds`` suffixes), so no name mangling happens here;
only help text is escaped (backslashes and newlines) per the format.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def _fmt(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line per the exposition format.

    Backslashes and newlines are the only characters the format escapes
    in help text; anything else passes through verbatim.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every metric in the Prometheus text exposition format.

    Counters and gauges emit one sample; histograms emit the conventional
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    """
    lines = []
    for name, metric in registry.metrics().items():
        if isinstance(metric, Counter):
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.bucket_counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            cumulative += metric.bucket_counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_fmt(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(
    registry: MetricsRegistry, path: Union[str, pathlib.Path]
) -> None:
    """Write the registry to ``path``, format chosen by extension.

    ``.prom`` and ``.txt`` get the text exposition; anything else
    (conventionally ``.json``) gets an indented JSON snapshot.
    """
    path = pathlib.Path(path)
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus_text(registry))
    else:
        path.write_text(json.dumps(registry.snapshot(), indent=2) + "\n")
