"""Service-level objectives and a sliding-window SLO tracker.

ROADMAP item 2's "million-user load story" needs latency targets that
are *declared*, not implied by whatever the last benchmark happened to
print.  This module gives the serving tier that vocabulary:

* :class:`SLObjective` — a declarative target per quality tier: p50/p99
  latency ceilings, an availability floor, and a shed-ratio ceiling.
* :class:`SLOTracker` — a sliding window of request outcomes that turns
  the stream of (outcome, seconds) observations into live p50/p99,
  error-budget burn rate, and shed ratio, publishes them as gauges, and
  renders a verdict against its objective.

Outcome vocabulary (matching the serve layer's response statuses):
``ok`` and ``degraded`` count as *served* (degraded answers are still
answers — they carry sound bounds); ``error`` burns the availability
budget; ``rejected`` (admission shed) counts against the shed ratio but
not availability — shedding under pressure is the *designed* behavior,
and gets its own ceiling.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Outcomes that carry a meaningful latency sample.
_SERVED = ("ok", "degraded")

#: All outcomes the tracker accepts.
OUTCOMES = ("ok", "degraded", "error", "rejected")


@dataclass(frozen=True)
class SLObjective:
    """A declarative latency/availability objective for one quality tier.

    Attributes:
        tier: the quality tier this objective governs (e.g.
            ``"interactive"``).
        p50_seconds / p99_seconds: latency ceilings for served requests.
        availability: floor on the fraction of non-shed requests that
            must not error (0.999 = "three nines").
        max_shed_ratio: ceiling on the fraction of requests the admission
            controller may reject before the tier is unhealthy.
    """

    tier: str
    p50_seconds: float
    p99_seconds: float
    availability: float = 0.99
    max_shed_ratio: float = 0.05


#: Default objectives per quality tier.  ``interactive`` is the serve
#: tier's envelope for cache-warm, batched traffic on one host;
#: ``batch`` covers offline/benchmark traffic where only availability
#: and completion matter.
DEFAULT_OBJECTIVES: Dict[str, SLObjective] = {
    "interactive": SLObjective(
        tier="interactive",
        p50_seconds=0.5,
        p99_seconds=5.0,
        availability=0.99,
        max_shed_ratio=0.10,
    ),
    "batch": SLObjective(
        tier="batch",
        p50_seconds=30.0,
        p99_seconds=300.0,
        availability=0.95,
        max_shed_ratio=0.0,
    ),
}


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (0 <= q <= 1).

    Same estimator as :func:`repro.obs.metrics.histogram_quantile` uses
    within a bucket, but over exact samples; returns 0.0 when empty.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


class SLOTracker:
    """Sliding-window outcome tracker judged against one objective.

    The window is count-bounded (the newest ``window`` requests), so the
    tracker's memory is O(window) regardless of uptime and its verdict
    reflects *recent* behavior — a burst of errors an hour ago should not
    keep /healthz red forever.

    Thread-safe: the serve engine records outcomes from worker threads
    and HTTP handler threads concurrently.
    """

    def __init__(self, objective: SLObjective, window: int = 1024) -> None:
        self.objective = objective
        self._window: Deque[Tuple[str, float]] = deque(maxlen=max(1, window))
        self._lock = threading.Lock()

    def record(self, outcome: str, seconds: float = 0.0) -> None:
        """Record one request outcome (see :data:`OUTCOMES`)."""
        if outcome not in OUTCOMES:
            outcome = "error"
        with self._lock:
            self._window.append((outcome, seconds))

    def _collect(self) -> Tuple[List[float], Dict[str, int]]:
        with self._lock:
            window = list(self._window)
        latencies = [s for outcome, s in window if outcome in _SERVED]
        counts = {outcome: 0 for outcome in OUTCOMES}
        for outcome, _ in window:
            counts[outcome] += 1
        return latencies, counts

    def snapshot(self) -> Dict[str, Any]:
        """Live SLO state: percentiles, burn rate, shed ratio, verdicts.

        ``error_budget_burn`` is the observed error rate divided by the
        budgeted error rate (``1 - availability``): 1.0 means the budget
        is being consumed exactly as provisioned, >1.0 means it will be
        exhausted early.  With a zero budget any error reports a burn of
        ``window`` (a finite, JSON-safe stand-in for "infinite").
        """
        objective = self.objective
        latencies, counts = self._collect()
        total = sum(counts.values())
        answered = counts["ok"] + counts["degraded"] + counts["error"]
        p50 = percentile(latencies, 0.50)
        p99 = percentile(latencies, 0.99)
        error_rate = counts["error"] / answered if answered else 0.0
        shed_ratio = counts["rejected"] / total if total else 0.0
        budget = 1.0 - objective.availability
        if budget > 0.0:
            burn = error_rate / budget
        else:
            burn = float(total) if counts["error"] else 0.0
        verdicts = {
            "p50_ok": p50 <= objective.p50_seconds,
            "p99_ok": p99 <= objective.p99_seconds,
            "availability_ok": (1.0 - error_rate) >= objective.availability,
            "shed_ok": shed_ratio <= objective.max_shed_ratio,
        }
        return {
            "tier": objective.tier,
            "objective": {
                "p50_seconds": objective.p50_seconds,
                "p99_seconds": objective.p99_seconds,
                "availability": objective.availability,
                "max_shed_ratio": objective.max_shed_ratio,
            },
            "window_requests": total,
            "counts": counts,
            "p50_seconds": p50,
            "p99_seconds": p99,
            "error_rate": error_rate,
            "error_budget_burn": burn,
            "shed_ratio": shed_ratio,
            "verdicts": verdicts,
            "healthy": all(verdicts.values()),
        }

    def publish(self, registry: MetricsRegistry) -> Dict[str, Any]:
        """Publish the snapshot as gauges; returns the snapshot.

        Gauge values are computed before any registry call, so no lock is
        held while publishing (the registry takes its own).
        """
        snap = self.snapshot()
        registry.gauge("brs_slo_p50_seconds").set(snap["p50_seconds"])
        registry.gauge("brs_slo_p99_seconds").set(snap["p99_seconds"])
        registry.gauge("brs_slo_error_budget_burn").set(
            snap["error_budget_burn"]
        )
        registry.gauge("brs_slo_shed_ratio").set(snap["shed_ratio"])
        registry.gauge("brs_slo_window_requests").set(
            float(snap["window_requests"])
        )
        registry.gauge("brs_slo_healthy").set(1.0 if snap["healthy"] else 0.0)
        return snap


def objective_for(tier: Optional[str]) -> SLObjective:
    """Resolve a tier name to its objective (``interactive`` default)."""
    if tier and tier in DEFAULT_OBJECTIVES:
        return DEFAULT_OBJECTIVES[tier]
    return DEFAULT_OBJECTIVES["interactive"]
