"""An append-only, schema-versioned ledger of benchmark runs.

`benchmarks/run_all.py --json` already snapshots every experiment's
status, wall time, and metric counters — but each snapshot dies as a
loose JSON file, so nothing ever *compares* two runs and a 2x slowdown
ships silently.  The ledger fixes that:

* :class:`RunRecord` — one benchmark run: schema version, run id, epoch
  timestamp, git revision, host fingerprint, free-form label, and the
  per-experiment rows verbatim.
* :class:`Ledger` — a JSONL file of records.  Append-only, one record
  per line, torn-tail tolerant on read (same self-repair discipline as
  the ingest WAL and :func:`repro.obs.trace.read_trace`).
* :func:`compare` — a regression report between two records: wall-time
  ratios per experiment, regressions past a tolerance, status
  downgrades, and experiments that appeared or vanished.

The CLI front end is ``repro-brs obs record|report|compare``; CI's
``perf-ledger`` job appends a smoke-bench record on every push and
compares it (warn-only) against the committed baseline.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
import uuid
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Bump when the record shape changes; readers skip newer-schema records
#: with a warning instead of misparsing them.
LEDGER_SCHEMA_VERSION = 1

#: Ignore ratio noise on experiments faster than this: a 0.004s → 0.009s
#: "2.3x regression" is scheduler jitter, not a finding.
MIN_COMPARABLE_SECONDS = 0.05


def git_revision(cwd: Optional[str] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def host_fingerprint() -> Dict[str, Any]:
    """Enough host identity to judge whether two runs are comparable."""
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 0,
    }


@dataclass
class RunRecord:
    """One benchmark run, as appended to the ledger."""

    schema: int
    run_id: str
    created_epoch: float
    git_rev: str
    host: Dict[str, Any]
    label: str
    experiments: List[Dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        """The record as a JSON-ready dict."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from a parsed ledger line."""
        return cls(
            schema=data["schema"],
            run_id=data["run_id"],
            created_epoch=data["created_epoch"],
            git_rev=data.get("git_rev", "unknown"),
            host=data.get("host", {}),
            label=data.get("label", ""),
            experiments=data.get("experiments", []),
        )

    def experiment_map(self) -> Dict[str, Dict[str, Any]]:
        """Experiment rows keyed by experiment name."""
        return {
            row["experiment"]: row
            for row in self.experiments
            if "experiment" in row
        }


def record_from_status(
    rows: List[Dict[str, Any]],
    label: str = "",
    cwd: Optional[str] = None,
) -> RunRecord:
    """Build a :class:`RunRecord` from ``run_all.py --json`` status rows.

    Keeps each row's ``experiment``/``status``/``seconds``/``metrics``
    and drops the rest (error tracebacks do not belong in a ledger that
    is diffed across months).
    """
    kept = []
    for row in rows:
        if "experiment" not in row:
            continue
        kept.append(
            {
                "experiment": row["experiment"],
                "status": row.get("status", "unknown"),
                "seconds": row.get("seconds"),
                "metrics": row.get("metrics") or {},
            }
        )
    return RunRecord(
        schema=LEDGER_SCHEMA_VERSION,
        run_id=uuid.uuid4().hex[:16],
        created_epoch=time.time(),
        git_rev=git_revision(cwd),
        host=host_fingerprint(),
        label=label,
        experiments=kept,
    )


class Ledger:
    """A JSONL file of :class:`RunRecord` lines.

    Append-only: records are only ever added, never rewritten, so the
    file doubles as the project's performance history.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, record: RunRecord) -> None:
        """Append one record (fsync'd: a ledger line must survive)."""
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        line = json.dumps(record.to_json(), separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(line)
            stream.flush()
            os.fsync(stream.fileno())

    def read(self) -> List[RunRecord]:
        """All parseable records, oldest first.

        A torn final line is skipped with a warning (crash artifact, same
        policy as the ingest WAL); records with a *newer* schema than
        this reader understands are skipped with a warning rather than
        misread.  A missing file is an empty ledger.
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as stream:
            lines = [line.strip() for line in stream]
        nonempty = [(i, line) for i, line in enumerate(lines) if line]
        records: List[RunRecord] = []
        for position, (lineno, line) in enumerate(nonempty):
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                if position == len(nonempty) - 1:
                    warnings.warn(
                        f"{self.path}: skipping torn final ledger line "
                        f"{lineno + 1} ({exc})",
                        stacklevel=2,
                    )
                    break
                raise
            if data.get("schema", 0) > LEDGER_SCHEMA_VERSION:
                warnings.warn(
                    f"{self.path}:{lineno + 1}: skipping record with "
                    f"newer schema {data.get('schema')}",
                    stacklevel=2,
                )
                continue
            records.append(RunRecord.from_json(data))
        return records

    def latest(self, label: Optional[str] = None) -> Optional[RunRecord]:
        """The newest record, optionally restricted to one label."""
        for record in reversed(self.read()):
            if label is None or record.label == label:
                return record
        return None


@dataclass
class ExperimentDelta:
    """One experiment's baseline-vs-current comparison."""

    experiment: str
    baseline_seconds: Optional[float]
    current_seconds: Optional[float]
    ratio: Optional[float]
    baseline_status: str
    current_status: str
    regressed: bool
    status_worsened: bool


@dataclass
class RegressionReport:
    """The outcome of :func:`compare`: deltas plus roll-up verdicts."""

    tolerance: float
    deltas: List[ExperimentDelta]
    missing: List[str]
    new: List[str]

    @property
    def regressions(self) -> List[ExperimentDelta]:
        """Deltas that breached the tolerance or worsened in status."""
        return [d for d in self.deltas if d.regressed or d.status_worsened]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and nothing went missing."""
        return not self.regressions and not self.missing

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready view, for artifacts and the CLI ``--json`` path."""
        return {
            "tolerance": self.tolerance,
            "ok": self.ok,
            "deltas": [asdict(d) for d in self.deltas],
            "missing": self.missing,
            "new": self.new,
        }

    def render(self) -> str:
        """Human-readable report for the CLI and CI logs."""
        lines = [
            f"{'experiment':<16} {'base(s)':>9} {'cur(s)':>9} "
            f"{'ratio':>7}  verdict"
        ]
        for d in self.deltas:
            base = f"{d.baseline_seconds:.3f}" if d.baseline_seconds else "-"
            cur = f"{d.current_seconds:.3f}" if d.current_seconds else "-"
            ratio = f"{d.ratio:.2f}x" if d.ratio is not None else "-"
            if d.status_worsened:
                verdict = (
                    f"STATUS {d.baseline_status} -> {d.current_status}"
                )
            elif d.regressed:
                verdict = f"REGRESSED (> {1 + self.tolerance:.2f}x)"
            else:
                verdict = "ok"
            lines.append(
                f"{d.experiment:<16} {base:>9} {cur:>9} {ratio:>7}  {verdict}"
            )
        for name in self.missing:
            lines.append(f"{name:<16} {'':>9} {'':>9} {'':>7}  MISSING")
        for name in self.new:
            lines.append(f"{name:<16} {'':>9} {'':>9} {'':>7}  new")
        lines.append(
            f"result: {'ok' if self.ok else 'REGRESSIONS DETECTED'} "
            f"({len(self.regressions)} regression(s), "
            f"{len(self.missing)} missing)"
        )
        return "\n".join(lines)


_STATUS_RANK = {"ok": 0, "unknown": 1, "timeout": 2, "error": 3}


def compare(
    baseline: RunRecord,
    current: RunRecord,
    tolerance: float = 0.2,
) -> RegressionReport:
    """Compare two ledger records experiment-by-experiment.

    An experiment *regresses* when its wall time grows past
    ``(1 + tolerance) * baseline`` and the baseline was slow enough to
    measure (:data:`MIN_COMPARABLE_SECONDS`); a status downgrade (ok →
    timeout/error) is always a regression regardless of timing.
    """
    base_map = baseline.experiment_map()
    cur_map = current.experiment_map()
    deltas: List[ExperimentDelta] = []
    for name, base_row in base_map.items():
        cur_row = cur_map.get(name)
        if cur_row is None:
            continue
        base_s = base_row.get("seconds")
        cur_s = cur_row.get("seconds")
        ratio: Optional[float] = None
        regressed = False
        if isinstance(base_s, (int, float)) and isinstance(
            cur_s, (int, float)
        ) and base_s > 0:
            ratio = cur_s / base_s
            regressed = (
                base_s >= MIN_COMPARABLE_SECONDS
                and ratio > 1.0 + tolerance
            )
        base_status = base_row.get("status", "unknown")
        cur_status = cur_row.get("status", "unknown")
        worsened = _STATUS_RANK.get(cur_status, 3) > _STATUS_RANK.get(
            base_status, 1
        )
        deltas.append(
            ExperimentDelta(
                experiment=name,
                baseline_seconds=base_s,
                current_seconds=cur_s,
                ratio=ratio,
                baseline_status=base_status,
                current_status=cur_status,
                regressed=regressed,
                status_worsened=worsened,
            )
        )
    missing = sorted(set(base_map) - set(cur_map))
    new = sorted(set(cur_map) - set(base_map))
    return RegressionReport(
        tolerance=tolerance, deltas=deltas, missing=missing, new=new
    )
