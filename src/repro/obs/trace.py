"""Hierarchical spans and a low-overhead JSONL trace writer.

A trace is a flat stream of events, one JSON object per line:

* ``{"ev": "enter", "span": name, "id": i, "parent": p, "ts": t, ...}`` —
  a span opened (solver phase, slice scan, slab search, ladder rung).
* ``{"ev": "exit", "span": name, "id": i, "ts": t, "dur": d}`` — the span
  closed; ``dur`` is its wall-clock duration in seconds.
* ``{"ev": "event", "name": n, "parent": p, "ts": t, ...}`` — a point
  event with no duration (budget expiry, prune stop, fault injection).
* ``{"ev": "meta", ...}`` — one header line anchoring the monotonic
  timestamps to the epoch clock.

Timestamps come from ``time.perf_counter`` so they are monotonic and
nest exactly: a child span's ``[enter.ts, exit.ts]`` interval always lies
inside its parent's.  Extra keyword attributes on :meth:`Tracer.span` and
:meth:`Tracer.event` pass straight into the emitted object.

The disabled path matters more than the enabled one: the ambient tracer
defaults to :data:`NULL_TRACER`, whose ``span`` hands back one shared
reusable context manager and whose ``event`` is a bare no-op, so
instrumented hot loops cost one method call per span when tracing is off.
A tracer (like a trace file) is a single-writer object: share one per
thread, not across threads.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO, Union


class JsonlTraceWriter:
    """Append trace events to a file as JSON Lines.

    Args:
        target: a path to open (truncated) or an already-open text stream.
        flush_every: flush the underlying stream every this-many events;
            1 makes traces crash-durable, larger values are faster.
    """

    def __init__(self, target: Union[str, TextIO], flush_every: int = 64) -> None:
        if isinstance(target, str):
            self._stream: TextIO = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._flush_every = max(1, flush_every)
        self._pending = 0

    def write(self, event: Dict[str, Any]) -> None:
        """Serialize one event onto its own line."""
        self._stream.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._pending += 1
        if self._pending >= self._flush_every:
            self._stream.flush()
            self._pending = 0

    def close(self) -> None:
        """Flush and, if this writer opened the file, close it."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlTraceWriter":
        """Support ``with JsonlTraceWriter(path) as w``."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()


class _SpanHandle:
    """Context manager for one span; emits enter/exit events."""

    __slots__ = ("_tracer", "_name", "_attrs", "_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        self._id = tracer._next_id
        tracer._next_id += 1
        self._start = tracer._clock()
        event = {
            "ev": "enter",
            "span": self._name,
            "id": self._id,
            "parent": tracer._stack[-1] if tracer._stack else None,
            "ts": self._start,
        }
        if self._attrs:
            event.update(self._attrs)
        tracer._emit(event)
        tracer._stack.append(self._id)
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        tracer._stack.pop()
        now = tracer._clock()
        tracer._emit(
            {
                "ev": "exit",
                "span": self._name,
                "id": self._id,
                "ts": now,
                "dur": now - self._start,
            }
        )

    def annotate(self, **attrs: Any) -> None:
        """Emit a point event attached to this span (e.g. a result count)."""
        self._tracer.event(f"{self._name}.note", **attrs)


class _NullSpan:
    """The reusable do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """No-op."""
        return self

    def __exit__(self, *exc_info) -> None:
        """No-op."""

    def annotate(self, **attrs: Any) -> None:
        """Discard the annotation."""


#: Shared no-op span; every null-tracer span() call returns it.
NULL_SPAN = _NullSpan()


class Tracer:
    """Emits hierarchical span and point events to a sink.

    Args:
        sink: where events go — a :class:`JsonlTraceWriter`, anything with
            a ``write(dict)`` method, or a plain list (events are appended;
            handy for tests and in-memory inspection).
        clock: monotonic time source, injectable for tests.

    The tracer tracks the open-span stack itself, so spans must be entered
    and exited in LIFO order on a single thread — which the ``with``
    statement guarantees.
    """

    enabled = True

    def __init__(
        self,
        sink: Union[JsonlTraceWriter, List[Dict[str, Any]], Any],
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if isinstance(sink, list):
            self._emit = sink.append
        else:
            self._emit = sink.write
        self._clock = clock
        self._next_id = 0
        self._stack: List[int] = []
        self._emit(
            {
                "ev": "meta",
                "version": 1,
                "t0_epoch": time.time(),
                "t0_perf": clock(),
            }
        )

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """A context manager recording one span named ``name``.

        Extra keyword arguments become attributes on the enter event.
        """
        return _SpanHandle(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event parented to the innermost open span."""
        event = {
            "ev": "event",
            "name": name,
            "parent": self._stack[-1] if self._stack else None,
            "ts": self._clock(),
        }
        if attrs:
            event.update(attrs)
        self._emit(event)


class NullTracer(Tracer):
    """The disabled tracer: shared no-op span, no-op events, no sink."""

    enabled = False

    def __init__(self) -> None:
        self._stack = []

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        """Return the shared no-op span."""
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        """Discard the event."""


#: Process-wide disabled tracer; the ambient default.
NULL_TRACER = NullTracer()

#: Ambient tracer for the current dynamic scope (see :func:`trace_scope`).
_AMBIENT: ContextVar[Tracer] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def active_tracer() -> Tracer:
    """The tracer installed by the innermost :func:`trace_scope`.

    Returns :data:`NULL_TRACER` when tracing is off, so instrumented code
    can resolve once and call ``span``/``event`` unconditionally.
    """
    return _AMBIENT.get()


@contextmanager
def trace_scope(tracer: Optional[Tracer]) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the enclosed block.

    Same scoping rules as :func:`repro.obs.metrics.metrics_scope`: scopes
    nest, the innermost wins, ``None`` disables tracing for the block.
    """
    effective = tracer if tracer is not None else NULL_TRACER
    token = _AMBIENT.set(effective)
    try:
        yield effective
    finally:
        _AMBIENT.reset(token)


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def span_tree(events: List[Dict[str, Any]]) -> Dict[Optional[int], List[int]]:
    """Group span ids by parent id (``None`` for roots) from raw events.

    A convenience for trace consumers and tests; pairs with
    :func:`read_trace`.
    """
    children: Dict[Optional[int], List[int]] = {}
    for event in events:
        if event.get("ev") == "enter":
            children.setdefault(event.get("parent"), []).append(event["id"])
    return children
