"""Hierarchical spans and a low-overhead JSONL trace writer.

A trace is a flat stream of events, one JSON object per line:

* ``{"ev": "enter", "span": name, "id": i, "parent": p, "ts": t, ...}`` —
  a span opened (solver phase, slice scan, slab search, ladder rung).
* ``{"ev": "exit", "span": name, "id": i, "ts": t, "dur": d}`` — the span
  closed; ``dur`` is its wall-clock duration in seconds.
* ``{"ev": "event", "name": n, "parent": p, "ts": t, ...}`` — a point
  event with no duration (budget expiry, prune stop, fault injection).
* ``{"ev": "meta", ...}`` — one header line anchoring the monotonic
  timestamps to the epoch clock and naming the trace (``trace_id``).

Timestamps come from ``time.perf_counter`` so they are monotonic and
nest exactly: a child span's ``[enter.ts, exit.ts]`` interval always lies
inside its parent's.  Extra keyword attributes on :meth:`Tracer.span` and
:meth:`Tracer.event` pass straight into the emitted object.

The disabled path matters more than the enabled one: the ambient tracer
defaults to :data:`NULL_TRACER`, whose ``span`` hands back one shared
reusable context manager and whose ``event`` is a bare no-op, so
instrumented hot loops cost one method call per span when tracing is off.

Threading model: a :class:`Tracer` may be shared across threads (the
serving engine shares one between its HTTP handlers and worker pool).
Span ids are allocated under a lock, the open-span *stack* is per-thread,
and :class:`JsonlTraceWriter` serializes its writes — so spans opened on
different threads interleave safely in one file, each thread nesting its
own spans correctly.  Cross-thread (and cross-process) parent/child links
are expressed explicitly: pass ``parent_id=`` to :meth:`Tracer.span`, or
carry a :class:`TraceContext` across the boundary and stitch the far
side's buffered events back in with :meth:`Tracer.graft`.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Union,
)

#: Sentinel distinguishing "no parent override" from "explicitly a root".
_UNSET: Any = object()

#: HTTP header carrying a :class:`TraceContext` across a service hop.
TRACE_HEADER = "X-BRS-Trace"


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (process- and host-unique)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The picklable identity of "where am I in the trace?".

    Carried across process boundaries (the multiprocessing shard backend)
    and HTTP hops (the :data:`TRACE_HEADER` header), so spans recorded on
    the far side can be stitched under the span that dispatched them.

    Attributes:
        trace_id: id of the trace this context belongs to.
        parent_span_id: id of the span that was open when the context was
            captured; ``None`` when captured outside any span.
    """

    trace_id: str
    parent_span_id: Optional[int] = None

    def to_header(self) -> str:
        """Encode for the :data:`TRACE_HEADER` HTTP header."""
        if self.parent_span_id is None:
            return self.trace_id
        return f"{self.trace_id}:{self.parent_span_id}"

    @classmethod
    def from_header(cls, value: Optional[str]) -> Optional["TraceContext"]:
        """Decode a header value; malformed input yields ``None``.

        Propagation must never fail a request, so anything that does not
        look like ``trace_id[:parent_span_id]`` is silently dropped.
        """
        if not value or not isinstance(value, str):
            return None
        head, sep, tail = value.strip().partition(":")
        if not head or not head.replace("-", "").isalnum():
            return None
        if not sep:
            return cls(trace_id=head)
        try:
            return cls(trace_id=head, parent_span_id=int(tail))
        except ValueError:
            return None


class JsonlTraceWriter:
    """Append trace events to a file as JSON Lines.

    Writes are serialized by an internal lock so one writer can back a
    tracer shared across threads.

    Args:
        target: a path to open (truncated) or an already-open text stream.
        flush_every: flush the underlying stream every this-many events;
            1 makes traces crash-durable, larger values are faster.
    """

    def __init__(self, target: Union[str, TextIO], flush_every: int = 64) -> None:
        if isinstance(target, str):
            self._stream: TextIO = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._flush_every = max(1, flush_every)
        self._pending = 0
        self._lock = threading.Lock()

    def write(self, event: Dict[str, Any]) -> None:
        """Serialize one event onto its own line."""
        line = json.dumps(event, separators=(",", ":")) + "\n"
        with self._lock:
            self._stream.write(line)
            self._pending += 1
            if self._pending >= self._flush_every:
                self._stream.flush()
                self._pending = 0

    def close(self) -> None:
        """Flush and, if this writer opened the file, close it."""
        with self._lock:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "JsonlTraceWriter":
        """Support ``with JsonlTraceWriter(path) as w``."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()


class _SpanHandle:
    """Context manager for one span; emits enter/exit events."""

    __slots__ = ("_tracer", "_name", "_attrs", "_parent", "_id", "_start", "_stack")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        parent: Any = _UNSET,
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._parent = parent
        self._id: Optional[int] = None

    @property
    def span_id(self) -> Optional[int]:
        """The span's id once entered (``None`` before)."""
        return self._id

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        self._id = tracer._alloc_id()
        self._stack = tracer._thread_stack()
        self._start = tracer._clock()
        if self._parent is _UNSET:
            parent = self._stack[-1] if self._stack else None
        else:
            parent = self._parent
        event = {
            "ev": "enter",
            "span": self._name,
            "id": self._id,
            "parent": parent,
            "ts": self._start,
        }
        if self._attrs:
            event.update(self._attrs)
        tracer._emit(event)
        self._stack.append(self._id)
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        self._stack.pop()
        now = tracer._clock()
        tracer._emit(
            {
                "ev": "exit",
                "span": self._name,
                "id": self._id,
                "ts": now,
                "dur": now - self._start,
            }
        )

    def annotate(self, **attrs: Any) -> None:
        """Emit a point event attached to this span (e.g. a result count)."""
        self._tracer.event(f"{self._name}.note", **attrs)


class _NullSpan:
    """The reusable do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    #: Mirrors :attr:`_SpanHandle.span_id` for disabled call sites.
    span_id: Optional[int] = None

    def __enter__(self) -> "_NullSpan":
        """No-op."""
        return self

    def __exit__(self, *exc_info) -> None:
        """No-op."""

    def annotate(self, **attrs: Any) -> None:
        """Discard the annotation."""


#: Shared no-op span; every null-tracer span() call returns it.
NULL_SPAN = _NullSpan()


class Tracer:
    """Emits hierarchical span and point events to a sink.

    Args:
        sink: where events go — a :class:`JsonlTraceWriter`, anything with
            a ``write(dict)`` method, or a plain list (events are appended;
            handy for tests and in-memory inspection).
        clock: monotonic time source, injectable for tests.
        trace_id: stable id naming this trace (generated when omitted);
            carried by :class:`TraceContext` across hops and recorded in
            the meta header.

    The tracer may be shared across threads: ids are allocated under a
    lock and the open-span stack is per-thread, so each thread's spans
    nest correctly and ids never collide.  Within one thread, spans must
    still enter and exit in LIFO order — which ``with`` guarantees.
    """

    enabled = True

    def __init__(
        self,
        sink: Union[JsonlTraceWriter, List[Dict[str, Any]], Any],
        clock: Callable[[], float] = time.perf_counter,
        trace_id: Optional[str] = None,
    ) -> None:
        if isinstance(sink, list):
            self._emit = sink.append
        else:
            self._emit = sink.write
        self._clock = clock
        self._next_id = 0
        self._id_lock = threading.Lock()
        self._local = threading.local()
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.t0_epoch = time.time()
        self.t0_perf = clock()
        self._emit(
            {
                "ev": "meta",
                "version": 1,
                "trace_id": self.trace_id,
                "t0_epoch": self.t0_epoch,
                "t0_perf": self.t0_perf,
            }
        )

    # -- internals shared with _SpanHandle -------------------------------

    def _alloc_id(self) -> int:
        with self._id_lock:
            span_id = self._next_id
            self._next_id = span_id + 1
            return span_id

    def _alloc_ids(self, count: int) -> int:
        """Reserve ``count`` consecutive ids; returns the first."""
        with self._id_lock:
            first = self._next_id
            self._next_id = first + count
            return first

    def _thread_stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- public API ------------------------------------------------------

    def span(self, name: str, parent_id: Any = _UNSET, **attrs: Any) -> _SpanHandle:
        """A context manager recording one span named ``name``.

        Extra keyword arguments become attributes on the enter event.
        ``parent_id`` overrides the ambient (same-thread) parent — the
        cross-thread/cross-hop linkage used by the serving layer; pass
        ``None`` to force a root span.
        """
        return _SpanHandle(self, name, attrs, parent=parent_id)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event parented to the innermost open span."""
        stack = self._thread_stack()
        event = {
            "ev": "event",
            "name": name,
            "parent": stack[-1] if stack else None,
            "ts": self._clock(),
        }
        if attrs:
            event.update(attrs)
        self._emit(event)

    def context(self) -> TraceContext:
        """The current :class:`TraceContext` (trace id + open span)."""
        stack = self._thread_stack()
        return TraceContext(
            trace_id=self.trace_id,
            parent_span_id=stack[-1] if stack else None,
        )

    def graft(
        self,
        events: Sequence[Dict[str, Any]],
        span_name: str,
        parent_id: Any = _UNSET,
        **attrs: Any,
    ) -> Optional[int]:
        """Stitch a remotely-recorded event buffer under one local span.

        ``events`` is another tracer's raw output (typically buffered in a
        worker process and shipped back with its result).  The remote
        events are re-identified into this tracer's id space, re-parented
        so their roots hang off a freshly-emitted wrapper span named
        ``span_name``, and their timestamps are rebased onto this tracer's
        clock via the epoch anchor both meta headers carry — so the merged
        file reads as ONE trace in which the remote work nests under the
        span that dispatched it.

        Returns the wrapper span's id, or ``None`` when ``events`` held no
        spans (the wrapper is still emitted, as an instantaneous span).
        """
        spans = [e for e in events if e.get("ev") in ("enter", "exit")]
        points = [e for e in events if e.get("ev") == "event"]
        meta = next((e for e in events if e.get("ev") == "meta"), None)

        # Rebase remote perf-counter timestamps onto this tracer's clock:
        # both meta headers anchor perf time to the epoch clock, and the
        # epoch clock is shared across processes on one host.
        now = self._clock()
        if meta is not None and "t0_epoch" in meta and "t0_perf" in meta:
            shift = (meta["t0_epoch"] - meta["t0_perf"]) - (
                self.t0_epoch - self.t0_perf
            )
        elif spans:
            # No anchor: pin the remote end time to "now".
            shift = now - max(e["ts"] for e in spans)
        else:
            shift = 0.0

        id_map: Dict[int, int] = {}
        remote_ids = sorted({e["id"] for e in spans if "id" in e})
        if remote_ids:
            first = self._alloc_ids(len(remote_ids) + 1)
        else:
            first = self._alloc_ids(1)
        wrapper_id = first
        for offset, remote in enumerate(remote_ids, start=1):
            id_map[remote] = first + offset

        if spans:
            start = min(e["ts"] for e in spans) + shift
            end = max(e["ts"] for e in spans) + shift
        else:
            start = end = now

        stack = self._thread_stack()
        if parent_id is _UNSET:
            parent: Optional[int] = stack[-1] if stack else None
        else:
            parent = parent_id
        enter: Dict[str, Any] = {
            "ev": "enter",
            "span": span_name,
            "id": wrapper_id,
            "parent": parent,
            "ts": start,
        }
        if attrs:
            enter.update(attrs)
        self._emit(enter)
        for event in spans + points:
            remapped = dict(event)
            if "id" in remapped:
                remapped["id"] = id_map[remapped["id"]]
            remote_parent = remapped.get("parent")
            if event.get("ev") in ("enter", "event"):
                remapped["parent"] = id_map.get(remote_parent, wrapper_id)
            remapped["ts"] = remapped["ts"] + shift
            self._emit(remapped)
        self._emit(
            {
                "ev": "exit",
                "span": span_name,
                "id": wrapper_id,
                "ts": end,
                "dur": end - start,
            }
        )
        return wrapper_id if spans else None


class NullTracer(Tracer):
    """The disabled tracer: shared no-op span, no-op events, no sink."""

    enabled = False

    def __init__(self) -> None:
        self.trace_id = ""

    def span(self, name: str, parent_id: Any = _UNSET, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        """Return the shared no-op span."""
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        """Discard the event."""

    def context(self) -> TraceContext:
        """An empty context (no trace in progress)."""
        return TraceContext(trace_id="")

    def graft(
        self,
        events: Sequence[Dict[str, Any]],
        span_name: str,
        parent_id: Any = _UNSET,
        **attrs: Any,
    ) -> Optional[int]:
        """Discard the remote events."""
        return None


#: Process-wide disabled tracer; the ambient default.
NULL_TRACER = NullTracer()

#: Ambient tracer for the current dynamic scope (see :func:`trace_scope`).
_AMBIENT: ContextVar[Tracer] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def active_tracer() -> Tracer:
    """The tracer installed by the innermost :func:`trace_scope`.

    Returns :data:`NULL_TRACER` when tracing is off, so instrumented code
    can resolve once and call ``span``/``event`` unconditionally.
    """
    return _AMBIENT.get()


@contextmanager
def trace_scope(tracer: Optional[Tracer]) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the enclosed block.

    Same scoping rules as :func:`repro.obs.metrics.metrics_scope`: scopes
    nest, the innermost wins, ``None`` disables tracing for the block.
    """
    effective = tracer if tracer is not None else NULL_TRACER
    token = _AMBIENT.set(effective)
    try:
        yield effective
    finally:
        _AMBIENT.reset(token)


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into a list of event dicts.

    A torn *final* line — the signature of a crashed or SIGKILLed writer
    that died mid-record — is skipped with a :class:`UserWarning` instead
    of raising, mirroring the ingest WAL's torn-tail self-repair, so the
    rest of the trace stays analyzable.  Damage anywhere *before* the
    tail still raises: that is corruption, not a crash artifact.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as stream:
        lines = [line.strip() for line in stream]
    nonempty = [(i, line) for i, line in enumerate(lines) if line]
    for position, (lineno, line) in enumerate(nonempty):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if position == len(nonempty) - 1:
                warnings.warn(
                    f"{path}: skipping torn final trace line {lineno + 1} "
                    f"({exc})",
                    stacklevel=2,
                )
                break
            raise
    return events


def span_tree(events: List[Dict[str, Any]]) -> Dict[Optional[int], List[int]]:
    """Group span ids by parent id (``None`` for roots) from raw events.

    A convenience for trace consumers and tests; pairs with
    :func:`read_trace`.
    """
    children: Dict[Optional[int], List[int]] = {}
    for event in events:
        if event.get("ev") == "enter":
            children.setdefault(event.get("parent"), []).append(event["id"])
    return children
