"""Trace analysis: roll a span tree up into per-phase time attribution.

A raw trace answers "what happened, when".  :func:`span_breakdown`
answers the question ROADMAP's performance items actually ask: *where did
the time go* — per span name (how much of the solve was ScanSlab vs the
OE sweep) and per category (I/O vs compute vs coordination), with
self-time separated from child time so a parent that merely dispatches
work does not double-count its children.

Categories are declared at instrumentation time by putting a
``category="io"`` (or ``"compute"``, …) attribute on the span; spans
without one inherit the nearest categorized ancestor's, and fall back to
``"other"``.  This keeps the analyzer generic: the out-of-core tier can
tag its read spans ``io`` without the analyzer learning any span names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class SpanNode:
    """One reconstructed span: identity, timing, attributes, children."""

    span_id: int
    name: str
    parent: Optional[int]
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall seconds, 0.0 while the span is still open (missing exit)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Duration minus time covered by direct children (clamped at 0)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))


_RESERVED_ENTER_KEYS = frozenset({"ev", "span", "id", "parent", "ts"})


def build_spans(events: List[Dict[str, Any]]) -> List[SpanNode]:
    """Reconstruct the span forest from raw trace events.

    Tolerates missing exits (a crashed writer): such spans stay open with
    ``end=None`` and contribute zero duration.  Returns the root spans
    (parent ``None`` or pointing at an id the trace never opened).
    """
    nodes: Dict[int, SpanNode] = {}
    roots: List[SpanNode] = []
    for event in events:
        ev = event.get("ev")
        if ev == "enter":
            node = SpanNode(
                span_id=event["id"],
                name=event["span"],
                parent=event.get("parent"),
                start=event["ts"],
                attrs={
                    k: v
                    for k, v in event.items()
                    if k not in _RESERVED_ENTER_KEYS
                },
            )
            nodes[node.span_id] = node
        elif ev == "exit":
            node = nodes.get(event["id"])
            if node is not None:
                node.end = event["ts"]
    for node in nodes.values():
        parent = nodes.get(node.parent) if node.parent is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def _category(node: SpanNode, inherited: str) -> str:
    category = node.attrs.get("category")
    if isinstance(category, str) and category:
        return category
    return inherited


def span_breakdown(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-phase and per-category time attribution for one trace.

    Returns::

        {
          "total_seconds": ...,        # sum of root span durations
          "span_count": ...,
          "phases": {name: {"count", "total_seconds", "self_seconds",
                            "max_seconds"}},
          "categories": {category: self_seconds},  # partitions total
        }

    ``phases[name].total_seconds`` can exceed ``total_seconds`` (a parent
    and its children both count their full duration); ``self_seconds``
    and ``categories`` are the partition — they sum to the root total up
    to clock granularity.
    """
    roots = build_spans(events)
    phases: Dict[str, Dict[str, float]] = {}
    categories: Dict[str, float] = {}
    span_count = 0

    stack: List[tuple] = [(node, "other") for node in roots]
    while stack:
        node, inherited = stack.pop()
        span_count += 1
        category = _category(node, inherited)
        row = phases.setdefault(
            node.name,
            {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0,
             "max_seconds": 0.0},
        )
        row["count"] += 1
        row["total_seconds"] += node.duration
        row["self_seconds"] += node.self_seconds
        row["max_seconds"] = max(row["max_seconds"], node.duration)
        categories[category] = categories.get(category, 0.0) + node.self_seconds
        for child in node.children:
            stack.append((child, category))

    return {
        "total_seconds": sum(node.duration for node in roots),
        "span_count": span_count,
        "phases": phases,
        "categories": categories,
    }


def render_breakdown(breakdown: Dict[str, Any]) -> str:
    """Human-readable table for ``repro-brs obs breakdown``."""
    lines = [
        f"total {breakdown['total_seconds']:.4f}s "
        f"across {breakdown['span_count']} spans",
        "",
        f"{'phase':<28} {'count':>6} {'total(s)':>10} "
        f"{'self(s)':>10} {'max(s)':>10}",
    ]
    rows = sorted(
        breakdown["phases"].items(),
        key=lambda kv: kv[1]["self_seconds"],
        reverse=True,
    )
    for name, row in rows:
        lines.append(
            f"{name:<28} {row['count']:>6d} {row['total_seconds']:>10.4f} "
            f"{row['self_seconds']:>10.4f} {row['max_seconds']:>10.4f}"
        )
    lines.append("")
    for category, seconds in sorted(
        breakdown["categories"].items(), key=lambda kv: kv[1], reverse=True
    ):
        lines.append(f"category {category:<12} {seconds:.4f}s")
    return "\n".join(lines)
