"""Process-wide metrics: counters, gauges, and histograms.

The solvers explain their own performance through work counters (the
paper's #MS / #MSP / #DRP of Section 6.3); this module gives those counters
a process-wide home so benchmarks, the CLI, and long-running sessions can
read them without threading a stats object through every call.

Design rules, in order of importance:

1. **Near-zero overhead when disabled.**  The ambient registry defaults to
   :data:`NULL_REGISTRY`, whose metric handles are shared no-op singletons.
   Instrumented code resolves the ambient registry *once per solve or
   sweep* (one ``ContextVar`` read) and publishes counters in batches, so
   a run without observability pays a handful of no-op calls, not one per
   candidate region.
2. **Mirrors the budget machinery.**  :func:`metrics_scope` installs a
   registry for a dynamic scope exactly like
   :func:`repro.runtime.budget.budget_scope` installs a budget; the
   innermost scope wins and solvers pick it up ambiently.
3. **Prometheus-compatible names.**  Metric names use ``snake_case`` with
   unit suffixes (``_total``, ``_seconds``) so the text exposition in
   :mod:`repro.obs.export` needs no mangling.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, tuned for solver latencies
#: (sub-millisecond sweeps up to multi-second exact solves).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0
)


class Counter:
    """A monotonically increasing count (e.g. slabs searched)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter.

        Raises:
            ValueError: on a negative amount — counters only go up.
        """
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        """Current accumulated count."""
        return self._value


class Gauge:
    """A value that can go up and down (e.g. current cover size)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self._value += amount

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value


class Histogram:
    """A distribution over fixed buckets (e.g. per-solve wall seconds).

    Buckets are cumulative upper bounds in the Prometheus style; an
    implicit ``+Inf`` bucket catches everything above the largest bound.
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1


class NullMetric:
    """Shared no-op handle returned by the null registry.

    Quacks like :class:`Counter`, :class:`Gauge`, and :class:`Histogram`
    at once so disabled call sites need no type dispatch.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def set(self, value: float) -> None:
        """Discard the value."""

    def observe(self, value: float) -> None:
        """Discard the observation."""

    @property
    def value(self) -> float:
        """Always zero."""
        return 0.0


#: The one no-op metric handle; every null-registry lookup returns it.
NULL_METRIC = NullMetric()


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Lookups are get-or-create and idempotent: asking twice for the same
    name returns the same object, so call sites never coordinate.  A name
    registered as one kind cannot be re-registered as another.

    Thread-safe for registration; individual metric updates are plain
    attribute arithmetic (the GIL makes them atomic enough for counters,
    and the solvers are single-threaded per query).
    """

    #: Instrumented code may check this to skip building expensive labels.
    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric
        with self._lock:
            metric = self._metrics.setdefault(name, kind(name, **kwargs))
        if not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Return the counter called ``name``, creating it on first use."""
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Return the gauge called ``name``, creating it on first use."""
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Return the histogram called ``name``, creating it on first use."""
        return self._get_or_create(name, Histogram, help=help, buckets=buckets)

    def metrics(self) -> Dict[str, object]:
        """All registered metrics by name (insertion-ordered)."""
        return dict(self._metrics)

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-serializable view of every metric's current state.

        Counters and gauges appear as ``{"type", "value"}``; histograms as
        ``{"type", "sum", "count", "buckets"}`` where ``buckets`` maps the
        upper bound (``"+Inf"`` for the overflow bucket) to its count.
        """
        out: Dict[str, dict] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            elif isinstance(metric, Histogram):
                buckets = {
                    str(bound): count
                    for bound, count in zip(metric.buckets, metric.bucket_counts)
                }
                buckets["+Inf"] = metric.bucket_counts[-1]
                out[name] = {
                    "type": "histogram",
                    "sum": metric.sum,
                    "count": metric.count,
                    "buckets": buckets,
                }
        return out

    def reset(self) -> None:
        """Drop every registered metric (tests and per-run scopes)."""
        with self._lock:
            self._metrics.clear()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every lookup returns :data:`NULL_METRIC`.

    Installed as the ambient default so uninstrumented processes pay one
    ``ContextVar`` read plus a no-op method call per *batch* of updates.
    """

    enabled = False

    def counter(self, name: str, help: str = "") -> NullMetric:  # type: ignore[override]
        """Return the shared no-op metric."""
        return NULL_METRIC

    def gauge(self, name: str, help: str = "") -> NullMetric:  # type: ignore[override]
        """Return the shared no-op metric."""
        return NULL_METRIC

    def histogram(  # type: ignore[override]
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> NullMetric:
        """Return the shared no-op metric."""
        return NULL_METRIC

    def snapshot(self) -> Dict[str, dict]:
        """Always empty."""
        return {}


#: Process-wide disabled registry; the ambient default.
NULL_REGISTRY = NullRegistry()

#: Ambient registry for the current dynamic scope (see :func:`metrics_scope`).
_AMBIENT: ContextVar[MetricsRegistry] = ContextVar(
    "repro_obs_registry", default=NULL_REGISTRY
)


def active_registry() -> MetricsRegistry:
    """The registry installed by the innermost :func:`metrics_scope`.

    Returns :data:`NULL_REGISTRY` when no scope is active, so callers can
    unconditionally publish and rely on the no-op fast path.
    """
    return _AMBIENT.get()


@contextmanager
def metrics_scope(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient registry for the enclosed block.

    Mirrors :func:`repro.runtime.budget.budget_scope`: scopes nest, the
    innermost wins, and passing ``None`` disables collection for the block
    (useful to exempt a sub-step from a surrounding scope).
    """
    effective = registry if registry is not None else NULL_REGISTRY
    token = _AMBIENT.set(effective)
    try:
        yield effective
    finally:
        _AMBIENT.reset(token)


def histogram_quantile(hist: Histogram, q: float) -> float:
    """Estimate the ``q``-quantile (0..1) of a histogram's observations.

    Uses the Prometheus convention: find the bucket the target rank falls
    in and interpolate linearly inside it.  The overflow bucket has no
    upper bound, so ranks landing there return the largest finite bound —
    a conservative (low) estimate.  Returns ``0.0`` for an empty histogram.

    The serving layer uses this for its ``/v1/stats`` latency summary; the
    benchmark suite prefers exact quantiles over raw samples when it has
    them and falls back to this for scraped registries.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if hist.count == 0:
        return 0.0
    target = q * hist.count
    cumulative = 0
    lower = 0.0
    for bound, count in zip(hist.buckets, hist.bucket_counts):
        if cumulative + count >= target and count > 0:
            fraction = (target - cumulative) / count
            return lower + (bound - lower) * min(1.0, max(0.0, fraction))
        cumulative += count
        lower = bound
    return hist.buckets[-1] if hist.buckets else 0.0


def counter_delta(
    before: Dict[str, dict], after: Dict[str, dict]
) -> Dict[str, float]:
    """Counter increments between two :meth:`MetricsRegistry.snapshot` calls.

    Used for per-query attribution (e.g. one
    :class:`~repro.core.session.ExplorationSession` query) against a
    registry that lives for the whole process.  Gauges and histograms are
    ignored; only counters are meaningfully differenced.
    """
    deltas: Dict[str, float] = {}
    for name, entry in after.items():
        if entry.get("type") != "counter":
            continue
        prev = before.get(name, {}).get("value", 0.0)
        diff = entry["value"] - prev
        if diff:
            deltas[name] = diff
    return deltas
