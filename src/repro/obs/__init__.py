"""repro.obs — observability for the BRS solver stack.

Three cooperating layers, all ambient-scoped like
:func:`repro.runtime.budget.budget_scope` and all free when unused:

* **Metrics** (:mod:`repro.obs.metrics`) — a process-wide registry of
  counters, gauges, and histograms.  Solvers publish the paper's work
  counters (#MS, #MSP, #DRP) and per-phase timings into whatever registry
  :func:`metrics_scope` installed; without a scope they publish into a
  shared no-op registry.
* **Tracing** (:mod:`repro.obs.trace`) — hierarchical spans with a JSONL
  writer.  One event per span enter/exit and per notable point event
  (prune stop, budget expiry, degradation-ladder rung, fault injection),
  so a recorded SliceBRS run replays its slice → slab → SearchMR phase
  sequence with nested timestamps.
* **Exporters** (:mod:`repro.obs.export`) — Prometheus text exposition
  and JSON snapshots; :mod:`repro.obs.profile` adds an opt-in cProfile
  scope and :mod:`repro.obs.bench` measures the disabled-mode overhead
  the whole design is built around.

Typical use::

    from repro.obs import MetricsRegistry, Tracer, JsonlTraceWriter
    from repro.obs import metrics_scope, trace_scope

    registry = MetricsRegistry()
    with JsonlTraceWriter("run.jsonl") as writer:
        with metrics_scope(registry), trace_scope(Tracer(writer)):
            result = best_region(points, f, a=10, b=10)
    print(registry.snapshot()["brs_candidates_total"])
"""

from repro.obs.bench import OVERHEAD_BUDGET, measure_disabled_overhead, null_op_cost
from repro.obs.export import to_prometheus_text, write_metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    active_registry,
    counter_delta,
    histogram_quantile,
    metrics_scope,
)
from repro.obs.profile import profile_scope
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    JsonlTraceWriter,
    NullTracer,
    Tracer,
    active_tracer,
    read_trace,
    span_tree,
    trace_scope,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "OVERHEAD_BUDGET",
    "Tracer",
    "active_registry",
    "active_tracer",
    "counter_delta",
    "histogram_quantile",
    "measure_disabled_overhead",
    "metrics_scope",
    "null_op_cost",
    "profile_scope",
    "read_trace",
    "span_tree",
    "to_prometheus_text",
    "trace_scope",
    "write_metrics",
]
