"""repro.obs — observability for the BRS solver stack.

Three cooperating layers, all ambient-scoped like
:func:`repro.runtime.budget.budget_scope` and all free when unused:

* **Metrics** (:mod:`repro.obs.metrics`) — a process-wide registry of
  counters, gauges, and histograms.  Solvers publish the paper's work
  counters (#MS, #MSP, #DRP) and per-phase timings into whatever registry
  :func:`metrics_scope` installed; without a scope they publish into a
  shared no-op registry.
* **Tracing** (:mod:`repro.obs.trace`) — hierarchical spans with a JSONL
  writer.  One event per span enter/exit and per notable point event
  (prune stop, budget expiry, degradation-ladder rung, fault injection),
  so a recorded SliceBRS run replays its slice → slab → SearchMR phase
  sequence with nested timestamps.
* **Exporters** (:mod:`repro.obs.export`) — Prometheus text exposition
  and JSON snapshots; :mod:`repro.obs.profile` adds an opt-in cProfile
  scope and :mod:`repro.obs.bench` measures the disabled-mode overhead
  the whole design is built around.

Typical use::

    from repro.obs import MetricsRegistry, Tracer, JsonlTraceWriter
    from repro.obs import metrics_scope, trace_scope

    registry = MetricsRegistry()
    with JsonlTraceWriter("run.jsonl") as writer:
        with metrics_scope(registry), trace_scope(Tracer(writer)):
            result = best_region(points, f, a=10, b=10)
    print(registry.snapshot()["brs_candidates_total"])
"""

from repro.obs.analyze import (
    SpanNode,
    build_spans,
    render_breakdown,
    span_breakdown,
)
from repro.obs.bench import OVERHEAD_BUDGET, measure_disabled_overhead, null_op_cost
from repro.obs.export import to_prometheus_text, write_metrics
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    ExperimentDelta,
    Ledger,
    RegressionReport,
    RunRecord,
    compare,
    record_from_status,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    active_registry,
    counter_delta,
    histogram_quantile,
    metrics_scope,
)
from repro.obs.profile import profile_scope
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLObjective,
    SLOTracker,
    objective_for,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_HEADER,
    JsonlTraceWriter,
    NullTracer,
    TraceContext,
    Tracer,
    active_tracer,
    new_trace_id,
    read_trace,
    span_tree,
    trace_scope,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_OBJECTIVES",
    "ExperimentDelta",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "OVERHEAD_BUDGET",
    "RegressionReport",
    "RunRecord",
    "SLOTracker",
    "SLObjective",
    "SpanNode",
    "TRACE_HEADER",
    "TraceContext",
    "Tracer",
    "active_registry",
    "active_tracer",
    "build_spans",
    "compare",
    "counter_delta",
    "histogram_quantile",
    "measure_disabled_overhead",
    "metrics_scope",
    "new_trace_id",
    "null_op_cost",
    "objective_for",
    "profile_scope",
    "read_trace",
    "record_from_status",
    "render_breakdown",
    "span_breakdown",
    "span_tree",
    "to_prometheus_text",
    "trace_scope",
    "write_metrics",
]
