"""Micro-benchmark: what does instrumentation cost when it is *off*?

The observability layer promises near-zero overhead when disabled, and a
promise without a measurement rots.  This module measures it in two parts:

1. **Primitive cost** — time the exact disabled-path operations the
   solvers execute (resolve the ambient null tracer/registry, enter and
   exit a null span, bump a null counter) in a tight loop, against an
   empty-loop baseline (:func:`null_op_cost`).
2. **Site census** — run the same SliceBRS solve once with a *real*
   registry and an in-memory tracer, and count how many spans, point
   events, and metrics the instrumentation actually touches.

The estimated disabled overhead is (generously, every span counted twice
and every metric eight times) ``sites x primitive cost`` over the
measured disabled-mode solve time.  The CI gate asserts the resulting
fraction stays under the 5% budget; in practice it sits around 0.1%.
"""

from __future__ import annotations

import random
import time
from typing import Dict

from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    metrics_scope,
)
from repro.obs.trace import NULL_TRACER, Tracer, trace_scope

#: The acceptance threshold for disabled-instrumentation overhead.
OVERHEAD_BUDGET = 0.05


def make_instance(n_objects: int = 250, n_tags: int = 40, seed: int = 0):
    """A reproducible SliceBRS micro-benchmark instance.

    Returns:
        ``(points, f, a, b)`` — uniform points in a 100x100 space with
        random tag sets under a coverage score, and a 10x10 query.
    """
    from repro.functions.coverage import CoverageFunction
    from repro.geometry.point import Point

    rng = random.Random(seed)
    points = [
        Point(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n_objects)
    ]
    tags = [
        {f"t{rng.randrange(n_tags)}" for _ in range(rng.randint(1, 4))}
        for _ in range(n_objects)
    ]
    return points, CoverageFunction(tags), 10.0, 10.0


def null_op_cost(iters: int = 100_000) -> float:
    """Per-iteration cost of the disabled instrumentation primitives.

    One iteration performs a strict superset of what one disabled span
    with one counter update costs in solver code: enter/exit a null span
    and bump a null counter, on pre-resolved handles.  The empty-loop
    baseline is subtracted so only the instrumentation itself is billed.
    """
    tracer = NULL_TRACER
    registry = NULL_REGISTRY
    start = time.perf_counter()
    for _ in range(iters):
        with tracer.span("x"):
            # Throwaway name: this micro-benchmark only times registry
            # overhead, so the metric is never exported.
            registry.counter("y").inc()  # brs: noqa[BRS008]
    instrumented = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iters):
        pass
    baseline = time.perf_counter() - start
    return max(0.0, instrumented - baseline) / iters


def measure_disabled_overhead(
    n_objects: int = 250, seed: int = 0, repeats: int = 3
) -> Dict[str, float]:
    """Estimate the disabled-instrumentation overhead of a SliceBRS solve.

    Returns a dict with:
        ``solve_seconds``: best-of-``repeats`` disabled-mode solve time.
        ``spans`` / ``events`` / ``metrics``: instrumentation site census
        from one fully-enabled run of the identical solve.
        ``ops``: billed primitive executions (deliberately over-counted).
        ``per_op_seconds``: measured disabled primitive cost.
        ``overhead_fraction``: estimated disabled overhead as a fraction
        of solve time — the number the <5% acceptance gate checks.
    """
    from repro.core.slicebrs import SliceBRS

    points, f, a, b = make_instance(n_objects=n_objects, seed=seed)
    solver = SliceBRS()

    solve_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        solver.solve(points, f, a, b)
        solve_seconds = min(solve_seconds, time.perf_counter() - start)

    sink: list = []
    registry = MetricsRegistry()
    with metrics_scope(registry), trace_scope(Tracer(sink)):
        solver.solve(points, f, a, b)
    n_spans = sum(1 for event in sink if event.get("ev") == "enter")
    n_events = sum(1 for event in sink if event.get("ev") == "event")
    n_metrics = len(registry.metrics())

    # Bill two primitives per span (enter pair + exit pair), one per point
    # event, eight per metric (far more updates than any solve performs),
    # plus a flat allowance for ambient-scope resolutions.
    ops = 2 * n_spans + n_events + 8 * n_metrics + 16
    per_op = null_op_cost()
    overhead = ops * per_op
    return {
        "solve_seconds": solve_seconds,
        "spans": float(n_spans),
        "events": float(n_events),
        "metrics": float(n_metrics),
        "ops": float(ops),
        "per_op_seconds": per_op,
        "overhead_fraction": overhead / solve_seconds if solve_seconds else 0.0,
    }
