"""BRS on road networks (the paper's second future-work item, Section 7).

In the network setting a "region" is not a rectangle but a ball under
shortest-path distance: the best network region of radius ``r`` is the
node whose radius-``r`` neighbourhood maximizes the submodular monotone
score of the objects inside.  This subpackage provides the substrate (an
undirected weighted graph with cutoff Dijkstra) and an exact solver with a
submodularity-based pruning rule in the spirit of the planar algorithm's
maximal-slab bounds.
"""

from repro.network.graph import RoadNetwork
from repro.network.brs import NetworkRegionResult, best_network_region

__all__ = ["NetworkRegionResult", "RoadNetwork", "best_network_region"]
