"""Best network region search.

Problem: given objects attached to road-network nodes, a submodular
monotone ``f``, and a radius ``r``, find the center node whose open
radius-``r`` network ball maximizes ``f`` of the enclosed objects.
Restricting centers to nodes is the standard discretization — between
junctions the reachable set only shrinks relative to the better endpoint.

The solver mirrors the planar algorithm's bound-then-search structure:

1. pick *landmarks* greedily so that every node lies within ``r`` of some
   landmark (a network c-cover with c = 1);
2. for each landmark ``L``, the ball ``B(L, 2r)`` contains the ball of
   every node assigned to ``L`` (triangle inequality), so — by
   submodularity/monotonicity — ``f(B(L, 2r))`` upper-bounds every
   assigned center, exactly as Lemma 7 bounds a slab's points;
3. process landmark groups best-first, evaluating member centers only
   while the group bound beats the incumbent (the paper's stopping rule).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.stats import SearchStats
from repro.functions.base import SetFunction
from repro.network.graph import RoadNetwork


@dataclass
class NetworkRegionResult:
    """The best network region found.

    Attributes:
        center: the chosen node.
        score: ``f`` of the objects inside the ball.
        node_distances: network distance of every node in the ball.
        object_ids: the enclosed objects.
        stats: counters (``n_slabs`` = landmark groups, ``n_slabs_searched``
            = groups expanded, ``n_candidates`` = centers evaluated).
    """

    center: int
    score: float
    node_distances: Dict[int, float]
    object_ids: List[int]
    stats: SearchStats = field(default_factory=SearchStats)


def best_network_region(
    network: RoadNetwork,
    node_of_object: Sequence[int],
    f: SetFunction,
    radius: float,
    prune: bool = True,
) -> NetworkRegionResult:
    """Find the node whose radius-``radius`` ball maximizes ``f``.

    Args:
        network: the road network.
        node_of_object: ``node_of_object[i]`` is the node object ``i``
            sits on (multiple objects per node allowed).
        f: submodular monotone score over object ids.
        radius: network-ball radius (open boundary).
        prune: disable to force the exhaustive per-node scan (the
            correctness baseline the tests compare against).

    Raises:
        ValueError: on an empty instance, a bad node id, or a
            non-positive radius.
    """
    if not node_of_object:
        raise ValueError("need at least one object")
    for obj_id, node in enumerate(node_of_object):
        if not 0 <= node < network.n_nodes:
            raise ValueError(f"object {obj_id} on unknown node {node}")
    if radius <= 0:
        raise ValueError("radius must be positive")

    objects_at: Dict[int, List[int]] = {}
    for obj_id, node in enumerate(node_of_object):
        objects_at.setdefault(node, []).append(obj_id)

    def ball_objects(dist: Dict[int, float]) -> List[int]:
        ids: List[int] = []
        for node in dist:
            ids.extend(objects_at.get(node, ()))
        return ids

    stats = SearchStats(n_objects=len(node_of_object))
    # Only nodes carrying at least one object within reach can matter as
    # centers?  No — a center without objects can still cover others; but a
    # center whose ball contains no object scores 0, so candidate centers
    # are the nodes within < radius of some object node.  Collect them via
    # reverse balls from object nodes (the graph is undirected, so forward
    # balls serve).
    candidate_set: set = set()
    for node in objects_at:
        candidate_set.update(network.ball(node, radius))
    candidates = sorted(candidate_set)

    best_score = 0.0
    best_center = node_of_object[0]
    best_dist: Dict[int, float] = network.ball(best_center, radius)

    if not prune:
        for node in candidates:
            dist = network.ball(node, radius)
            stats.n_candidates += 1
            score = f.value(ball_objects(dist))
            if score > best_score:
                best_score, best_center, best_dist = score, node, dist
    else:
        # Greedy landmark cover: repeatedly take an uncovered candidate,
        # claim everything within < radius of it.
        uncovered = set(candidates)
        groups: List[tuple] = []  # (upper bound, landmark, members)
        while uncovered:
            landmark = min(uncovered)  # deterministic pick
            near = network.ball(landmark, radius)
            members = [node for node in near if node in uncovered]
            if landmark not in members:
                members.append(landmark)
            uncovered.difference_update(members)
            bound_ball = network.ball(landmark, 2.0 * radius)
            upper = f.value(ball_objects(bound_ball))
            groups.append((upper, landmark, members))
        stats.n_slabs = len(groups)

        heap = [(-upper, landmark, members) for upper, landmark, members in groups]
        heapq.heapify(heap)
        while heap:
            neg_upper, _, members = heapq.heappop(heap)
            if -neg_upper < best_score or -neg_upper <= 0.0:
                break  # the paper's stopping rule (ties still processed)
            stats.n_slabs_searched += 1
            for node in members:
                dist = network.ball(node, radius)
                stats.n_candidates += 1
                score = f.value(ball_objects(dist))
                if score > best_score:
                    best_score, best_center, best_dist = score, node, dist

    return NetworkRegionResult(
        center=best_center,
        score=best_score,
        node_distances=best_dist,
        object_ids=sorted(ball_objects(best_dist)),
        stats=stats,
    )
