"""An undirected weighted road network with cutoff shortest paths."""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple


class RoadNetwork:
    """Undirected graph with positive edge lengths over nodes ``0..n-1``."""

    def __init__(self, n_nodes: int, edges: Iterable[Tuple[int, int, float]]) -> None:
        """Args:
        n_nodes: number of nodes (road junctions).
        edges: ``(u, v, length)`` undirected road segments; parallel edges
            keep the shortest.

        Raises:
            ValueError: on endpoints out of range or non-positive lengths.
        """
        if n_nodes <= 0:
            raise ValueError("network needs at least one node")
        self._n_nodes = n_nodes
        shortest: Dict[Tuple[int, int], float] = {}
        for u, v, length in edges:
            if not (0 <= u < n_nodes and 0 <= v < n_nodes):
                raise ValueError(f"edge ({u}, {v}) endpoint out of range")
            if length <= 0:
                raise ValueError(f"edge ({u}, {v}) must have positive length")
            if u == v:
                continue  # self-loops never shorten any path
            key = (min(u, v), max(u, v))
            if key not in shortest or length < shortest[key]:
                shortest[key] = float(length)
        self._adj: List[List[Tuple[int, float]]] = [[] for _ in range(n_nodes)]
        for (u, v), length in shortest.items():
            self._adj[u].append((v, length))
            self._adj[v].append((u, length))

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(neighbors) for neighbors in self._adj) // 2

    def neighbors(self, node: int) -> List[Tuple[int, float]]:
        """``(neighbor, length)`` pairs of ``node``."""
        return self._adj[node]

    def ball(self, source: int, radius: float) -> Dict[int, float]:
        """Nodes within network distance < ``radius`` of ``source``.

        Cutoff Dijkstra; the source itself (distance 0) is included, and
        the boundary is open to match the planar problem's open rectangles.

        Raises:
            ValueError: on a bad source or non-positive radius.
        """
        if not 0 <= source < self._n_nodes:
            raise ValueError(f"source {source} out of range")
        if radius <= 0:
            raise ValueError("radius must be positive")
        dist: Dict[int, float] = {source: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for neighbor, length in self._adj[node]:
                nd = d + length
                if nd < radius and nd < dist.get(neighbor, float("inf")):
                    dist[neighbor] = nd
                    heapq.heappush(heap, (nd, neighbor))
        return dist
