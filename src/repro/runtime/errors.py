"""Structured exception taxonomy for the BRS runtime layer.

Every error the package raises deliberately derives from :class:`BRSError`,
so callers (and the CLI) can distinguish the three failure families with
one ``except`` each:

* :class:`InvalidQueryError` — the *request* was malformed (NaN coordinates,
  non-positive rectangle, empty dataset, unknown method).  Also a
  :class:`ValueError`, so pre-taxonomy callers keep working.
* :class:`BudgetExceededError` — a cooperative execution budget (deadline or
  evaluation cap) expired.  Solvers catch this internally and return an
  anytime result; it only escapes from code paths that have no meaningful
  best-so-far answer.
* :class:`EvaluationError` — the user-supplied score function failed or
  produced a non-finite value.  Carries the offending object set when known.
"""

from __future__ import annotations

from typing import Iterable, Optional


class BRSError(Exception):
    """Base class for all deliberate errors raised by this package."""


class InvalidQueryError(BRSError, ValueError):
    """The query or dataset is malformed (bad sizes, NaN coords, empty)."""


class BudgetExceededError(BRSError):
    """A cooperative execution budget (deadline or eval cap) expired.

    Attributes:
        reason: which limit tripped (``"deadline"`` or ``"max_evals"``).
    """

    def __init__(self, message: str, reason: str = "deadline") -> None:
        super().__init__(message)
        self.reason = reason


class AdmissionRejectedError(BRSError):
    """The serving layer refused a query: the admission queue was full.

    Raised (or mapped to a ``"rejected"`` response) by ``repro.serve`` when
    backpressure trips; never raised by the solvers themselves.

    Attributes:
        queue_depth: how many queries were open when the request arrived.
        capacity: the admission limit that was hit.
    """

    def __init__(self, message: str, queue_depth: int = 0, capacity: int = 0) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.capacity = capacity


class InternalInvariantError(BRSError, AssertionError):
    """An internal algorithmic invariant was violated (a bug, not bad input).

    Raised by ``validate=True`` solver modes and internal consistency
    checks — e.g. a quadtree cover selection that fails the c-cover
    property of Definition 7.  Also an :class:`AssertionError` so callers
    that treated these as assertion failures keep working, while the CLI
    and serve layer map it to the internal-error family via
    :class:`BRSError`.
    """


class WorkerFailureError(BRSError):
    """A parallel worker process failed while solving a shard.

    Raised inside worker processes (and re-raised through their futures)
    by ``repro.parallel`` when a worker is unbootstrapped, an injected
    fault fires, or a shard solve dies.  The parent backend catches it,
    requeues the shard on the surviving pool with capped retries, and
    degrades to the serial path once retries are exhausted — so it only
    escapes to callers when even the serial fallback cannot run.

    Attributes:
        shard_index: the shard being solved when the worker failed, when
            known (``None`` for bootstrap failures).
    """

    def __init__(self, message: str, shard_index: Optional[int] = None) -> None:
        super().__init__(message)
        self.shard_index = shard_index


class IngestError(BRSError):
    """A streaming-ingest operation failed (append, apply, or replay).

    Raised by ``repro.ingest`` when a mutation batch cannot be accepted
    (malformed events), cannot be applied after its retries are exhausted,
    or the write-ahead log cannot be written.  The batch involved moves to
    the ``failed`` state; already-visible data is never affected.

    Attributes:
        batch_id: the mutation batch involved, when known.
    """

    def __init__(self, message: str, batch_id: Optional[str] = None) -> None:
        super().__init__(message)
        self.batch_id = batch_id


class LogCorruptionError(IngestError):
    """The write-ahead log failed a checksum or structural check mid-log.

    A torn *tail* (partial final record from a crash mid-append) is
    expected and silently truncated during replay; corruption anywhere
    before the tail means the durable history itself is damaged and
    recovery must stop rather than rebuild a wrong dataset.

    Attributes:
        record_index: 0-based index of the corrupt record in the log.
    """

    def __init__(self, message: str, record_index: Optional[int] = None) -> None:
        super().__init__(message)
        self.record_index = record_index


class EvaluationError(BRSError):
    """A score-function evaluation failed or returned a non-finite value.

    Attributes:
        object_ids: the object set being evaluated when the failure
            happened, if known (sorted for stable messages).
    """

    def __init__(
        self, message: str, object_ids: Optional[Iterable[int]] = None
    ) -> None:
        ids = sorted(object_ids) if object_ids is not None else None
        if ids is not None:
            message = f"{message} (object set: {ids})"
        super().__init__(message)
        self.object_ids = ids
