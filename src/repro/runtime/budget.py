"""Cooperative execution budgets: wall-clock deadlines and eval caps.

A :class:`Budget` is a passive object the solvers *consult*; nothing is
preempted.  The best-first loops of SliceBRS and the sweeps charge one unit
per score evaluation and check the clock at loop boundaries, so a budget
expiry surfaces within one evaluation of the score function — which keeps
the whole machinery signal- and thread-free and therefore usable from any
context (tests, multiprocessing workers, notebook kernels).

Budgets nest: :meth:`Budget.sub` returns a child holding a *fraction* of the
parent's remaining time/evals whose charges also debit the parent.  The
graceful-degradation ladder uses this to hand each fallback stage whatever
the previous stage left over.

An *ambient* budget can be installed for a dynamic scope with
:func:`budget_scope`; solvers fall back to it when no explicit budget is
passed.  The benchmark harness uses this to bound whole experiments without
threading a parameter through every call.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from repro.runtime.errors import BudgetExceededError


class Budget:
    """A wall-clock deadline and/or a cap on score evaluations.

    The clock starts at construction.  Either limit may be ``None``
    (unlimited); a budget with both limits ``None`` never expires.

    Args:
        deadline: wall-clock seconds this budget may run for.
        max_evals: score evaluations this budget may spend.
        clock: monotonic time source (injectable for tests).

    Raises:
        InvalidQueryError: on a non-positive deadline or eval cap.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_evals: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        _parent: Optional["Budget"] = None,
    ) -> None:
        from repro.runtime.errors import InvalidQueryError

        if deadline is not None and not deadline > 0:
            raise InvalidQueryError(f"deadline must be positive, got {deadline}")
        if max_evals is not None and max_evals <= 0:
            raise InvalidQueryError(f"max_evals must be positive, got {max_evals}")
        self.deadline = deadline
        self.max_evals = max_evals
        self.evals = 0
        self._clock = clock
        self._start = clock()
        self._parent = _parent

    @classmethod
    def of(
        cls, timeout: Optional[float] = None, max_evals: Optional[int] = None
    ) -> Optional["Budget"]:
        """Build a budget from optional CLI-style arguments; None if both unset."""
        if timeout is None and max_evals is None:
            return None
        return cls(deadline=timeout, max_evals=max_evals)

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never expires (still counts evaluations)."""
        return cls()

    # -- inspection ------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since this budget started."""
        return self._clock() - self._start

    def remaining_time(self) -> float:
        """Seconds left before the deadline (``inf`` when unlimited)."""
        own = math.inf if self.deadline is None else self.deadline - self.elapsed()
        if self._parent is not None:
            own = min(own, self._parent.remaining_time())
        return own

    def remaining_evals(self) -> float:
        """Evaluations left under the cap (``inf`` when unlimited)."""
        own = math.inf if self.max_evals is None else self.max_evals - self.evals
        if self._parent is not None:
            own = min(own, self._parent.remaining_evals())
        return own

    def expired(self) -> bool:
        """True once either limit (or an ancestor's) has been reached."""
        return self.remaining_time() <= 0 or self.remaining_evals() <= 0

    # -- spending --------------------------------------------------------

    def _note(self, n: int) -> None:
        self.evals += n
        if self._parent is not None:
            self._parent._note(n)

    def charge(self, n: int = 1) -> None:
        """Record ``n`` score evaluations, then :meth:`check`.

        Raises:
            BudgetExceededError: if a limit has been reached.
        """
        self._note(n)
        self.check()

    def check(self) -> None:
        """Raise if the budget has expired; otherwise a no-op.

        Raises:
            BudgetExceededError: naming the limit that tripped.
        """
        if self.remaining_time() <= 0:
            self._record_expiry("deadline")
            raise BudgetExceededError(
                f"deadline of {self.deadline}s exceeded "
                f"(elapsed {self.elapsed():.3f}s, {self.evals} evals)",
                reason="deadline",
            )
        if self.remaining_evals() <= 0:
            self._record_expiry("max_evals")
            raise BudgetExceededError(
                f"evaluation cap of {self.max_evals} exceeded", reason="max_evals"
            )

    def _record_expiry(self, reason: str) -> None:
        """Emit the expiry observation (rare path — imports resolved lazily).

        Only reached on the one check that trips the limit, so the ambient
        lookups here cost nothing on the happy path.
        """
        from repro.obs.metrics import active_registry
        from repro.obs.trace import active_tracer

        active_tracer().event(
            "budget.expired",
            reason=reason,
            evals=self.evals,
            elapsed=self.elapsed(),
        )
        registry = active_registry()
        if registry.enabled:
            registry.counter(
                "brs_budget_expiries_total",
                help="budget expiries raised, by any limit",
            ).inc()

    def sub(self, time_fraction: float = 1.0, eval_fraction: float = 1.0) -> "Budget":
        """A child budget holding a fraction of the *remaining* allowance.

        Charges against the child also debit this budget (and its ancestors),
        so sequential stages created via ``sub`` can never jointly overspend
        the parent.  Fractions apply to what is left *now*, which is what
        lets a degradation ladder say "stage two gets 60% of whatever stage
        one did not use".
        """
        rt = self.remaining_time()
        re = self.remaining_evals()
        deadline = None if math.isinf(rt) else max(1e-9, rt * time_fraction)
        max_evals = None if math.isinf(re) else max(1, math.ceil(re * eval_fraction))
        return Budget(
            deadline=deadline, max_evals=max_evals, clock=self._clock, _parent=self
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Budget(deadline={self.deadline}, max_evals={self.max_evals}, "
            f"evals={self.evals}, elapsed={self.elapsed():.3f})"
        )


#: Ambient budget for the current dynamic scope (see :func:`budget_scope`).
_AMBIENT: ContextVar[Optional[Budget]] = ContextVar("repro_brs_budget", default=None)


def ambient_budget() -> Optional[Budget]:
    """The budget installed by the innermost :func:`budget_scope`, if any."""
    return _AMBIENT.get()


def effective_budget(budget: Optional[Budget]) -> Optional[Budget]:
    """Resolve an explicit budget argument against the ambient scope."""
    return budget if budget is not None else _AMBIENT.get()


@contextmanager
def budget_scope(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install ``budget`` as the ambient budget for the enclosed block.

    Every solver call inside the block that is not given an explicit budget
    runs under this one.  Scopes nest; the innermost wins.  Passing ``None``
    clears the ambient budget for the block (useful to exempt a sub-step).
    """
    token = _AMBIENT.set(budget)
    try:
        yield budget
    finally:
        _AMBIENT.reset(token)
